// Read-Copy-Update grace-period protocol (RCU).
//
// Four reader slots hold references to the old epoch (a bitmap), and a
// redundant counter mirrors the number of active readers. The writer's
// grace-period machine waits for the counter to drain before freeing
// the old copy. Both properties hinge on the relational invariant
// counter == popcount(bitmap): plain k-induction diverges (the paper's
// "hard" trio), while PDR finds the invariant.
module rcu(input clk, input rin, input rout, input [1:0] rslot, input start);
  reg [3:0] rmap;   // reader slot i holds the old epoch iff rmap[i]
  reg [2:0] rcnt;   // redundant active-reader counter, bounded by 4
  reg [1:0] gp;     // grace period: 0 idle, 1 sync, 2 free
  initial rmap = 0;
  initial rcnt = 0;
  initial gp = 0;

  wire slotbusy;
  assign slotbusy = (((rmap >> rslot) & 4'b0001) != 4'd0);
  wire enter_ok;
  assign enter_ok = rin && (gp == 2'd0) && !slotbusy;
  wire exit_ok;
  assign exit_ok = rout && slotbusy && !enter_ok;

  always @(posedge clk) begin
    if (enter_ok) begin
      rmap <= rmap | (4'b0001 << rslot);
      rcnt <= rcnt + 1;
    end else if (exit_ok) begin
      rmap <= rmap & (~(4'b0001 << rslot));
      rcnt <= rcnt - 1;
    end
    case (gp)
      2'd0: if (start) gp <= 2'd1;
      2'd1: if (rcnt == 3'd0) gp <= 2'd2;
      2'd2: gp <= 2'd0;
      default: gp <= 2'd0;
    endcase
  end

  assert property (rcnt <= 3'd4);
  assert property (!((gp == 2'd2) && (rmap != 4'd0)));
endmodule
