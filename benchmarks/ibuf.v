// Instruction queue controller (Ibuf).
//
// A two-entry instruction buffer: enqueue is guarded by the occupancy
// register itself, so the capacity property is inductive and easy.
module ibuf(input clk, input enq, input deq, input [3:0] instr);
  reg [1:0] count;   // occupancy, bounded by 2
  reg [3:0] i0;      // front instruction
  reg [3:0] i1;      // back instruction
  initial count = 0;
  initial i0 = 0;
  initial i1 = 0;

  wire do_enq;
  assign do_enq = enq && (count < 2'd2);
  wire do_deq;
  assign do_deq = deq && !do_enq && (count != 2'd0);

  always @(posedge clk) begin
    if (do_enq) begin
      count <= count + 1;
      if (count == 2'd0) i0 <= instr;
      else i1 <= instr;
    end else if (do_deq) begin
      count <= count - 1;
      i0 <= i1;
    end
  end

  assert property (count <= 2'd2);
endmodule
