// FIFO controller (depth 8).
//
// Head/tail pointers with the classic "pointers equal means full or
// empty, disambiguated by the last operation" flag scheme, plus a
// redundant occupancy counter. The bounded-occupancy property needs
// the relational invariant counter == occupancy(head, tail, lastpush),
// which k-induction cannot derive for feasible k (the paper's FIFO row:
// only invariant-generating engines prove it).
module fifo(input clk, input push, input pop);
  reg [2:0] head;
  reg [2:0] tail;
  reg [3:0] count;    // redundant occupancy counter, bounded by 8
  reg lastpush;       // disambiguates head == tail
  initial head = 0;
  initial tail = 0;
  initial count = 0;
  initial lastpush = 0;

  wire eqptr;
  assign eqptr = (head == tail);
  wire full;
  assign full = eqptr && lastpush;
  wire empty;
  assign empty = eqptr && !lastpush;
  wire do_push;
  assign do_push = push && !full;
  wire do_pop;
  assign do_pop = pop && !empty && !do_push;

  always @(posedge clk) begin
    if (do_push) begin
      tail <= tail + 1;
      count <= count + 1;
      lastpush <= 1;
    end else if (do_pop) begin
      head <= head + 1;
      count <= count - 1;
      lastpush <= 0;
    end
  end

  assert property (count <= 4'd8);
endmodule
