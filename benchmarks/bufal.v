// Buffer allocation model (BufAl).
//
// Four buffer slots tracked by an allocation bitmap; a separate counter
// mirrors the number of live buffers. The safety property bounds the
// counter, which is only true because the counter stays coupled to the
// bitmap's population count — a relational invariant that plain
// k-induction does not find (the paper's "hard" trio).
module bufal(input clk, input alloc, input free, input [1:0] slot);
  reg [3:0] map;   // slot i allocated iff map[i]
  reg [2:0] cnt;   // live-buffer counter (redundant, bounded by 4)
  initial map = 0;
  initial cnt = 0;

  wire full;
  assign full = (map == 4'b1111);
  wire slotbusy;
  assign slotbusy = (((map >> slot) & 4'b0001) != 4'd0);
  wire do_free;
  assign do_free = free && slotbusy;
  wire do_alloc;
  assign do_alloc = alloc && !full && !do_free;

  // First-free priority encoder.
  wire [1:0] ffree;
  assign ffree = (!map[0]) ? 2'd0 :
                 (!map[1]) ? 2'd1 :
                 (!map[2]) ? 2'd2 : 2'd3;

  always @(posedge clk) begin
    if (do_alloc) begin
      map <= map | (4'b0001 << ffree);
      cnt <= cnt + 1;
    end else if (do_free) begin
      map <= map & (~(4'b0001 << slot));
      cnt <= cnt - 1;
    end
  end

  assert property (cnt <= 3'd4);
endmodule
