// Huffman encoder/decoder round-trip.
//
// A 4-symbol prefix code (0, 10, 110, 111) is encoded into a
// left-aligned 3-bit code register each cycle; the decoder walks the
// code tree combinationally and must reproduce the symbol captured
// alongside it. The encode and decode registers are written in the
// same cycle from the same symbol, so the round-trip property is
// inductive (data-path intensive, easy for every engine).
module huffman(input clk, input [1:0] sym);
  reg [2:0] code;    // left-aligned prefix code of the last symbol
  reg [1:0] len;     // code length minus one
  reg [1:0] sym_d;   // the symbol that produced `code`
  initial code = 0;
  initial len = 0;
  initial sym_d = 0;

  always @(posedge clk) begin
    case (sym)
      2'd0: begin code <= 3'b000; len <= 2'd0; end
      2'd1: begin code <= 3'b100; len <= 2'd1; end
      2'd2: begin code <= 3'b110; len <= 2'd2; end
      2'd3: begin code <= 3'b111; len <= 2'd2; end
    endcase
    sym_d <= sym;
  end

  // Prefix-tree decoder over the registered code.
  wire [1:0] dec;
  assign dec = (code[2] == 1'b0) ? 2'd0 :
               (code[1] == 1'b0) ? 2'd1 :
               (code[0] == 1'b0) ? 2'd2 : 2'd3;

  assert property (dec == sym_d);
endmodule
