// Binary heap controller with one sift step per cycle.
//
// A two-slot min-heap head: inserts sift the new value against the
// root in the same cycle, extracts promote the second slot. The
// capacity property is guarded directly by the size register, so it is
// inductive and easy for every engine.
module heap(input clk, input ins, input ext, input [3:0] val);
  reg [2:0] size;   // elements logically stored (bounded by 4)
  reg [3:0] m0;     // root (minimum)
  reg [3:0] m1;     // second slot
  initial size = 0;
  initial m0 = 0;
  initial m1 = 0;

  wire do_ins;
  assign do_ins = ins && (size < 3'd4);
  wire do_ext;
  assign do_ext = ext && !do_ins && (size != 3'd0);

  always @(posedge clk) begin
    if (do_ins) begin
      size <= size + 1;
      // One sift step: keep the minimum at the root.
      if (val < m0) begin
        m0 <= val;
        m1 <= m0;
      end else begin
        m1 <= val;
      end
    end else if (do_ext) begin
      size <= size - 1;
      m0 <= m1;
    end
  end

  assert property (size <= 3'd4);
endmodule
