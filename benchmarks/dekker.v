// Dekker-style mutual exclusion protocol.
//
// Two processes request the critical section; a turn bit arbitrates
// simultaneous requests. Mutual exclusion is inductive with the flag
// and turn structure, so every engine proves it quickly.
module dekker(input clk, input req0, input req1);
  reg flag0, flag1;   // published intent
  reg turn;           // arbitration bit
  reg crit0, crit1;   // in critical section
  initial flag0 = 0;
  initial flag1 = 0;
  initial turn = 0;
  initial crit0 = 0;
  initial crit1 = 0;

  wire enter0;
  assign enter0 = req0 && !crit1 && !turn;
  wire enter1;
  assign enter1 = req1 && !crit0 && turn;

  always @(posedge clk) begin
    flag0 <= req0;
    flag1 <= req1;
    crit0 <= crit0 ? req0 : enter0;
    crit1 <= crit1 ? req1 : enter1;
    if (!crit0 && !crit1) turn <= !turn;
  end

  assert property (!(crit0 && crit1));
endmodule
