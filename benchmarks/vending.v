// Vending machine credit/change controller.
//
// Coins are accepted only while the stored credit is at most 9, so the
// credit bound is inductive and easy for every engine.
module vending(input clk, input [1:0] coin, input vendreq);
  reg [3:0] credit;   // stored credit, bounded by 12
  reg vended;         // a vend happened at least once
  initial credit = 0;
  initial vended = 0;

  wire accept;
  assign accept = (coin != 2'd0) && (credit <= 4'd9);
  wire vend;
  assign vend = vendreq && !accept && (credit >= 4'd3);

  always @(posedge clk) begin
    if (accept) begin
      credit <= credit + {2'b00, coin};
    end else if (vend) begin
      credit <= credit - 4'd3;
      vended <= 1;
    end
  end

  assert property (credit <= 4'd12);
endmodule
