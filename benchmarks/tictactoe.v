// Tic-tac-toe referee with win detection (2x2 board).
//
// Two ownership bitmaps record the cells claimed by each player; the
// referee only accepts moves into free cells and alternates turns.
// The no-double-claim property is inductive for exact engines, but its
// proof runs through word-level bitwise operations and variable
// shifts — exactly the operators a linear-arithmetic abstraction
// (SeaHorn-style) havocs, reproducing that tool's false negative.
module tictactoe(input clk, input mv, input [1:0] pos);
  reg [3:0] xmask;   // cells claimed by X
  reg [3:0] omask;   // cells claimed by O
  reg turn;          // 0: X to move, 1: O to move
  initial xmask = 0;
  initial omask = 0;
  initial turn = 0;

  wire [3:0] occ;
  assign occ = xmask | omask;
  wire boardfull;
  assign boardfull = (occ == 4'b1111);
  wire freecell;
  assign freecell = (((occ >> pos) & 4'b0001) == 4'd0);
  wire do_mv;
  assign do_mv = mv && freecell && !boardfull;

  // Win detection: any row or column (cells 0|1, 2|3, 0|2, 1|3).
  wire xwins;
  assign xwins = (xmask[0] && xmask[1]) || (xmask[2] && xmask[3]) ||
                 (xmask[0] && xmask[2]) || (xmask[1] && xmask[3]);
  wire owins;
  assign owins = (omask[0] && omask[1]) || (omask[2] && omask[3]) ||
                 (omask[0] && omask[2]) || (omask[1] && omask[3]);
  wire gameover;
  assign gameover = xwins || owins || boardfull;

  always @(posedge clk) begin
    if (do_mv && !gameover) begin
      if (turn == 1'b0) xmask <= xmask | (4'b0001 << pos);
      else omask <= omask | (4'b0001 << pos);
      turn <= !turn;
    end
  end

  assert property ((xmask & omask) == 4'd0);
endmodule
