// Digital Audio Input-Output serdes (DAIO).
//
// Serial bit stream is shifted into an 8-bit deserializer while a
// 7-bit position counter tracks the frame. The frame-sync logic was
// written for a 64-bit frame but the counter is 7 bits wide: when the
// counter crosses from the first frame into the second (position 63 ->
// 64) the sync comparator misfires and latches the error flag. The bug
// manifests at cycle 64 under any stimulus.
module daio(input clk, input din);
  reg [6:0] bitpos;   // position within the (intended) 64-bit frame
  reg [7:0] shreg;    // deserializer
  reg parity;         // running frame parity
  reg err;            // sticky frame-sync error
  initial bitpos = 0;
  initial shreg = 0;
  initial parity = 0;
  initial err = 0;

  wire framesync;
  assign framesync = (bitpos[5:0] == 6'd0);

  always @(posedge clk) begin
    bitpos <= bitpos + 1;
    shreg <= {shreg[6:0], din};
    if (framesync) parity <= din;
    else parity <= parity ^ din;
    // BUG: comparator checks the full 7-bit counter against 63, so the
    // error latch fires on the first frame boundary instead of never.
    if (bitpos == 7'd63) err <= 1;
  end

  assert property (!err);
endmodule
