// Traffic light controller with a planted collision bug.
//
// The intersection cycles through north-south green, east-west green
// and two all-red phases. A maintenance override was wired to the
// wrong comparator: when the 7-bit tick counter reaches 65 it forces
// the north-south light green while the east-west direction holds its
// green phase — both directions green at cycle 65 under any stimulus.
module traffic_light(input clk, input car_ns, input car_ew);
  reg [6:0] tick;    // free-running controller tick
  reg [1:0] phase;   // 0 NS-green, 1 EW-green, 2/3 all-red
  reg ns_req;        // latched car sensors (do not affect the bug)
  reg ew_req;
  initial tick = 0;
  initial phase = 0;
  initial ns_req = 0;
  initial ew_req = 0;

  // BUG: the maintenance override compares against 65 instead of an
  // unreachable service code.
  wire ns_green;
  assign ns_green = (phase == 2'd0) || (tick == 7'd65);
  wire ew_green;
  assign ew_green = (phase == 2'd1);

  always @(posedge clk) begin
    tick <= tick + 1;
    phase <= phase + 1;
    ns_req <= car_ns;
    ew_req <= car_ew;
  end

  assert property (!(ns_green && ew_green));
endmodule
