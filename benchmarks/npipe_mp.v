// Non-pipelined 3-stage microprocessor (npipe_mp).
//
// Fetch, decode and execute occupy one cycle each; the stage register
// cycles through exactly three values, so the control property is
// inductive and easy for every engine.
module npipe_mp(input clk, input [3:0] inst);
  reg [1:0] stage;   // 0 fetch, 1 decode, 2 execute
  reg [3:0] ir;      // instruction register
  reg [3:0] acc;     // accumulator
  reg [3:0] pc;      // program counter
  initial stage = 0;
  initial ir = 0;
  initial acc = 0;
  initial pc = 0;

  always @(posedge clk) begin
    case (stage)
      2'd0: begin
        ir <= inst;
        stage <= 2'd1;
      end
      2'd1: stage <= 2'd2;
      2'd2: begin
        stage <= 2'd0;
        pc <= pc + 1;
        case (ir[3:2])
          2'd0: acc <= acc + {2'b00, ir[1:0]};   // addi
          2'd1: acc <= acc - {2'b00, ir[1:0]};   // subi
          2'd2: acc <= {2'b00, ir[1:0]};         // li
          2'd3: acc <= acc;                      // nop
        endcase
      end
      default: stage <= 2'd0;
    endcase
  end

  assert property (stage != 2'd3);
endmodule
