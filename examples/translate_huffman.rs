//! Translate the paper's Huffman benchmark to its C software-netlist
//! and write it next to the binary.
//!
//! Run with: `cargo run --example translate_huffman`

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = hwsw::bmarks::by_name("Huffman").expect("benchmark exists");
    let modules = hwsw::vfront::parse(b.source)?;
    let design = hwsw::vfront::elaborate(&modules, b.top)?;
    let c_text = hwsw::v2c::emit_c(&design, hwsw::v2c::MainStyle::Verifier)?;
    let path = std::env::temp_dir().join("huffman_netlist.c");
    std::fs::write(&path, &c_text)?;
    println!("software-netlist written to {}", path.display());
    println!(
        "{} lines of C, {} assertions",
        c_text.lines().count(),
        c_text.matches("assert(").count()
    );
    // Round-trip sanity: the C parses back into an equivalent program.
    let prog = hwsw::cfront::parse_software_netlist(&c_text)?;
    println!(
        "parsed back: {} state elements, {} properties",
        prog.ts.states().len(),
        prog.ts.bads().len()
    );
    Ok(())
}
