//! Quickstart: the whole paper pipeline on a small counter.
//!
//! Run with: `cargo run --example quickstart`

use hwsw::engines::{pdr::Pdr, Checker};
use hwsw::swan::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let verilog = r#"
    module counter(input clk, input rst, output wrap);
      reg [3:0] c;
      initial c = 0;
      always @(posedge clk)
        if (rst) c <= 0;
        else if (c < 10) c <= c + 1;
      assign wrap = (c == 10);
      assert property (c <= 10);
    endmodule
    "#;

    // 1. Frontend: Verilog -> word-level transition system.
    let ts = hwsw::vfront::compile(verilog, "counter")?;
    println!(
        "synthesized: {} states, {} inputs, {} properties",
        ts.states().len(),
        ts.inputs().len(),
        ts.bads().len()
    );

    // 2. v2c: the software-netlist, as ANSI-C text.
    let modules = hwsw::vfront::parse(verilog)?;
    let design = hwsw::vfront::elaborate(&modules, "counter")?;
    let c_text = hwsw::v2c::emit_c(&design, hwsw::v2c::MainStyle::Verifier)?;
    println!("\n--- software-netlist (first 25 lines) ---");
    for line in c_text.lines().take(25) {
        println!("{line}");
    }

    // 3. Hardware-style verification: bit-level PDR (the "ABC" path).
    let hw = Pdr::default().check(&ts);
    println!("\nABC-style PDR     : {}", hw.outcome);

    // 4. Software-style verification: 2LS-style kIkI on the
    //    software-netlist (parsed back from the C text!).
    let prog = hwsw::cfront::parse_software_netlist(&c_text)?;
    let sw = hwsw::swan::twols::TwoLs::default().check(&prog);
    println!("2LS-style kIkI    : {}", sw.outcome);

    Ok(())
}
