//! The paper's headline comparison on one hard benchmark: the FIFO
//! controller is not k-inductive, so k-induction engines diverge while
//! PDR proves it — and the hybrid portfolio answers as fast as its
//! best member by racing all of them with cooperative cancellation.
//!
//! Run with: `cargo run --release --example verify_fifo`

use hwsw::engines::{kind::KInduction, pdr::Pdr, portfolio::Portfolio, Blasted, Budget, Checker};
use hwsw::swan::Analyzer;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = hwsw::bmarks::by_name("FIFOs").expect("benchmark exists");
    let ts = b.compile()?;
    let prog = hwsw::v2c::SwProgram::from_ts(ts.clone());
    let budget = Budget {
        timeout: Some(Duration::from_secs(5)),
        max_depth: 4000,
        ..Budget::default()
    };

    // Blast the netlist and compile its CNF transition template once;
    // every bit-level engine below instantiates the same template.
    let blasted = Blasted::of(&ts);

    let kind = KInduction::new(budget.clone()).check_blasted(&ts, &blasted);
    println!(
        "ABC-style k-induction : {} (k reached {})",
        kind.outcome, kind.stats.depth
    );

    let pdr = Pdr::new(budget.clone()).check_blasted(&ts, &blasted);
    println!(
        "ABC-style PDR         : {} ({} frames, {} SAT queries)",
        pdr.outcome, pdr.stats.depth, pdr.stats.sat_queries
    );

    let kiki = hwsw::swan::twols::TwoLs::new(budget.clone()).check(&prog);
    println!("2LS-style kIkI        : {}", kiki.outcome);

    // The default configuration: every engine races over the shared
    // blast, the first definite verdict wins, the losers are cancelled
    // mid-solve.
    let hybrid = Portfolio::with_default_engines(budget).check_detailed_blasted(&ts, &blasted);
    println!("hybrid portfolio      : {}", hybrid.summary().trim_end());
    Ok(())
}
