//! A miniature of the paper's Figures 3-5: every engine class on a
//! selection of benchmarks. (The full sweeps live in the `bench`
//! crate's fig3/fig4/fig5 binaries.)
//!
//! Run with: `cargo run --release --example engine_shootout`

use hwsw::engines::{itp::Interpolation, kind::KInduction, pdr::Pdr, Budget, Checker};
use hwsw::swan::Analyzer;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget {
        timeout: Some(Duration::from_secs(5)),
        max_depth: 4000,
    };
    println!(
        "{:<14}{:>12}{:>12}{:>12}{:>12}",
        "benchmark", "kind", "itp", "pdr", "2ls-kiki"
    );
    for name in ["Vending", "Dekker", "FIFOs", "DAIO"] {
        let b = hwsw::bmarks::by_name(name).expect("exists");
        let ts = b.compile()?;
        let prog = hwsw::v2c::SwProgram::from_ts(ts.clone());
        let r1 = KInduction::new(budget).check(&ts);
        let r2 = Interpolation::new(budget).check(&ts);
        let r3 = Pdr::new(budget).check(&ts);
        let r4 = hwsw::swan::twols::TwoLs::new(budget).check(&prog);
        let s = |o: &hwsw::engines::CheckOutcome| match &o.outcome {
            hwsw::engines::Verdict::Safe => "safe".to_string(),
            hwsw::engines::Verdict::Unsafe(t) => format!("bug@{}", t.length()),
            hwsw::engines::Verdict::Unknown(_) => "t/o".to_string(),
        };
        println!(
            "{:<14}{:>12}{:>12}{:>12}{:>12}",
            name,
            s(&r1),
            s(&r2),
            s(&r3),
            s(&r4)
        );
    }
    Ok(())
}
