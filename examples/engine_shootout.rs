//! A miniature of the paper's Figures 3-5: every engine class on a
//! selection of benchmarks. (The full sweeps live in the `bench`
//! crate's fig3/fig4/fig5 binaries.)
//!
//! Run with: `cargo run --release --example engine_shootout`

use hwsw::engines::{
    itp::Interpolation, kind::KInduction, pdr::Pdr, portfolio::Portfolio, Blasted, Budget, Checker,
};
use hwsw::swan::Analyzer;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget {
        timeout: Some(Duration::from_secs(5)),
        max_depth: 4000,
        ..Budget::default()
    };
    println!(
        "{:<14}{:>12}{:>12}{:>12}{:>12}{:>16}",
        "benchmark", "kind", "itp", "pdr", "2ls-kiki", "hybrid(winner)"
    );
    for name in ["Vending", "Dekker", "FIFOs", "DAIO"] {
        let b = hwsw::bmarks::by_name(name).expect("exists");
        let ts = b.compile()?;
        let prog = hwsw::v2c::SwProgram::from_ts(ts.clone());
        // One blast + one compiled transition template per design,
        // shared by every bit-level engine and the portfolio.
        let blasted = Blasted::of(&ts);
        let r1 = KInduction::new(budget.clone()).check_blasted(&ts, &blasted);
        let r2 = Interpolation::new(budget.clone()).check_blasted(&ts, &blasted);
        let r3 = Pdr::new(budget.clone()).check_blasted(&ts, &blasted);
        let r4 = hwsw::swan::twols::TwoLs::new(budget.clone()).check(&prog);
        // The default hybrid configuration: all hardware engines race,
        // the first definite verdict wins and cancels the rest.
        let hybrid =
            Portfolio::with_default_engines(budget.clone()).check_detailed_blasted(&ts, &blasted);
        let s = |o: &hwsw::engines::Verdict| match o {
            hwsw::engines::Verdict::Safe => "safe".to_string(),
            hwsw::engines::Verdict::Unsafe(t) => format!("bug@{}", t.length()),
            hwsw::engines::Verdict::Unknown(_) => "t/o".to_string(),
        };
        println!(
            "{:<14}{:>12}{:>12}{:>12}{:>12}{:>16}",
            name,
            s(&r1.outcome),
            s(&r2.outcome),
            s(&r3.outcome),
            s(&r4.outcome),
            format!("{} ({})", s(&hybrid.verdict), hybrid.winner.unwrap_or("-")),
        );
    }
    Ok(())
}
