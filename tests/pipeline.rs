//! Cross-crate integration tests: the complete paper pipeline.

use hwsw::engines::{Budget, Checker, Verdict};
use hwsw::swan::Analyzer;
use std::time::Duration;

fn budget(secs: u64) -> Budget {
    Budget {
        timeout: Some(Duration::from_secs(secs)),
        max_depth: 4000,
        ..Budget::default()
    }
}

/// The portfolio (the paper's hybrid configuration) must answer every
/// design its best member answers: bugs with a replaying trace, proofs
/// where k-induction diverges, with the losers cancelled.
#[test]
fn portfolio_hybrid_matches_best_member() {
    use hwsw::engines::portfolio::Portfolio;

    // Unsafe: traffic-light has a documented bug cycle.
    let b = hwsw::bmarks::by_name("traffic-light").expect("exists");
    let expected = b.bug_cycle.expect("unsafe benchmark");
    let ts = b.compile().expect("compiles");
    let report = Portfolio::with_default_engines(budget(60)).check_detailed(&ts);
    match &report.verdict {
        Verdict::Unsafe(t) => assert_eq!(t.length() as u64, expected, "bug cycle"),
        other => panic!("portfolio must find the bug, got {other:?}"),
    }
    assert!(report.winner.is_some());
    assert!(!report.disagreement);

    // Safe and not k-inductive: the FIFO needs PDR; k-induction
    // diverges (pipeline test below pins that) yet must not block the
    // portfolio's answer.
    let b = hwsw::bmarks::by_name("FIFOs").expect("exists");
    let ts = b.compile().expect("compiles");
    let report = Portfolio::with_default_engines(budget(60)).check_detailed(&ts);
    assert_eq!(report.verdict, Verdict::Safe, "{}", report.summary());
    // Every loser is accounted for: definite, cancelled, or at a limit.
    assert_eq!(report.engines.len(), 4);
}

/// Verilog -> TS -> C -> parsed SwProgram -> verified, end to end.
#[test]
fn full_pipeline_on_counter() {
    let src = r#"
    module top(input clk, input en);
      reg [3:0] c;
      initial c = 0;
      always @(posedge clk) if (en && c < 9) c <= c + 1;
      assert property (c <= 9);
    endmodule
    "#;
    let ts = hwsw::vfront::compile(src, "top").expect("compiles");
    let mods = hwsw::vfront::parse(src).expect("parses");
    let design = hwsw::vfront::elaborate(&mods, "top").expect("elaborates");
    let c_text = hwsw::v2c::emit_c(&design, hwsw::v2c::MainStyle::Verifier).expect("emits");
    let prog = hwsw::cfront::parse_software_netlist(&c_text).expect("parses back");

    // Hardware path proves it.
    let hw = hwsw::engines::pdr::Pdr::new(budget(30)).check(&ts);
    assert_eq!(hw.outcome, Verdict::Safe);
    // Software path (through the C text!) proves it too.
    let sw = hwsw::swan::twols::TwoLs::new(budget(30)).check(&prog);
    assert_eq!(sw.outcome, Verdict::Safe);
}

/// Unsafe benchmarks: every engine family finds the planted bug at the
/// documented cycle (paper §III-C: same cycle on both models).
#[test]
fn unsafe_benchmarks_same_cycle_everywhere() {
    for name in ["DAIO", "traffic-light"] {
        let b = hwsw::bmarks::by_name(name).expect("exists");
        let expected = b.bug_cycle.expect("unsafe");
        let ts = b.compile().expect("compiles");
        let prog = hwsw::v2c::SwProgram::from_ts(ts.clone());

        let hw = hwsw::engines::kind::KInduction::new(budget(60)).check(&ts);
        match hw.outcome {
            Verdict::Unsafe(t) => assert_eq!(t.length() as u64, expected, "{name} hw"),
            other => panic!("{name}: hardware engine says {other:?}"),
        }
        let sw = hwsw::swan::cbmc::CbmcKind::new(budget(60)).check(&prog);
        match sw.outcome {
            Verdict::Unsafe(t) => assert_eq!(t.length() as u64, expected, "{name} sw"),
            other => panic!("{name}: software analyzer says {other:?}"),
        }
    }
}

/// PDR proves the hard FIFO benchmark that k-induction cannot.
#[test]
fn pdr_beats_kinduction_on_fifo() {
    let b = hwsw::bmarks::by_name("FIFOs").expect("exists");
    let ts = b.compile().expect("compiles");
    let pdr = hwsw::engines::pdr::Pdr::new(budget(60)).check(&ts);
    assert_eq!(pdr.outcome, Verdict::Safe, "PDR must prove the FIFO");
    let kind = hwsw::engines::kind::KInduction::new(budget(3)).check(&ts);
    assert!(
        matches!(kind.outcome, Verdict::Unknown(_)),
        "k-induction must diverge on the FIFO, got {:?}",
        kind.outcome
    );
}

/// The SeaHorn-mode abstraction produces its documented false negative
/// on a bit-heavy design while exact PDR proves it.
#[test]
fn seahorn_false_negative_reproduced() {
    let b = hwsw::bmarks::by_name("TicTacToe").expect("exists");
    let ts = b.compile().expect("compiles");
    let prog = hwsw::v2c::SwProgram::from_ts(ts.clone());
    let exact = hwsw::engines::pdr::Pdr::new(budget(60)).check(&ts);
    assert_eq!(exact.outcome, Verdict::Safe);
    let sea = hwsw::swan::seahorn::SeaHorn::new(budget(60)).check(&prog);
    assert!(
        sea.outcome.is_unsafe(),
        "expected a false negative, got {:?}",
        sea.outcome
    );
}

/// All twelve benchmarks make it through the v2c C emitter and back.
#[test]
fn all_benchmarks_roundtrip_through_c() {
    for b in hwsw::bmarks::all() {
        let mods = hwsw::vfront::parse(b.source).expect("parses");
        let design = hwsw::vfront::elaborate(&mods, b.top).expect("elaborates");
        let c_text = hwsw::v2c::emit_c(&design, hwsw::v2c::MainStyle::Verifier).expect("emits");
        let prog = hwsw::cfront::parse_software_netlist(&c_text)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let direct = b.compile().expect("compiles");
        assert_eq!(
            prog.ts.bads().len(),
            direct.bads().len(),
            "{}: property count differs",
            b.name
        );
    }
}
