//! CPAChecker-style predicate abstraction with CEGAR.
//!
//! Cartesian predicate abstraction over a growing set of word-level
//! predicates: the abstract post of an abstract state is computed with
//! two SAT queries per predicate, reachability explores the (finite)
//! abstract state space, abstract counterexample paths are concretized
//! by bounded model checking, and infeasible paths refine the predicate
//! set. Two refinement modes mirror the two CPAChecker configurations
//! the paper plots:
//!
//! * [`RefineMode::Wp`] — syntactic weakest-precondition atoms
//!   ("CPA-predabs" in Figure 5);
//! * [`RefineMode::Interpolant`] — Craig interpolants computed at the
//!   bit level and folded back into word-level predicates over state
//!   bits ("CPA-interpolation" in Figure 4). Bit-granular predicates
//!   are precise but converge slowly on bit-heavy designs — the
//!   behaviour the paper observes.

use crate::util::{collect_atoms, solve_word, substitute_next, vars_of, TraceExtractor};
use crate::Analyzer;
use engines::{Budget, CheckOutcome, EngineStats, Unknown, Verdict};
use rtlir::unroll::{InitMode, Unroller};
use rtlir::{ExprId, Sort, TransitionSystem, Value, VarId};
use satb::{Lit, Part, SolveResult, Solver};
use std::collections::HashMap;
use std::time::Instant;
use v2c::SwProgram;

/// How infeasible abstract paths refine the predicate set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineMode {
    /// Weakest-precondition atoms.
    Wp,
    /// Bit-level Craig interpolants.
    Interpolant,
}

/// The predicate-abstraction analyzer.
#[derive(Clone, Debug)]
pub struct PredAbs {
    /// Resource limits.
    pub budget: Budget,
    /// Refinement strategy.
    pub refine: RefineMode,
    /// Hard cap on the predicate set size.
    pub max_predicates: usize,
}

impl Default for PredAbs {
    fn default() -> PredAbs {
        PredAbs {
            budget: Budget::default(),
            refine: RefineMode::Wp,
            max_predicates: 64,
        }
    }
}

impl PredAbs {
    /// Creates the analyzer with a budget.
    pub fn new(budget: Budget, refine: RefineMode) -> PredAbs {
        PredAbs {
            budget,
            refine,
            ..PredAbs::default()
        }
    }
}

/// Three-valued abstract state over the predicate set.
type AbsState = Vec<Option<bool>>;

enum ReachResult {
    /// The abstract reachable set excludes all bad states.
    Proof,
    /// Chain of abstract states ending in one that intersects bad.
    Path(Vec<AbsState>),
    /// A limit ended the search; carries the engine-level reason.
    Stopped(Unknown),
}

impl Analyzer for PredAbs {
    fn name(&self) -> &'static str {
        match self.refine {
            RefineMode::Wp => "cpa-predabs",
            RefineMode::Interpolant => "cpa-itp",
        }
    }

    fn check(&self, prog: &SwProgram) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();
        let mut ts = prog.ts.clone();
        let is_state = state_var_set(&ts);

        // Seed predicates: atoms of the bad expressions (over state
        // variables only) plus atoms of named program locals.
        let mut preds: Vec<ExprId> = Vec::new();
        let bads: Vec<ExprId> = ts.bads().iter().map(|b| b.expr).collect();
        for b in &bads {
            for a in collect_atoms(ts.pool(), *b, &|v| is_state.contains(&v)) {
                push_pred(&mut preds, a);
            }
        }
        for (_, l) in &prog.locals {
            if ts.pool().sort(*l).is_bool() {
                for a in collect_atoms(ts.pool(), *l, &|v| is_state.contains(&v)) {
                    push_pred(&mut preds, a);
                }
            }
        }

        for round in 0..self.budget.max_depth {
            if self.budget.expired(started) {
                return CheckOutcome::finish(Verdict::Unknown(Unknown::Timeout), stats, started);
            }
            stats.depth = round;

            match self.abstract_reach(&ts, &preds, started, &mut stats) {
                ReachResult::Stopped(u) => {
                    return CheckOutcome::finish(Verdict::Unknown(u), stats, started)
                }
                ReachResult::Proof => return CheckOutcome::finish(Verdict::Safe, stats, started),
                ReachResult::Path(path) => {
                    // Concretize.
                    let n = path.len() - 1;
                    let mut u = Unroller::new(&ts, InitMode::Initialized);
                    let mut roots = Vec::new();
                    for (f, a) in path.iter().enumerate() {
                        let c = u.constraint(f);
                        roots.push(c);
                        for (j, val) in a.iter().enumerate() {
                            if let Some(v) = val {
                                let p = u.translate(f as u32, preds[j]);
                                let lit = if *v { p } else { u.pool_mut().not(p) };
                                roots.push(lit);
                            }
                        }
                    }
                    let bn = u.bad(n);
                    roots.push(bn);
                    let extractor = TraceExtractor::prepare(&mut u, n);
                    stats.sat_queries += 1;
                    let q = solve_word(u.pool(), &roots, self.budget.sat_limits(started));
                    match q.result {
                        SolveResult::Sat => {
                            let mut model = q.model.expect("model");
                            let trace = extractor.extract(&ts, &mut model);
                            return CheckOutcome::finish(Verdict::Unsafe(trace), stats, started);
                        }
                        SolveResult::Unknown(why) => {
                            return CheckOutcome::finish(
                                Verdict::Unknown(why.into()),
                                stats,
                                started,
                            )
                        }
                        SolveResult::Unsat => {
                            // The abstract path is spurious under its
                            // state constraints — but a *different*
                            // real path of the same depth may exist;
                            // check with plain BMC before refining
                            // (CPAChecker's counterexample check).
                            let bmc = engines::bmc::Bmc::new(engines::Budget {
                                timeout: self.budget.timeout,
                                max_depth: n as u32,
                                stop: self.budget.stop.clone(),
                                chaos: self.budget.chaos,
                            });
                            let bout = engines::Checker::check(&bmc, &ts);
                            if let Verdict::Unsafe(trace) = bout.outcome {
                                stats.sat_queries += bout.stats.sat_queries;
                                return CheckOutcome::finish(
                                    Verdict::Unsafe(trace),
                                    stats,
                                    started,
                                );
                            }
                            // Spurious: refine.
                            let before = preds.len();
                            match self.refine {
                                RefineMode::Wp => {
                                    refine_wp(&mut ts, &mut preds, &is_state, self.max_predicates);
                                    // Like CPAChecker, fall back to
                                    // interpolation when syntactic WP
                                    // yields nothing new (input-laden
                                    // atoms are unusable).
                                    if preds.len() == before {
                                        refine_itp(
                                            &mut ts,
                                            &mut preds,
                                            &mut stats,
                                            &ItpRefine {
                                                path: &path,
                                                started,
                                                budget: self.budget.clone(),
                                                cap: self.max_predicates,
                                            },
                                        );
                                    }
                                }
                                RefineMode::Interpolant => refine_itp(
                                    &mut ts,
                                    &mut preds,
                                    &mut stats,
                                    &ItpRefine {
                                        path: &path,
                                        started,
                                        budget: self.budget.clone(),
                                        cap: self.max_predicates,
                                    },
                                ),
                            }
                            if preds.len() == before {
                                return CheckOutcome::finish(
                                    Verdict::Unknown(Unknown::Inconclusive(
                                        "predicate refinement exhausted".to_string(),
                                    )),
                                    stats,
                                    started,
                                );
                            }
                        }
                    }
                }
            }
        }
        CheckOutcome::finish(Verdict::Unknown(Unknown::BoundReached), stats, started)
    }
}

fn state_var_set(ts: &TransitionSystem) -> std::collections::HashSet<VarId> {
    ts.states().iter().map(|s| s.var).collect()
}

fn push_pred(preds: &mut Vec<ExprId>, p: ExprId) {
    if !preds.contains(&p) {
        preds.push(p);
    }
}

impl PredAbs {
    /// Cartesian abstract reachability. The cartesian post is a
    /// function, so the abstract reachable set is a chain that either
    /// closes (lasso: proof) or reaches an abstract state intersecting
    /// bad (candidate path).
    fn abstract_reach(
        &self,
        ts: &TransitionSystem,
        preds: &[ExprId],
        started: Instant,
        stats: &mut EngineStats,
    ) -> ReachResult {
        // Abstract initial state: evaluate predicates on the constant
        // initial assignment; nondeterministic parts become Unknown.
        let mut init_env: HashMap<VarId, Value> = HashMap::new();
        let mut nondet: std::collections::HashSet<VarId> = std::collections::HashSet::new();
        for s in ts.states() {
            match s.init {
                Some(init) => {
                    let env: HashMap<VarId, Value> = HashMap::new();
                    init_env.insert(s.var, rtlir::eval(ts.pool(), init, &env));
                }
                None => {
                    nondet.insert(s.var);
                }
            }
        }
        let a0: AbsState = preds
            .iter()
            .map(|&p| {
                if vars_of(ts.pool(), p).iter().any(|v| nondet.contains(v)) {
                    None
                } else {
                    Some(rtlir::eval(ts.pool(), p, &init_env).as_bool())
                }
            })
            .collect();

        let mut path = vec![a0.clone()];
        let mut visited: Vec<AbsState> = vec![a0];
        loop {
            if let Some(u) = self.budget.interruption(started) {
                return ReachResult::Stopped(u);
            }
            let cur = path.last().expect("nonempty").clone();
            // Bad intersection and post, via one incremental solver.
            let mut u = Unroller::new(ts, InitMode::Free);
            let mut premises = vec![u.constraint(0)];
            for (j, v) in cur.iter().enumerate() {
                if let Some(v) = v {
                    let p = u.translate(0, preds[j]);
                    premises.push(if *v { p } else { u.pool_mut().not(p) });
                }
            }
            let bad0 = u.bad(0);
            let pred_next: Vec<ExprId> = preds.iter().map(|&p| u.translate(1, p)).collect();

            let mut blaster = aig::Blaster::new(u.pool());
            let premise_bits: Vec<aig::AigLit> =
                premises.iter().map(|&r| blaster.blast_bit(r)).collect();
            let bad_bit = blaster.blast_bit(bad0);
            let pn_bits: Vec<aig::AigLit> =
                pred_next.iter().map(|&r| blaster.blast_bit(r)).collect();
            let mut solver = Solver::new();
            let mut enc = aig::FrameEncoder::new();
            for &b in &premise_bits {
                let l = enc.encode(blaster.aig(), &mut solver, b, Part::A);
                solver.add_clause(&[l]);
            }
            let bad_lit = enc.encode(blaster.aig(), &mut solver, bad_bit, Part::A);
            let limits = self.budget.sat_limits(started);
            stats.sat_queries += 1;
            match solver.solve_limited(&[bad_lit], limits.clone()) {
                SolveResult::Sat => return ReachResult::Path(path),
                SolveResult::Unknown(why) => return ReachResult::Stopped(why.into()),
                SolveResult::Unsat => {}
            }
            // Successor via two queries per predicate.
            let mut succ: AbsState = Vec::with_capacity(preds.len());
            for &pb in &pn_bits {
                let pl = enc.encode(blaster.aig(), &mut solver, pb, Part::A);
                stats.sat_queries += 2;
                let can_true = solver.solve_limited(&[pl], limits.clone());
                let can_false = solver.solve_limited(&[!pl], limits.clone());
                let v = match (can_true, can_false) {
                    (SolveResult::Sat, SolveResult::Unsat) => Some(true),
                    (SolveResult::Unsat, SolveResult::Sat) => Some(false),
                    (SolveResult::Unknown(why), _) | (_, SolveResult::Unknown(why)) => {
                        return ReachResult::Stopped(why.into())
                    }
                    (SolveResult::Unsat, SolveResult::Unsat) => {
                        // No successor at all (dead abstract state).
                        return ReachResult::Proof;
                    }
                    _ => None,
                };
                succ.push(v);
            }
            if visited.contains(&succ) {
                return ReachResult::Proof;
            }
            visited.push(succ.clone());
            path.push(succ);
            if path.len() > 4096 {
                return ReachResult::Stopped(Unknown::BoundReached);
            }
        }
    }
}

/// WP refinement: add atoms of the one-step weakest preconditions of
/// the current predicates and of the bad conditions.
fn refine_wp(
    ts: &mut TransitionSystem,
    preds: &mut Vec<ExprId>,
    is_state: &std::collections::HashSet<VarId>,
    cap: usize,
) {
    let sources: Vec<ExprId> = preds
        .iter()
        .copied()
        .chain(ts.bads().iter().map(|b| b.expr))
        .collect();
    for src in sources {
        if preds.len() >= cap {
            return;
        }
        let wp = substitute_next(ts, src);
        for a in collect_atoms(ts.pool(), wp, &|v| is_state.contains(&v)) {
            if preds.len() >= cap {
                return;
            }
            push_pred(preds, a);
        }
    }
}

/// Search-control inputs for one interpolant refinement attempt (the
/// spurious path plus the resource envelope it may spend).
struct ItpRefine<'a> {
    /// The infeasible abstract path being refuted.
    path: &'a [AbsState],
    /// Engine start time for budget accounting.
    started: Instant,
    budget: Budget,
    /// Predicate-count ceiling.
    cap: usize,
}

/// Interpolant refinement: compute a bit-level Craig interpolant for
/// the infeasible abstract path at a middle cut and fold it back into
/// a word-level predicate over individual state bits.
fn refine_itp(
    ts: &mut TransitionSystem,
    preds: &mut Vec<ExprId>,
    stats: &mut EngineStats,
    r: &ItpRefine<'_>,
) {
    let ItpRefine {
        path,
        started,
        ref budget,
        cap,
    } = *r;
    if preds.len() >= cap {
        return;
    }
    let n = path.len() - 1;
    if n == 0 {
        return;
    }
    // Blast the system once; predicates of the path are re-blasted per
    // frame below.
    let sys = aig::blast_system(ts);
    let bads = sys.bads.clone();
    let mut sys = sys;
    let any_bad = sys.aig.or_all(&bads);

    // Try every cut until one yields a new predicate.
    for cut in (1..=n).rev() {
        if budget.expired(started) {
            return;
        }
        let mut solver = Solver::with_proof();
        // Frame variable literals; frame `cut` is the shared interface.
        let mut frame_lits: Vec<Vec<Lit>> = Vec::new();
        let mut encs: Vec<aig::FrameEncoder> = Vec::new();
        for _f in 0..=n {
            let lits: Vec<Lit> = sys
                .latches
                .iter()
                .map(|_| Lit::pos(solver.new_var()))
                .collect();
            let mut enc = aig::FrameEncoder::new();
            for (latch, &l) in sys.latches.iter().zip(&lits) {
                enc.bind(latch.output, l);
            }
            frame_lits.push(lits);
            encs.push(enc);
        }
        let part_of = |f: usize| if f < cut { Part::A } else { Part::B };
        // Init in A.
        for (latch, &l) in sys.latches.iter().zip(&frame_lits[0]) {
            if let Some(init) = latch.init {
                solver.add_clause_in(&[if init { l } else { !l }], Part::A);
            }
        }
        // Transitions f -> f+1, in the partition of frame f.
        for f in 0..n {
            for (i, latch) in sys.latches.iter().enumerate() {
                let nl = encs[f].encode(&sys.aig, &mut solver, latch.next, part_of(f));
                let tgt = frame_lits[f + 1][i];
                solver.add_clause_in(&[!nl, tgt], part_of(f));
                solver.add_clause_in(&[nl, !tgt], part_of(f));
            }
            for &c in &sys.constraints {
                let cl = encs[f].encode(&sys.aig, &mut solver, c, part_of(f));
                solver.add_clause_in(&[cl], part_of(f));
            }
        }
        // Bad at frame n (B side).
        let bl = encs[n].encode(&sys.aig, &mut solver, any_bad, Part::B);
        solver.add_clause_in(&[bl], Part::B);
        stats.sat_queries += 1;
        let limits = budget.sat_limits(started);
        match solver.solve_limited(&[], limits) {
            SolveResult::Unsat => {
                if let Some(itp) = solver.interpolant() {
                    // Map shared SAT variables back to (state, bit).
                    let mut bit_expr: HashMap<satb::Var, ExprId> = HashMap::new();
                    let mut li = 0usize;
                    let state_vars: Vec<VarId> = ts.states().iter().map(|s| s.var).collect();
                    for var in state_vars {
                        let var_e = ts.pool_mut().var(var);
                        match ts.pool().var_sort(var) {
                            Sort::Bv(w) => {
                                for b in 0..w {
                                    let e = ts.pool_mut().extract(var_e, b, b);
                                    bit_expr.insert(frame_lits[cut][li].var(), e);
                                    li += 1;
                                }
                            }
                            Sort::Array {
                                index_width,
                                elem_width,
                            } => {
                                for idx in 0..(1u64 << index_width) {
                                    let ie = ts.pool_mut().constv(index_width, idx);
                                    let re = ts.pool_mut().read(var_e, ie);
                                    for b in 0..elem_width {
                                        let e = ts.pool_mut().extract(re, b, b);
                                        bit_expr.insert(frame_lits[cut][li].var(), e);
                                        li += 1;
                                    }
                                }
                            }
                        }
                    }
                    let pe = itp_to_word(ts, &itp, &bit_expr);
                    if ts.pool().const_bits(pe).is_none() && !preds.contains(&pe) {
                        preds.push(pe);
                        return;
                    }
                }
            }
            SolveResult::Sat => {
                // The raw path (without abstract-state constraints) is
                // feasible at this depth, so interpolants do not exist;
                // the caller's next concretization will find the bug.
                return;
            }
            SolveResult::Unknown(_) => return,
        }
    }
}

/// Rebuilds an interpolant as a word-level single-bit expression.
fn itp_to_word(
    ts: &mut TransitionSystem,
    itp: &satb::Interpolant,
    bit_expr: &HashMap<satb::Var, ExprId>,
) -> ExprId {
    use satb::interp::ItpNode;
    let mut out: Vec<ExprId> = Vec::with_capacity(itp.nodes().len());
    for n in itp.nodes() {
        let e = match *n {
            ItpNode::Const(c) => ts.pool_mut().bool_const(c),
            ItpNode::Lit(l) => {
                let base = *bit_expr.get(&l.var()).expect("shared var is a state bit");
                if l.is_positive() {
                    base
                } else {
                    ts.pool_mut().not(base)
                }
            }
            ItpNode::And(a, b) => {
                let (x, y) = (out[a as usize], out[b as usize]);
                ts.pool_mut().and(x, y)
            }
            ItpNode::Or(a, b) => {
                let (x, y) = (out[a as usize], out[b as usize]);
                ts.pool_mut().or(x, y)
            }
        };
        out.push(e);
    }
    out[itp.root()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gated_counter(limit: u64, bad_at: u64) -> SwProgram {
        let mut ts = TransitionSystem::new("gated");
        let s = ts.add_state("c", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, limit);
        let one = ts.pool_mut().constv(8, 1);
        let lt = ts.pool_mut().ult(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let nx = ts.pool_mut().ite(lt, inc, sv);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let b = ts.pool_mut().constv(8, bad_at);
        let bad = ts.pool_mut().eq(sv, b);
        ts.add_bad(bad, "hit");
        SwProgram::from_ts(ts)
    }

    #[test]
    fn proves_safe_gated_counter_wp() {
        // c saturates at 10; bad at 200 unreachable.
        let out = PredAbs::default().check(&gated_counter(10, 200));
        assert_eq!(out.outcome, Verdict::Safe);
    }

    #[test]
    fn proves_safe_gated_counter_itp() {
        let out = PredAbs {
            refine: RefineMode::Interpolant,
            ..PredAbs::default()
        }
        .check(&gated_counter(10, 200));
        assert_eq!(out.outcome, Verdict::Safe);
    }

    #[test]
    fn finds_real_bug_with_trace() {
        let prog = gated_counter(200, 9);
        let out = PredAbs::default().check(&prog);
        match out.outcome {
            Verdict::Unsafe(t) => {
                let sys = aig::blast_system(&prog.ts);
                assert!(t.replays_on(&sys), "trace must replay");
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }
}
