//! SeaHorn-style PDR over a numerically abstracted software-netlist.
//!
//! SeaHorn encodes C programs into constrained Horn clauses over
//! *linear integer arithmetic*; the paper observes that its "limited
//! support for bitvectors" makes it solve half the benchmarks but
//! produce **false negatives** (wrong "unsafe" verdicts) on the other
//! half. We reproduce exactly that failure mode: before running PDR,
//! the transition relation is rewritten so that every operator a
//! linear-arithmetic encoding cannot express precisely — bitwise
//! and/or/xor on words, shifts by non-constant amounts, multiplication
//! of two variables, concatenations and reductions — is replaced by a
//! fresh nondeterministic input (a sound over-approximation).
//! Counterexamples found on the abstracted system are reported
//! *without concretization*, as SeaHorn did.

use crate::Analyzer;
use engines::{pdr::Pdr, Budget, CheckOutcome, Checker, Verdict};
use rtlir::{BinOp, ExprId, Node, Sort, TransitionSystem, UnOp};
use std::collections::HashMap;
use v2c::SwProgram;

/// SeaHorn-style analyzer: LIA-grade abstraction + PDR.
#[derive(Clone, Debug, Default)]
pub struct SeaHorn {
    /// Resource limits.
    pub budget: Budget,
}

impl SeaHorn {
    /// Creates the analyzer with a budget.
    pub fn new(budget: Budget) -> SeaHorn {
        SeaHorn { budget }
    }
}

/// Rewrites a transition system, havocking the operators a linear
/// integer arithmetic encoding loses. Returns the abstracted system
/// and the number of havocked operator instances.
pub fn abstract_bitvector_ops(ts: &TransitionSystem) -> (TransitionSystem, usize) {
    let mut out = TransitionSystem::new(format!("{}#lia", ts.name()));
    let mut havocked = 0usize;

    // Recreate inputs and states.
    let mut var_map: HashMap<rtlir::VarId, rtlir::VarId> = HashMap::new();
    for &iv in ts.inputs() {
        let d = ts.pool().var_decl(iv).clone();
        let nv = out.add_input(d.name, d.sort);
        var_map.insert(iv, nv);
    }
    for s in ts.states() {
        let d = ts.pool().var_decl(s.var).clone();
        let nv = out.add_state(d.name, d.sort);
        var_map.insert(s.var, nv);
    }

    // Translate expressions bottom-up, havocking lossy operators.
    let mut memo: HashMap<ExprId, ExprId> = HashMap::new();
    let exprs_to_translate: Vec<ExprId> = ts
        .states()
        .iter()
        .flat_map(|s| s.init.into_iter().chain(s.next))
        .chain(ts.bads().iter().map(|b| b.expr))
        .chain(ts.constraints().iter().copied())
        .collect();

    fn walk(
        ts: &TransitionSystem,
        out: &mut TransitionSystem,
        var_map: &HashMap<rtlir::VarId, rtlir::VarId>,
        memo: &mut HashMap<ExprId, ExprId>,
        havocked: &mut usize,
        root: ExprId,
    ) -> ExprId {
        if let Some(&t) = memo.get(&root) {
            return t;
        }
        let mut order = Vec::new();
        let mut stack = vec![(root, false)];
        while let Some((e, expanded)) = stack.pop() {
            if memo.contains_key(&e) {
                continue;
            }
            if expanded {
                order.push(e);
                continue;
            }
            stack.push((e, true));
            match ts.pool().node(e) {
                Node::Const { .. } | Node::Var(_) | Node::ConstArray { .. } => {}
                Node::Un(_, a) | Node::Extract { arg: a, .. } => stack.push((*a, false)),
                Node::Zext { arg, .. } | Node::Sext { arg, .. } => stack.push((*arg, false)),
                Node::Bin(_, a, b) => {
                    stack.push((*a, false));
                    stack.push((*b, false));
                }
                Node::Ite(c, t, f) => {
                    stack.push((*c, false));
                    stack.push((*t, false));
                    stack.push((*f, false));
                }
                Node::Read { array, index } => {
                    stack.push((*array, false));
                    stack.push((*index, false));
                }
                Node::Write {
                    array,
                    index,
                    value,
                } => {
                    stack.push((*array, false));
                    stack.push((*index, false));
                    stack.push((*value, false));
                }
            }
        }
        for e in order {
            let node = ts.pool().node(e).clone();
            let sort = ts.pool().sort(e);

            let t = match node {
                Node::Const { width, bits } => out.pool_mut().constv(width, bits),
                Node::ConstArray {
                    index_width,
                    elem_width,
                    bits,
                } => out.pool_mut().const_array(index_width, elem_width, bits),
                Node::Var(v) => {
                    let nv = var_map[&v];
                    out.pool_mut().var(nv)
                }
                Node::Un(op, a) => {
                    let ta = memo[&a];
                    match op {
                        UnOp::Neg => out.pool_mut().neg(ta),
                        // Bitwise complement on a word and reductions
                        // are not linear: havoc unless single-bit.
                        UnOp::Not => {
                            if sort == Sort::BOOL {
                                out.pool_mut().not(ta)
                            } else {
                                havoc(out, havocked, sort)
                            }
                        }
                        UnOp::RedAnd | UnOp::RedOr | UnOp::RedXor => havoc(out, havocked, sort),
                    }
                }
                Node::Bin(op, a, b) => {
                    let (ta, tb) = (memo[&a], memo[&b]);
                    let a_const = out.pool().const_bits(ta).is_some();
                    let b_const = out.pool().const_bits(tb).is_some();
                    match op {
                        BinOp::Add => out.pool_mut().add(ta, tb),
                        BinOp::Sub => out.pool_mut().sub(ta, tb),
                        BinOp::Eq => out.pool_mut().eq(ta, tb),
                        BinOp::Ult => out.pool_mut().ult(ta, tb),
                        BinOp::Ule => out.pool_mut().ule(ta, tb),
                        BinOp::Slt => out.pool_mut().slt(ta, tb),
                        BinOp::Sle => out.pool_mut().sle(ta, tb),
                        // Linear only with a constant operand.
                        BinOp::Mul | BinOp::Udiv | BinOp::Urem => {
                            if a_const || b_const {
                                match op {
                                    BinOp::Mul => out.pool_mut().mul(ta, tb),
                                    BinOp::Udiv => out.pool_mut().udiv(ta, tb),
                                    _ => out.pool_mut().urem(ta, tb),
                                }
                            } else {
                                havoc(out, havocked, sort)
                            }
                        }
                        // Single-bit and/or/xor are boolean structure
                        // (Horn encodings keep them); wider ones are
                        // bit-level and lost.
                        BinOp::And | BinOp::Or | BinOp::Xor => {
                            if sort == Sort::BOOL {
                                match op {
                                    BinOp::And => out.pool_mut().and(ta, tb),
                                    BinOp::Or => out.pool_mut().or(ta, tb),
                                    _ => out.pool_mut().xor(ta, tb),
                                }
                            } else {
                                havoc(out, havocked, sort)
                            }
                        }
                        BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                            if b_const {
                                match op {
                                    BinOp::Shl => out.pool_mut().shl(ta, tb),
                                    BinOp::Lshr => out.pool_mut().lshr(ta, tb),
                                    _ => out.pool_mut().ashr(ta, tb),
                                }
                            } else {
                                havoc(out, havocked, sort)
                            }
                        }
                        BinOp::Concat => havoc(out, havocked, sort),
                    }
                }
                Node::Ite(c, tt, ff) => {
                    let (tc, t1, t0) = (memo[&c], memo[&tt], memo[&ff]);
                    out.pool_mut().ite(tc, t1, t0)
                }
                // Selecting bits out of words is bit-level: havoc
                // unless the operand is single-bit already.
                Node::Extract { hi, lo, arg } => {
                    let ta = memo[&arg];
                    if out.pool().const_bits(ta).is_some() {
                        out.pool_mut().extract(ta, hi, lo)
                    } else if hi == lo && lo == 0 && out.pool().sort(ta) == Sort::BOOL {
                        ta
                    } else {
                        havoc(out, havocked, sort)
                    }
                }
                Node::Zext { arg, width } => {
                    let ta = memo[&arg];
                    out.pool_mut().zext(ta, width)
                }
                Node::Sext { arg, width } => {
                    let ta = memo[&arg];
                    out.pool_mut().sext(ta, width)
                }
                Node::Read { array, index } => {
                    let (ta, ti) = (memo[&array], memo[&index]);
                    out.pool_mut().read(ta, ti)
                }
                Node::Write {
                    array,
                    index,
                    value,
                } => {
                    let (ta, ti, tv) = (memo[&array], memo[&index], memo[&value]);
                    out.pool_mut().write(ta, ti, tv)
                }
            };
            memo.insert(e, t);
        }
        memo[&root]
    }

    fn havoc(out: &mut TransitionSystem, havocked: &mut usize, sort: Sort) -> ExprId {
        *havocked += 1;
        let v = out.add_input(format!("__havoc{}", *havocked), sort);
        out.pool_mut().var(v)
    }

    for e in exprs_to_translate {
        walk(ts, &mut out, &var_map, &mut memo, &mut havocked, e);
    }
    for s in ts.states() {
        let nv = var_map[&s.var];
        if let Some(init) = s.init {
            // Init expressions are constant: translate preserves them.
            let t = memo[&init];
            out.set_init(nv, t);
        }
        if let Some(next) = s.next {
            let t = memo[&next];
            out.set_next(nv, t);
        }
    }
    for b in ts.bads() {
        let t = memo[&b.expr];
        out.add_bad(t, b.name.clone());
    }
    for &c in ts.constraints() {
        let t = memo[&c];
        out.add_constraint(t);
    }
    (out, havocked)
}

impl Analyzer for SeaHorn {
    fn name(&self) -> &'static str {
        "seahorn-pdr"
    }

    fn check(&self, prog: &SwProgram) -> CheckOutcome {
        let (abs_ts, _havocked) = abstract_bitvector_ops(&prog.ts);
        let out = Pdr::new(self.budget.clone()).check(&abs_ts);
        match out.outcome {
            // Safe on the over-approximation is sound.
            Verdict::Safe => out,
            // SeaHorn reports abstract counterexamples as final
            // results — the paper's observed false negatives.
            Verdict::Unsafe(t) => CheckOutcome {
                outcome: Verdict::Unsafe(t),
                stats: out.stats,
                certificate: None,
            },
            Verdict::Unknown(u) => CheckOutcome {
                outcome: Verdict::Unknown(u),
                stats: out.stats,
                certificate: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::Sort;

    #[test]
    fn control_only_design_is_exact() {
        // Pure control logic (no bitwise word ops): abstraction is a
        // no-op and PDR proves it.
        let mut ts = TransitionSystem::new("ctrl");
        let s = ts.add_state("st", Sort::Bv(2));
        let sv = ts.pool_mut().var(s);
        let z = ts.pool_mut().constv(2, 0);
        let one = ts.pool_mut().constv(2, 1);
        let two = ts.pool_mut().constv(2, 2);
        let is0 = ts.pool_mut().eq(sv, z);
        let is1 = ts.pool_mut().eq(sv, one);
        let nx1 = ts.pool_mut().ite(is1, two, z);
        let nx = ts.pool_mut().ite(is0, one, nx1);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let three = ts.pool_mut().constv(2, 3);
        let bad = ts.pool_mut().eq(sv, three);
        ts.add_bad(bad, "unreachable state");
        let (abs, havocked) = abstract_bitvector_ops(&ts);
        assert_eq!(havocked, 0, "control design needs no havoc");
        assert_eq!(abs.states().len(), 1);
        let out = SeaHorn::default().check(&SwProgram::from_ts(ts));
        assert_eq!(out.outcome, Verdict::Safe);
    }

    #[test]
    fn bit_heavy_design_gives_false_negative() {
        // Safe design whose safety depends on an xor identity the LIA
        // abstraction loses: SeaHorn-mode reports a (spurious) bug —
        // the paper's "wrong" column.
        let mut ts = TransitionSystem::new("xorid");
        let s = ts.add_state("c", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let k = ts.pool_mut().constv(8, 0xAA);
        let x1 = ts.pool_mut().xor(sv, k);
        let x2 = ts.pool_mut().xor(x1, k); // x2 == c, always
        let zero = ts.pool_mut().constv(8, 0);
        ts.set_init(s, zero);
        let one = ts.pool_mut().constv(8, 1);
        let inc = ts.pool_mut().add(sv, one);
        ts.set_next(s, inc);
        let ne = ts.pool_mut().ne(x2, sv);
        ts.add_bad(ne, "xor roundtrip broken");
        let (_, havocked) = abstract_bitvector_ops(&ts);
        assert!(havocked > 0, "xor ops must be havocked");
        let out = SeaHorn::default().check(&SwProgram::from_ts(ts.clone()));
        // The abstraction cannot prove it; PDR on the havocked system
        // finds a spurious counterexample.
        assert!(
            out.outcome.is_unsafe(),
            "expected the documented false negative, got {:?}",
            out.outcome
        );
        // The concrete design is actually safe (witness: bit-precise
        // PDR).
        let exact = Pdr::default().check(&ts);
        assert_eq!(exact.outcome, Verdict::Safe);
    }
}
