//! Portfolio seats: software analyzers as hardware [`Checker`]s.
//!
//! The paper's strongest configuration (Figure 5, "hybrid") races
//! hardware engines *and* software analyzers on the same design. The
//! hardware side speaks [`engines::Checker`] over a word-level
//! [`rtlir::TransitionSystem`]; the software side speaks
//! [`Analyzer`] over a [`v2c::SwProgram`]. [`SwSeat`] bridges the two:
//! `check` lowers the transition system through the v2c
//! software-netlist path and runs the wrapped analyzer, so any
//! analyzer can sit in an [`engines::portfolio::Portfolio`].
//!
//! Cancellation comes for free: the analyzers already thread their
//! [`engines::Budget`]'s stop flag through every SAT query, so a
//! portfolio winner cancels a seated analyzer exactly like a hardware
//! member. Seat only *sound* analyzers — [`crate::predabs::PredAbs`]
//! (both refinement modes) and [`crate::impact::Impact`] qualify; the
//! deliberately imprecise [`crate::seahorn::SeaHorn`] and
//! [`crate::absint::IntervalAi`] reproduce paper-observed wrong/alarm
//! behaviour and would trip the portfolio's disagreement alarm.
//!
//! # Certification caveat
//!
//! Seated analyzers answer *without a witness*: their `Safe` carries no
//! inductive invariant the portfolio's certificate checker could
//! re-verify (the software abstraction's invariant lives in a different
//! state space than the bit-level template). The portfolio accepts such
//! answers **uncertified** — and if a hardware member later produces a
//! contradicting *checked* witness, the certifying side wins the race
//! retroactively. `Unsafe` answers are different: a seat's trace *is*
//! replayed on the bit-level model like any other, so a seated
//! analyzer's counterexample certifies (or is demoted) normally.

use crate::Analyzer;
use engines::{CheckOutcome, Checker};
use rtlir::TransitionSystem;
use v2c::SwProgram;

/// Wraps a software [`Analyzer`] as a hardware [`Checker`].
pub struct SwSeat<A: Analyzer> {
    analyzer: A,
}

impl<A: Analyzer> SwSeat<A> {
    /// Seats `analyzer` (build it from the portfolio's
    /// [`engines::portfolio::Portfolio::engine_budget`] so the shared
    /// stop flag reaches its SAT queries).
    pub fn new(analyzer: A) -> SwSeat<A> {
        SwSeat { analyzer }
    }
}

impl<A: Analyzer> Checker for SwSeat<A> {
    fn name(&self) -> &'static str {
        self.analyzer.name()
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let prog = SwProgram::from_ts(ts.clone());
        self.analyzer.check(&prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predabs::{PredAbs, RefineMode};
    use engines::{Budget, Verdict};
    use rtlir::Sort;

    fn saturating_counter() -> TransitionSystem {
        let mut ts = TransitionSystem::new("sat-counter");
        let s = ts.add_state("count", Sort::Bv(4));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(4, 5);
        let one = ts.pool_mut().constv(4, 1);
        let at = ts.pool_mut().uge(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let next = ts.pool_mut().ite(at, sv, inc);
        let zero = ts.pool_mut().constv(4, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let bad = ts.pool_mut().ugt(sv, lim);
        ts.add_bad(bad, "overflow");
        ts
    }

    #[test]
    fn seated_analyzer_checks_transition_systems() {
        let seat = SwSeat::new(PredAbs::new(Budget::default(), RefineMode::Wp));
        assert_eq!(seat.name(), "cpa-predabs");
        let out = seat.check(&saturating_counter());
        assert_eq!(out.outcome, Verdict::Safe);
    }

    #[test]
    fn seated_analyzer_races_in_a_portfolio() {
        use engines::portfolio::Portfolio;
        let mut p = Portfolio::with_default_engines(Budget::default());
        p.push(SwSeat::new(PredAbs::new(p.engine_budget(), RefineMode::Wp)));
        let report = p.check_detailed(&saturating_counter());
        assert_eq!(report.verdict, Verdict::Safe);
        assert!(!report.disagreement, "seated analyzer must not disagree");
        assert_eq!(report.engines.len(), 5);
        let seat = report
            .engines
            .iter()
            .find(|e| e.name == "cpa-predabs")
            .expect("seat raced");
        // The seat answers without a bit-level witness: accepted
        // uncertified if it wins, never demoted for the missing
        // certificate (see module docs).
        if seat.winner {
            assert!(!report.certified);
            let rep = seat.certify.as_ref().expect("winner is checked");
            assert!(rep.ok && !rep.witnessed);
        } else {
            assert!(report.certified, "hardware winner carries a witness");
        }
    }
}
