//! CBMC-style k-induction on the software-netlist (Figure 3's
//! "CBMC-kind" series).
//!
//! CBMC symbolically executes the unwound program and bit-blasts to
//! SAT — operationally the same word-level unrolling our
//! [`rtlir::Unroller`] performs on the software-netlist's loop. Unlike
//! the hardware engines, CBMC's k-induction (as run in the paper via
//! the wrapper script) does not add simple-path constraints, so
//! properties that need them are out of reach — visible on the hard
//! benchmarks.

use crate::util::{solve_word, TraceExtractor};
use crate::Analyzer;
use engines::{Budget, CheckOutcome, EngineStats, Unknown, Verdict};
use rtlir::unroll::{InitMode, Unroller};
use satb::SolveResult;
use std::time::Instant;
use v2c::SwProgram;

/// CBMC-style k-induction analyzer.
#[derive(Clone, Debug, Default)]
pub struct CbmcKind {
    /// Resource limits.
    pub budget: Budget,
}

impl CbmcKind {
    /// Creates the analyzer with a budget.
    pub fn new(budget: Budget) -> CbmcKind {
        CbmcKind { budget }
    }
}

impl Analyzer for CbmcKind {
    fn name(&self) -> &'static str {
        "cbmc-kind"
    }

    fn check(&self, prog: &SwProgram) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();
        let ts = &prog.ts;

        for k in 0..=self.budget.max_depth {
            if let Some(u) = self.budget.interruption(started) {
                return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
            }
            stats.depth = k;

            // Base case (the unwound program with an assertion at
            // iteration k).
            let mut base = Unroller::new(ts, InitMode::Initialized);
            let mut roots = Vec::new();
            for f in 0..=k as usize {
                let c = base.constraint(f);
                roots.push(c);
                if f < k as usize {
                    let b = base.bad(f);
                    let nb = base.pool_mut().not(b);
                    roots.push(nb);
                }
            }
            let bk = base.bad(k as usize);
            roots.push(bk);
            let extractor = TraceExtractor::prepare(&mut base, k as usize);
            stats.sat_queries += 1;
            let q = solve_word(base.pool(), &roots, self.budget.sat_limits(started));
            match q.result {
                SolveResult::Sat => {
                    let mut model = q.model.expect("model");
                    let trace = extractor.extract(ts, &mut model);
                    return CheckOutcome::finish(Verdict::Unsafe(trace), stats, started);
                }
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started);
                }
                SolveResult::Unsat => {}
            }

            // Step case, without simple-path constraints.
            let mut step = Unroller::new(ts, InitMode::Free);
            let mut roots = Vec::new();
            for f in 0..=k as usize {
                let c = step.constraint(f);
                roots.push(c);
                if f < k as usize {
                    let b = step.bad(f);
                    let nb = step.pool_mut().not(b);
                    roots.push(nb);
                }
            }
            let bk = step.bad(k as usize);
            roots.push(bk);
            stats.sat_queries += 1;
            let q = solve_word(step.pool(), &roots, self.budget.sat_limits(started));
            match q.result {
                SolveResult::Unsat => {
                    return CheckOutcome::finish(Verdict::Safe, stats, started);
                }
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started);
                }
                SolveResult::Sat => {}
            }
        }
        CheckOutcome::finish(Verdict::Unknown(Unknown::BoundReached), stats, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::{Sort, TransitionSystem};

    fn prog_counter(bug_at: u64) -> SwProgram {
        let mut ts = TransitionSystem::new("c");
        let s = ts.add_state("count", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(8, 1);
        let nx = ts.pool_mut().add(sv, one);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let c = ts.pool_mut().constv(8, bug_at);
        let bad = ts.pool_mut().eq(sv, c);
        ts.add_bad(bad, "hit");
        SwProgram::from_ts(ts)
    }

    #[test]
    fn finds_bug_with_replayable_trace() {
        let prog = prog_counter(7);
        let out = CbmcKind::default().check(&prog);
        match out.outcome {
            Verdict::Unsafe(trace) => {
                assert_eq!(trace.length(), 7);
                let sys = aig::blast_system(&prog.ts);
                assert!(trace.replays_on(&sys));
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn proves_saturating_counter() {
        let mut ts = TransitionSystem::new("sat");
        let s = ts.add_state("c", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, 10);
        let one = ts.pool_mut().constv(8, 1);
        let at = ts.pool_mut().uge(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let nx = ts.pool_mut().ite(at, sv, inc);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let bad = ts.pool_mut().ugt(sv, lim);
        ts.add_bad(bad, "overflow");
        let out = CbmcKind::default().check(&SwProgram::from_ts(ts));
        assert_eq!(out.outcome, Verdict::Safe);
    }
}
