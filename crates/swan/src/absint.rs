//! Astrée-style interval abstract interpretation.
//!
//! A classical forward abstract interpreter over the unsigned interval
//! domain, with widening. Like the paper's Astrée runs (which the
//! authors excluded from the plots because "it generates many false
//! alarms for safe benchmarks" without manual directives), this
//! analyzer is sound but deliberately imprecise on bit-level
//! operations: it answers [`Verdict::Safe`] only when the interval
//! fixpoint excludes all bad states, and otherwise reports an
//! inconclusive *alarm*.

use crate::Analyzer;
use engines::{Budget, CheckOutcome, EngineStats, Unknown, Verdict};
use rtlir::{BinOp, ExprId, Node, Sort, TransitionSystem, UnOp, Value, VarId};
use std::collections::HashMap;
use std::time::Instant;
use v2c::SwProgram;

/// An unsigned interval `[lo, hi]` over `width`-bit values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound.
    pub lo: u64,
    /// Upper bound.
    pub hi: u64,
    /// Bit width.
    pub width: u32,
}

impl Interval {
    /// The full range of a width.
    pub fn top(width: u32) -> Interval {
        Interval {
            lo: 0,
            hi: rtlir::value::mask(width),
            width,
        }
    }
    /// A singleton value.
    pub fn constant(width: u32, v: u64) -> Interval {
        let v = v & rtlir::value::mask(width);
        Interval {
            lo: v,
            hi: v,
            width,
        }
    }
    /// Whether the interval is the full range.
    pub fn is_top(&self) -> bool {
        self.lo == 0 && self.hi == rtlir::value::mask(self.width)
    }
    /// Whether `v` may be in the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }
    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            width: self.width,
        }
    }
    /// Classic widening: unstable bounds jump to the extremes.
    pub fn widen(&self, newer: &Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo { 0 } else { self.lo },
            hi: if newer.hi > self.hi {
                rtlir::value::mask(self.width)
            } else {
                self.hi
            },
            width: self.width,
        }
    }
}

/// Abstract state: intervals for bit-vector states (arrays smashed to
/// one element interval).
type AbsState = HashMap<VarId, Interval>;

/// The Astrée-style analyzer.
#[derive(Clone, Debug, Default)]
pub struct IntervalAi {
    /// Resource limits (`max_depth` bounds fixpoint iterations).
    pub budget: Budget,
}

impl IntervalAi {
    /// Creates the analyzer with a budget.
    pub fn new(budget: Budget) -> IntervalAi {
        IntervalAi { budget }
    }

    /// Abstract evaluation of an expression under an abstract state;
    /// inputs are unconstrained.
    fn absev(
        ts: &TransitionSystem,
        e: ExprId,
        state: &AbsState,
        cache: &mut HashMap<ExprId, Interval>,
    ) -> Interval {
        if let Some(&i) = cache.get(&e) {
            return i;
        }
        let width = |x: ExprId| match ts.pool().sort(x) {
            Sort::Bv(w) => w,
            Sort::Array { elem_width, .. } => elem_width,
        };
        let w = width(e);
        let out = match ts.pool().node(e).clone() {
            Node::Const { width, bits } => Interval::constant(width, bits),
            Node::ConstArray {
                elem_width, bits, ..
            } => Interval::constant(elem_width, bits),
            Node::Var(v) => match ts.pool().var_sort(v) {
                Sort::Bv(w) => state.get(&v).copied().unwrap_or_else(|| Interval::top(w)),
                Sort::Array { elem_width, .. } => state
                    .get(&v)
                    .copied()
                    .unwrap_or_else(|| Interval::top(elem_width)),
            },
            Node::Un(op, a) => {
                let ia = Self::absev(ts, a, state, cache);
                match op {
                    // Bitwise/reduction: precise only on constants.
                    UnOp::Not => {
                        if ia.lo == ia.hi {
                            Interval::constant(w, !ia.lo)
                        } else {
                            Interval::top(w)
                        }
                    }
                    UnOp::Neg => {
                        if ia.lo == ia.hi {
                            Interval::constant(w, ia.lo.wrapping_neg())
                        } else {
                            Interval::top(w)
                        }
                    }
                    UnOp::RedAnd | UnOp::RedOr | UnOp::RedXor => {
                        if ia.lo == ia.hi {
                            let v = match op {
                                UnOp::RedAnd => rtlir::value::ops::redand(ia.width, ia.lo),
                                UnOp::RedOr => rtlir::value::ops::redor(ia.width, ia.lo),
                                _ => rtlir::value::ops::redxor(ia.width, ia.lo),
                            };
                            Interval::constant(1, v)
                        } else if op == UnOp::RedOr && ia.lo > 0 {
                            Interval::constant(1, 1)
                        } else {
                            Interval::top(1)
                        }
                    }
                }
            }
            Node::Bin(op, a, b) => {
                let ia = Self::absev(ts, a, state, cache);
                let ib = Self::absev(ts, b, state, cache);
                match op {
                    BinOp::Add => {
                        // Precise when no wraparound is possible.
                        let (hi, ovf) = ia.hi.overflowing_add(ib.hi);
                        if !ovf && hi <= rtlir::value::mask(w) {
                            Interval {
                                lo: ia.lo + ib.lo,
                                hi,
                                width: w,
                            }
                        } else {
                            Interval::top(w)
                        }
                    }
                    BinOp::Sub => {
                        if ia.lo >= ib.hi {
                            Interval {
                                lo: ia.lo - ib.hi,
                                hi: ia.hi - ib.lo,
                                width: w,
                            }
                        } else {
                            Interval::top(w)
                        }
                    }
                    BinOp::Mul => {
                        let (hi, ovf) = ia.hi.overflowing_mul(ib.hi);
                        if !ovf && hi <= rtlir::value::mask(w) {
                            Interval {
                                lo: ia.lo.wrapping_mul(ib.lo),
                                hi,
                                width: w,
                            }
                        } else {
                            Interval::top(w)
                        }
                    }
                    BinOp::Udiv => match ia.hi.checked_div(ib.lo) {
                        Some(hi) => Interval {
                            lo: ia.lo / ib.hi.max(1),
                            hi,
                            width: w,
                        },
                        None => Interval::top(w),
                    },
                    BinOp::Urem => {
                        if ib.lo > 0 {
                            Interval {
                                lo: 0,
                                hi: (ib.hi - 1).min(ia.hi),
                                width: w,
                            }
                        } else {
                            Interval::top(w)
                        }
                    }
                    BinOp::And => Interval {
                        lo: 0,
                        hi: ia.hi.min(ib.hi),
                        width: w,
                    },
                    BinOp::Or | BinOp::Xor => {
                        // Upper-bounded by the highest possible bit.
                        let max = ia.hi.max(ib.hi);
                        let bits = 64 - max.leading_zeros();
                        Interval {
                            lo: 0,
                            hi: rtlir::value::mask(bits.max(1).min(w)),
                            width: w,
                        }
                    }
                    BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                        if ia.lo == ia.hi && ib.lo == ib.hi {
                            let v = match op {
                                BinOp::Shl => rtlir::value::ops::shl(w, ia.lo, ib.lo),
                                BinOp::Lshr => rtlir::value::ops::lshr(w, ia.lo, ib.lo),
                                _ => rtlir::value::ops::ashr(w, ia.lo, ib.lo),
                            };
                            Interval::constant(w, v)
                        } else if op == BinOp::Lshr {
                            Interval {
                                lo: 0,
                                hi: ia.hi,
                                width: w,
                            }
                        } else {
                            Interval::top(w)
                        }
                    }
                    BinOp::Eq => {
                        if ia.lo == ia.hi && ib.lo == ib.hi {
                            Interval::constant(1, (ia.lo == ib.lo) as u64)
                        } else if ia.hi < ib.lo || ib.hi < ia.lo {
                            Interval::constant(1, 0)
                        } else {
                            Interval::top(1)
                        }
                    }
                    BinOp::Ult => {
                        if ia.hi < ib.lo {
                            Interval::constant(1, 1)
                        } else if ia.lo >= ib.hi {
                            Interval::constant(1, 0)
                        } else {
                            Interval::top(1)
                        }
                    }
                    BinOp::Ule => {
                        if ia.hi <= ib.lo {
                            Interval::constant(1, 1)
                        } else if ia.lo > ib.hi {
                            Interval::constant(1, 0)
                        } else {
                            Interval::top(1)
                        }
                    }
                    BinOp::Slt | BinOp::Sle => Interval::top(1),
                    BinOp::Concat => {
                        let wb = width(b);
                        if ia.lo == ia.hi && ib.lo == ib.hi {
                            Interval::constant(w, rtlir::value::ops::concat(ia.lo, wb, ib.lo))
                        } else {
                            Interval::top(w)
                        }
                    }
                }
            }
            Node::Ite(c, t, f) => {
                let ic = Self::absev(ts, c, state, cache);
                if ic.lo == ic.hi {
                    if ic.lo == 1 {
                        Self::absev(ts, t, state, cache)
                    } else {
                        Self::absev(ts, f, state, cache)
                    }
                } else {
                    // Branch-condition refinement: when the condition
                    // constrains a single state variable, evaluate each
                    // branch under the refined state (fresh caches).
                    let it = match Self::refine(ts, c, state, true) {
                        Some(rs) => {
                            let mut fresh = HashMap::new();
                            Self::absev(ts, t, &rs, &mut fresh)
                        }
                        None => Self::absev(ts, t, state, cache),
                    };
                    let iff = match Self::refine(ts, c, state, false) {
                        Some(rs) => {
                            let mut fresh = HashMap::new();
                            Self::absev(ts, f, &rs, &mut fresh)
                        }
                        None => Self::absev(ts, f, state, cache),
                    };
                    it.join(&iff)
                }
            }
            Node::Extract { hi, lo, arg } => {
                let ia = Self::absev(ts, arg, state, cache);
                if ia.lo == ia.hi {
                    Interval::constant(hi - lo + 1, rtlir::value::ops::extract(hi, lo, ia.lo))
                } else if lo == 0 {
                    Interval {
                        lo: 0,
                        hi: ia.hi.min(rtlir::value::mask(hi + 1)),
                        width: hi - lo + 1,
                    }
                } else {
                    Interval::top(hi - lo + 1)
                }
            }
            Node::Zext { arg, width } => {
                let ia = Self::absev(ts, arg, state, cache);
                Interval {
                    lo: ia.lo,
                    hi: ia.hi,
                    width,
                }
            }
            Node::Sext { arg, width } => {
                let ia = Self::absev(ts, arg, state, cache);
                if ia.lo == ia.hi {
                    Interval::constant(width, rtlir::value::ops::sext(ia.width, width, ia.lo))
                } else {
                    Interval::top(width)
                }
            }
            Node::Read { array, .. } => {
                // Smashed array: element interval.
                Self::absev(ts, array, state, cache)
            }
            Node::Write { array, value, .. } => {
                // Smashed: join the written value into the elements.
                let ia = Self::absev(ts, array, state, cache);
                let iv = Self::absev(ts, value, state, cache);
                ia.join(&iv)
            }
        };
        cache.insert(e, out);
        out
    }
}

impl IntervalAi {
    /// Refines the abstract state under a branch condition of the form
    /// `var < const`, `var <= const` or `var == const` (and mirrored),
    /// taken `polarity`-wise. Returns `None` when no refinement
    /// applies.
    fn refine(
        ts: &TransitionSystem,
        cond: ExprId,
        state: &AbsState,
        polarity: bool,
    ) -> Option<AbsState> {
        let (op, a, b) = match ts.pool().node(cond) {
            Node::Bin(op @ (BinOp::Ult | BinOp::Ule | BinOp::Eq), a, b) => (*op, *a, *b),
            _ => return None,
        };
        let as_var = |e: ExprId| match ts.pool().node(e) {
            Node::Var(v) if ts.pool().var_sort(*v).is_bv() => Some(*v),
            _ => None,
        };
        let as_const = |e: ExprId| ts.pool().const_bits(e);
        // (variable, constant, var-on-left?)
        let (v, c, var_left) = match (as_var(a), as_const(b), as_const(a), as_var(b)) {
            (Some(v), Some(c), _, _) => (v, c, true),
            (_, _, Some(c), Some(v)) => (v, c, false),
            _ => return None,
        };
        let cur = state.get(&v).copied()?;
        let mut iv = cur;
        match (op, var_left, polarity) {
            (BinOp::Eq, _, true) => {
                iv = Interval::constant(cur.width, c);
            }
            (BinOp::Eq, _, false) => return None, // holes not representable
            (BinOp::Ult, true, true) => {
                // v < c
                iv.hi = iv.hi.min(c.checked_sub(1)?);
            }
            (BinOp::Ult, true, false) => {
                // v >= c
                iv.lo = iv.lo.max(c);
            }
            (BinOp::Ult, false, true) => {
                // c < v
                iv.lo = iv.lo.max(c.checked_add(1)?);
            }
            (BinOp::Ult, false, false) => {
                // v <= c
                iv.hi = iv.hi.min(c);
            }
            (BinOp::Ule, true, true) => {
                // v <= c
                iv.hi = iv.hi.min(c);
            }
            (BinOp::Ule, true, false) => {
                // v > c
                iv.lo = iv.lo.max(c.checked_add(1)?);
            }
            (BinOp::Ule, false, true) => {
                // c <= v
                iv.lo = iv.lo.max(c);
            }
            (BinOp::Ule, false, false) => {
                // v < c
                iv.hi = iv.hi.min(c.checked_sub(1)?);
            }
            _ => return None,
        }
        if iv.lo > iv.hi {
            // Branch infeasible: keep the unrefined state (sound).
            return None;
        }
        let mut rs = state.clone();
        rs.insert(v, iv);
        Some(rs)
    }
}

impl Analyzer for IntervalAi {
    fn name(&self) -> &'static str {
        "astree-intervals"
    }

    fn check(&self, prog: &SwProgram) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();
        let ts = &prog.ts;

        // Initial abstract state.
        let mut state: AbsState = HashMap::new();
        for s in ts.states() {
            let sort = ts.pool().var_sort(s.var);
            let w = match sort {
                Sort::Bv(w) => w,
                Sort::Array { elem_width, .. } => elem_width,
            };
            let iv = match s.init {
                Some(init) => {
                    let env: HashMap<VarId, Value> = HashMap::new();
                    match rtlir::eval(ts.pool(), init, &env) {
                        Value::Bv { bits, .. } => Interval::constant(w, bits),
                        Value::Array(a) => {
                            // Join default and all stored elements.
                            let mut i = Interval::constant(w, a.default);
                            for &v in a.store.values() {
                                i = i.join(&Interval::constant(w, v));
                            }
                            i
                        }
                    }
                }
                None => Interval::top(w),
            };
            state.insert(s.var, iv);
        }

        // Fixpoint with delayed widening (a precision knob real
        // interval analyzers expose; small saturating counters converge
        // exactly, unbounded growth still widens to top).
        let widen_after = 64u32;
        for iter in 0..self.budget.max_depth.max(256) {
            if self.budget.expired(started) {
                return CheckOutcome::finish(Verdict::Unknown(Unknown::Timeout), stats, started);
            }
            stats.depth = iter;
            let mut cache = HashMap::new();
            let mut next = state.clone();
            let mut changed = false;
            for s in ts.states() {
                if let Some(nx) = s.next {
                    let post = Self::absev(ts, nx, &state, &mut cache);
                    let cur = state[&s.var];
                    let mut joined = cur.join(&post);
                    if iter >= widen_after {
                        joined = cur.widen(&joined);
                    }
                    if joined != cur {
                        changed = true;
                        next.insert(s.var, joined);
                    }
                }
            }
            state = next;
            if !changed {
                break;
            }
        }

        // Check the properties in the fixpoint.
        let mut cache = HashMap::new();
        let mut alarms = Vec::new();
        for b in ts.bads() {
            let iv = Self::absev(ts, b.expr, &state, &mut cache);
            if iv.contains(1) {
                alarms.push(b.name.clone());
            }
        }
        if alarms.is_empty() {
            CheckOutcome::finish(Verdict::Safe, stats, started)
        } else {
            CheckOutcome::finish(
                Verdict::Unknown(Unknown::Inconclusive(format!(
                    "interval analysis raises alarms: {}",
                    alarms.join(", ")
                ))),
                stats,
                started,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::TransitionSystem;

    #[test]
    fn proves_saturating_counter() {
        // c' = c < 10 ? c+1 : c; bad: c > 100. Intervals prove it.
        let mut ts = TransitionSystem::new("sat");
        let s = ts.add_state("c", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, 10);
        let one = ts.pool_mut().constv(8, 1);
        let lt = ts.pool_mut().ult(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let nx = ts.pool_mut().ite(lt, inc, sv);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let h = ts.pool_mut().constv(8, 100);
        let bad = ts.pool_mut().ugt(sv, h);
        ts.add_bad(bad, "c > 100");
        let out = IntervalAi::default().check(&SwProgram::from_ts(ts));
        assert_eq!(out.outcome, Verdict::Safe);
    }

    #[test]
    fn bit_heavy_property_raises_alarm() {
        // bad: (c ^ 0x55) == 0 with c a wrapping counter — intervals
        // cannot decide xor, so an alarm is raised (false alarm shape
        // the paper reports for Astrée).
        let mut ts = TransitionSystem::new("xor");
        let s = ts.add_state("c", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(8, 1);
        let nx = ts.pool_mut().add(sv, one);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let k = ts.pool_mut().constv(8, 0x55);
        let x = ts.pool_mut().xor(sv, k);
        let z2 = ts.pool_mut().constv(8, 0xFF);
        let bad = ts.pool_mut().eq(x, z2);
        ts.add_bad(bad, "xor pattern");
        let out = IntervalAi::default().check(&SwProgram::from_ts(ts));
        assert!(
            matches!(out.outcome, Verdict::Unknown(Unknown::Inconclusive(_))),
            "expected an alarm, got {:?}",
            out.outcome
        );
    }

    #[test]
    fn interval_ops() {
        let a = Interval::constant(8, 5);
        let b = Interval {
            lo: 3,
            hi: 7,
            width: 8,
        };
        assert_eq!(
            a.join(&b),
            Interval {
                lo: 3,
                hi: 7,
                width: 8
            }
        );
        assert!(Interval::top(8).is_top());
        let w = b.widen(&Interval {
            lo: 2,
            hi: 7,
            width: 8,
        });
        assert_eq!(w.lo, 0, "unstable lower bound widens to 0");
        assert_eq!(w.hi, 7, "stable upper bound kept");
    }
}
