//! Software analyzers for software-netlists.
//!
//! Reimplementations of the algorithm cores of the software
//! verification tools the DATE 2016 paper runs on v2c output:
//!
//! | paper tool (SV-COMP)     | analyzer here                  |
//! |--------------------------|--------------------------------|
//! | CBMC 5.2 k-induction     | [`cbmc::CbmcKind`]             |
//! | 2LS 0.3.4 kIkI           | [`twols::TwoLs`]               |
//! | CPAChecker pred. abs.    | [`predabs::PredAbs`] (WP mode) |
//! | CPAChecker interpolation | [`predabs::PredAbs`] (ITP mode)|
//! | IMPARA (IMPACT)          | [`impact::Impact`]             |
//! | SeaHorn PDR              | [`seahorn::SeaHorn`]           |
//! | Astrée                   | [`absint::IntervalAi`]         |
//!
//! All analyzers consume a [`v2c::SwProgram`] (the software-netlist)
//! and report [`engines::CheckOutcome`]s, so hardware engines and
//! software analyzers are directly comparable — the whole point of the
//! paper's unified framework.
//!
//! Two analyzers intentionally reproduce *imprecision* the paper
//! observed: [`seahorn::SeaHorn`] over-approximates bit-level
//! operators the way a linear-arithmetic encoding does (yielding the
//! paper's "wrong" results on bit-heavy designs), and
//! [`absint::IntervalAi`] raises false alarms on most safe designs, as
//! the paper reports for Astrée without manual partitioning.

#![forbid(unsafe_code)]

pub mod absint;
pub mod cbmc;
pub mod impact;
pub mod predabs;
pub mod seahorn;
pub mod seat;
pub mod twols;
pub mod util;

pub use engines::{Budget, CheckOutcome, Trace, Unknown, Verdict};
pub use seat::SwSeat;

/// A software analyzer over software-netlist programs.
pub trait Analyzer {
    /// Short machine-readable name, e.g. `"2ls-kiki"`.
    fn name(&self) -> &'static str;
    /// Checks all assertions of the program.
    fn check(&self, prog: &v2c::SwProgram) -> CheckOutcome;
}
