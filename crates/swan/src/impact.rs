//! IMPARA-style IMPACT: lazy abstraction with interpolants
//! (McMillan 2006; Wachter, Kroening, Ouaknine FMCAD 2013).
//!
//! The software-netlist's single loop makes the abstract reachability
//! tree a chain of unwinding nodes. Each round checks the path formula
//! `Init ∧ T^k ∧ Bad(k)`; if infeasible, Craig interpolants at every
//! cut strengthen the node labels, and a *covering* check looks for a
//! node whose label is implied by a predecessor's — at which point the
//! disjunction of labels is a candidate invariant. Before answering
//! Safe, the candidate is independently certified (inductive, initial,
//! excludes bad), so the engine stays sound regardless of labelling
//! subtleties.

use crate::Analyzer;
use engines::{bmc::Bmc, Budget, CheckOutcome, Checker, EngineStats, Unknown, Verdict};
use satb::{interp::ItpNode, Lit, Part, SolveResult, Solver};
use std::collections::HashMap;
use std::time::Instant;
use v2c::SwProgram;

/// The IMPACT analyzer.
#[derive(Clone, Debug, Default)]
pub struct Impact {
    /// Resource limits (`max_depth` bounds the unwinding).
    pub budget: Budget,
}

impl Impact {
    /// Creates the analyzer with a budget.
    pub fn new(budget: Budget) -> Impact {
        Impact { budget }
    }
}

fn itp_to_aig(
    itp: &satb::Interpolant,
    map: &HashMap<satb::Var, aig::AigLit>,
    g: &mut aig::Aig,
) -> aig::AigLit {
    let mut out: Vec<aig::AigLit> = Vec::with_capacity(itp.nodes().len());
    for n in itp.nodes() {
        let l = match *n {
            ItpNode::Const(c) => aig::AigLit::constant(c),
            ItpNode::Lit(sl) => {
                let base = *map.get(&sl.var()).expect("shared var is a latch");
                if sl.is_positive() {
                    base
                } else {
                    !base
                }
            }
            ItpNode::And(a, b) => g.and(out[a as usize], out[b as usize]),
            ItpNode::Or(a, b) => g.or(out[a as usize], out[b as usize]),
        };
        out.push(l);
    }
    out[itp.root()]
}

/// Encodes a cone with all Tseitin clauses tagged (for sequence
/// interpolation). The encoder caches nodes, so a node is tagged with
/// the frame that first encodes it — exactly the frame its variables
/// belong to, since encoders are per-frame.
fn tagged_encode(
    enc: &mut aig::FrameEncoder,
    g: &aig::Aig,
    solver: &mut Solver,
    root: aig::AigLit,
    tag: u32,
) -> Lit {
    enc.encode_tagged(g, solver, root, Part::A, tag)
}

impl Analyzer for Impact {
    fn name(&self) -> &'static str {
        "impara-impact"
    }

    fn check(&self, prog: &SwProgram) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();
        let mut sys = aig::blast_system(&prog.ts);
        let bads = sys.bads.clone();
        let any_bad = sys.aig.or_all(&bads);
        let init_lits: Vec<aig::AigLit> = sys
            .latches
            .iter()
            .filter_map(|l| l.init.map(|b| if b { l.output } else { !l.output }))
            .collect();
        let init_pred = sys.aig.and_all(&init_lits);
        let limits = |started: Instant, budget: &Budget| budget.sat_limits(started);

        // Depth-0 check: Init ∧ Bad.
        {
            let mut solver = Solver::new();
            let mut enc = aig::FrameEncoder::new();
            let ip = enc.encode(&sys.aig, &mut solver, init_pred, Part::A);
            solver.add_clause(&[ip]);
            for &c in &sys.constraints {
                let cl = enc.encode(&sys.aig, &mut solver, c, Part::A);
                solver.add_clause(&[cl]);
            }
            let b = enc.encode(&sys.aig, &mut solver, any_bad, Part::A);
            stats.sat_queries += 1;
            match solver.solve_limited(&[b], limits(started, &self.budget)) {
                SolveResult::Sat => {
                    let bmc = Bmc::new(Budget {
                        timeout: self.budget.timeout,
                        max_depth: 0,
                        stop: self.budget.stop.clone(),
                        chaos: self.budget.chaos,
                    });
                    let out = bmc.check(&prog.ts);
                    return CheckOutcome::finish(out.outcome, stats, started);
                }
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started)
                }
                SolveResult::Unsat => {}
            }
        }

        // Whether the bad outputs are state predicates (no primary
        // input in their cones); if so, ¬bad can strengthen the
        // invariant candidate.
        let bad_is_state_pred = {
            let cone = sys.aig.cone(&[any_bad]);
            let mut input_free = true;
            let mut reachable: std::collections::HashSet<u32> = cone.iter().copied().collect();
            reachable.insert(any_bad.node());
            for n in &cone {
                if let Some((a, b)) = sys.aig.and_fanins_of_node(*n) {
                    reachable.insert(a.node());
                    reachable.insert(b.node());
                }
            }
            for &i in &sys.inputs {
                if reachable.contains(&i.node()) {
                    input_free = false;
                }
            }
            input_free
        };

        // Node labels; labels[i] over-approximates states reachable in
        // exactly i iterations (conjunction of sequence interpolants
        // across rounds, so the chain property L_i ∧ T ⇒ L_{i+1}
        // holds by construction).
        let mut labels: Vec<aig::AigLit> = vec![init_pred];

        for k in 1..=self.budget.max_depth {
            if self.budget.expired(started) {
                return CheckOutcome::finish(Verdict::Unknown(Unknown::Timeout), stats, started);
            }
            stats.depth = k;
            labels.push(aig::AigLit::TRUE);
            let k = k as usize;

            // One proof-logged solve of Init ∧ T^k ∧ ¬Bad(<k) ∧ Bad(k),
            // with clauses tagged by frame so every cut's interpolant
            // comes from the same refutation (sequence interpolants).
            let mut solver = Solver::with_proof();
            let mut frame_lits: Vec<Vec<Lit>> = Vec::new();
            let mut encs: Vec<aig::FrameEncoder> = Vec::new();
            for _f in 0..=k {
                let lits: Vec<Lit> = sys
                    .latches
                    .iter()
                    .map(|_| Lit::pos(solver.new_var()))
                    .collect();
                let mut enc = aig::FrameEncoder::new();
                for (latch, &l) in sys.latches.iter().zip(&lits) {
                    enc.bind(latch.output, l);
                }
                frame_lits.push(lits);
                encs.push(enc);
            }
            let tag = |f: usize| (f + 1) as u32;
            for (latch, &l) in sys.latches.iter().zip(&frame_lits[0]) {
                if let Some(init) = latch.init {
                    solver.add_clause_tagged(&[if init { l } else { !l }], Part::A, tag(0));
                }
            }
            for f in 0..k {
                for (i, latch) in sys.latches.iter().enumerate() {
                    let nl = tagged_encode(&mut encs[f], &sys.aig, &mut solver, latch.next, tag(f));
                    let tgt = frame_lits[f + 1][i];
                    solver.add_clause_tagged(&[!nl, tgt], Part::A, tag(f));
                    solver.add_clause_tagged(&[nl, !tgt], Part::A, tag(f));
                }
                for &c in &sys.constraints {
                    let cl = tagged_encode(&mut encs[f], &sys.aig, &mut solver, c, tag(f));
                    solver.add_clause_tagged(&[cl], Part::A, tag(f));
                }
                // No counterexample shorter than k exists (established
                // by earlier rounds): pin ¬bad at every inner frame.
                let bf = tagged_encode(&mut encs[f], &sys.aig, &mut solver, any_bad, tag(f));
                if f > 0 {
                    solver.add_clause_tagged(&[!bf], Part::A, tag(f));
                }
            }
            let bl = tagged_encode(&mut encs[k], &sys.aig, &mut solver, any_bad, tag(k));
            solver.add_clause_tagged(&[bl], Part::A, tag(k));
            stats.sat_queries += 1;
            match solver.solve_limited(&[], limits(started, &self.budget)) {
                SolveResult::Sat => {
                    let bmc = Bmc::new(Budget {
                        timeout: self.budget.timeout,
                        max_depth: k as u32,
                        stop: self.budget.stop.clone(),
                        chaos: self.budget.chaos,
                    });
                    let out = bmc.check(&prog.ts);
                    return CheckOutcome::finish(out.outcome, stats, started);
                }
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started)
                }
                SolveResult::Unsat => {
                    // Sequence interpolants: cut c puts frames < c in A.
                    for cut in 1..=k {
                        if let Some(itp) = solver.interpolant_with(|t| t <= cut as u32) {
                            let map: HashMap<satb::Var, aig::AigLit> = frame_lits[cut]
                                .iter()
                                .zip(&sys.latches)
                                .map(|(&l, latch)| (l.var(), latch.output))
                                .collect();
                            let il = itp_to_aig(&itp, &map, &mut sys.aig);
                            labels[cut] = sys.aig.and(labels[cut], il);
                        }
                    }
                }
            }

            // Certification attempt: the disjunction of all labels is
            // the IMPACT invariant candidate (coverage of the chain's
            // frontier by construction of sequence interpolants makes
            // this the natural candidate; certification keeps the
            // engine sound even when labels are not yet closed).
            let all = labels[..=k].to_vec();
            let r0 = sys.aig.or_all(&all);
            let mut candidates = vec![r0];
            if bad_is_state_pred {
                let r1 = sys.aig.and(r0, !any_bad);
                candidates.insert(0, r1);
            }
            for r in candidates {
                match self.certify(&mut sys, r, any_bad, init_pred, started, &mut stats) {
                    Some(true) => return CheckOutcome::finish(Verdict::Safe, stats, started),
                    Some(false) => {}
                    None => {
                        return CheckOutcome::finish(
                            Verdict::Unknown(Unknown::Timeout),
                            stats,
                            started,
                        )
                    }
                }
            }
        }
        CheckOutcome::finish(Verdict::Unknown(Unknown::BoundReached), stats, started)
    }
}

/// `a ⇒ b` over latch CIs (None on timeout).
fn implies(
    sys: &mut aig::AigSystem,
    a: aig::AigLit,
    b: aig::AigLit,
    started: Instant,
    budget: &Budget,
) -> Option<bool> {
    let q = sys.aig.and(a, !b);
    let mut solver = Solver::new();
    let mut enc = aig::FrameEncoder::new();
    let l = enc.encode(&sys.aig, &mut solver, q, Part::A);
    solver.add_clause(&[l]);
    match solver.solve_limited(&[], budget.sat_limits(started)) {
        SolveResult::Unsat => Some(true),
        SolveResult::Sat => Some(false),
        SolveResult::Unknown(_) => None,
    }
}

impl Impact {
    /// Certifies `r` as a safe inductive invariant: `init ⇒ r`,
    /// `r ∧ T ⇒ r'`, and `r ∧ bad` unsatisfiable.
    fn certify(
        &self,
        sys: &mut aig::AigSystem,
        r: aig::AigLit,
        any_bad: aig::AigLit,
        init_pred: aig::AigLit,
        started: Instant,
        stats: &mut EngineStats,
    ) -> Option<bool> {
        stats.sat_queries += 3;
        if implies(sys, init_pred, r, started, &self.budget) != Some(true) {
            return Some(false);
        }
        // r ∧ bad unsat.
        let rb = sys.aig.and(r, any_bad);
        let mut solver = Solver::new();
        let mut enc = aig::FrameEncoder::new();
        let l = enc.encode(&sys.aig, &mut solver, rb, Part::A);
        solver.add_clause(&[l]);
        for &c in &sys.constraints {
            let cl = enc.encode(&sys.aig, &mut solver, c, Part::A);
            solver.add_clause(&[cl]);
        }
        let lim = self.budget.sat_limits(started);
        match solver.solve_limited(&[], lim.clone()) {
            SolveResult::Sat => return Some(false),
            SolveResult::Unknown(_) => return None,
            SolveResult::Unsat => {}
        }
        // Consecution: r(s) ∧ T(s, s') ∧ ¬r(s') unsat. Encode r twice:
        // once over the latch CIs, once with latch CIs bound to the
        // next-state literals.
        let mut solver = Solver::new();
        let mut enc = aig::FrameEncoder::new();
        let rl = enc.encode(&sys.aig, &mut solver, r, Part::A);
        solver.add_clause(&[rl]);
        for &c in &sys.constraints {
            let cl = enc.encode(&sys.aig, &mut solver, c, Part::A);
            solver.add_clause(&[cl]);
        }
        let mut enc_next = aig::FrameEncoder::new();
        for latch in &sys.latches {
            let nl = enc.encode(&sys.aig, &mut solver, latch.next, Part::A);
            enc_next.bind(latch.output, nl);
        }
        let rn = enc_next.encode(&sys.aig, &mut solver, r, Part::A);
        solver.add_clause(&[!rn]);
        match solver.solve_limited(&[], lim) {
            SolveResult::Unsat => Some(true),
            SolveResult::Sat => Some(false),
            SolveResult::Unknown(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::{Sort, TransitionSystem};

    fn saturating(limit: u64, bad_at: u64) -> SwProgram {
        let mut ts = TransitionSystem::new("sat");
        let s = ts.add_state("c", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, limit);
        let one = ts.pool_mut().constv(8, 1);
        let lt = ts.pool_mut().ult(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let nx = ts.pool_mut().ite(lt, inc, sv);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let b = ts.pool_mut().constv(8, bad_at);
        let bad = ts.pool_mut().eq(sv, b);
        ts.add_bad(bad, "hit");
        SwProgram::from_ts(ts)
    }

    #[test]
    fn proves_small_safe_design() {
        let out = Impact::default().check(&saturating(4, 200));
        assert_eq!(out.outcome, Verdict::Safe);
    }

    #[test]
    fn finds_bug_with_replayable_trace() {
        let prog = saturating(200, 5);
        let out = Impact::default().check(&prog);
        match out.outcome {
            Verdict::Unsafe(t) => {
                assert_eq!(t.length(), 5);
                let sys = aig::blast_system(&prog.ts);
                assert!(t.replays_on(&sys));
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn certification_rejects_bogus_invariants() {
        let prog = saturating(4, 200);
        let mut sys = aig::blast_system(&prog.ts);
        let bads = sys.bads.clone();
        let any_bad = sys.aig.or_all(&bads);
        let init_lits: Vec<aig::AigLit> = sys
            .latches
            .iter()
            .filter_map(|l| l.init.map(|b| if b { l.output } else { !l.output }))
            .collect();
        let init_pred = sys.aig.and_all(&init_lits);
        let engine = Impact::default();
        let mut stats = EngineStats::default();
        let started = Instant::now();
        // TRUE is not safe (it includes bad states).
        assert_eq!(
            engine.certify(
                &mut sys,
                aig::AigLit::TRUE,
                any_bad,
                init_pred,
                started,
                &mut stats
            ),
            Some(false)
        );
        // init alone is not inductive (counter moves on).
        assert_eq!(
            engine.certify(&mut sys, init_pred, any_bad, init_pred, started, &mut stats),
            Some(false)
        );
    }
}
