//! 2LS-style kIkI: k-induction with k-invariants (Brain, Joshi,
//! Kroening, Schrammel — SAS 2015), the paper's "2LS-kind" (Figure 3)
//! and "2LS-kiki" (Figure 5) series.
//!
//! The invariant domain is the interval template over every bit-vector
//! register: candidate bounds start from the initial state and are
//! weakened by counterexamples-to-induction (model-based template
//! synthesis, with widening-to-top after a few rounds per variable).
//! The inductive invariant then strengthens a k-induction loop.

use crate::util::{solve_word, TraceExtractor};
use crate::Analyzer;
use engines::{Budget, CheckOutcome, EngineStats, Unknown, Verdict};
use rtlir::unroll::{InitMode, Unroller};
use rtlir::{ExprId, Sort, TransitionSystem, Value};
use satb::SolveResult;
use std::collections::HashMap;
use std::time::Instant;
use v2c::SwProgram;

/// Interval bounds per bit-vector state variable.
#[derive(Clone, Debug, PartialEq)]
struct Template {
    /// `(state index, lo, hi)` for every bv state.
    bounds: Vec<(usize, u64, u64)>,
    /// Widening counters per entry.
    widenings: Vec<u32>,
}

/// 2LS-style analyzer. `use_invariants` distinguishes the pure
/// k-induction configuration (Figure 3) from full kIkI (Figure 5).
#[derive(Clone, Debug)]
pub struct TwoLs {
    /// Resource limits.
    pub budget: Budget,
    /// Infer interval invariants (the second "I" of kIkI).
    pub use_invariants: bool,
    /// Widen an entry to top after this many weakenings.
    pub widening_threshold: u32,
}

impl Default for TwoLs {
    fn default() -> TwoLs {
        TwoLs {
            budget: Budget::default(),
            use_invariants: true,
            widening_threshold: 24,
        }
    }
}

impl TwoLs {
    /// Creates the analyzer with a budget.
    pub fn new(budget: Budget) -> TwoLs {
        TwoLs {
            budget,
            ..TwoLs::default()
        }
    }

    /// Builds the template instantiation as a single-bit expression
    /// over the state variables of `ts`.
    fn template_expr(ts: &mut TransitionSystem, t: &Template) -> ExprId {
        let mut conjuncts = Vec::new();
        for &(si, lo, hi) in &t.bounds {
            let var = ts.states()[si].var;
            let w = ts.pool().var_sort(var).width();
            if lo == 0 && hi == rtlir::value::mask(w) {
                continue; // top
            }
            let p = ts.pool_mut();
            let v = p.var(var);
            let lo_e = p.constv(w, lo);
            let hi_e = p.constv(w, hi);
            let ge = p.uge(v, lo_e);
            let le = p.ule(v, hi_e);
            conjuncts.push(ge);
            conjuncts.push(le);
        }
        ts.pool_mut().and_all(&conjuncts)
    }

    /// Initial template: exact bounds from constant initial values,
    /// top for nondeterministic initializations.
    fn initial_template(ts: &TransitionSystem) -> Template {
        let mut bounds = Vec::new();
        for (si, s) in ts.states().iter().enumerate() {
            let sort = ts.pool().var_sort(s.var);
            if let Sort::Bv(w) = sort {
                match s.init {
                    Some(init) => {
                        let env: HashMap<rtlir::VarId, Value> = HashMap::new();
                        let v = rtlir::eval(ts.pool(), init, &env).bits();
                        bounds.push((si, v, v));
                    }
                    None => bounds.push((si, 0, rtlir::value::mask(w))),
                }
            }
        }
        let n = bounds.len();
        Template {
            bounds,
            widenings: vec![0; n],
        }
    }

    /// One inference round: find a transition leaving the template and
    /// weaken the bounds to include the escaping state. Returns true
    /// when the template is already inductive.
    fn strengthen_round(
        &self,
        ts: &mut TransitionSystem,
        t: &mut Template,
        started: Instant,
        stats: &mut EngineStats,
    ) -> Result<bool, Unknown> {
        let inv = Self::template_expr(ts, t);
        let mut u = Unroller::new(ts, InitMode::Free);
        let inv0 = u.translate(0, inv);
        let inv1 = u.translate(1, inv);
        let c0 = u.constraint(0);
        let ninv1 = u.pool_mut().not(inv1);
        // Pre-materialize frame-1 state expressions for the model.
        let frame1: Vec<Option<ExprId>> = (0..ts.states().len())
            .map(|si| {
                if ts.pool().var_sort(ts.states()[si].var).is_bv() {
                    Some(u.state(1, si))
                } else {
                    None
                }
            })
            .collect();
        stats.sat_queries += 1;
        let q = solve_word(
            u.pool(),
            &[inv0, c0, ninv1],
            self.budget.sat_limits(started),
        );
        match q.result {
            SolveResult::Unsat => Ok(true),
            SolveResult::Unknown(why) => Err(why.into()),
            SolveResult::Sat => {
                let mut model = q.model.expect("model");
                for (bi, &(si, lo, hi)) in t.bounds.clone().iter().enumerate() {
                    let Some(e) = frame1[si] else {
                        continue;
                    };
                    let v = model.eval_word(e);
                    let var = ts.states()[si].var;
                    let w = ts.pool().var_sort(var).width();
                    if v < lo || v > hi {
                        t.widenings[bi] += 1;
                        if t.widenings[bi] >= self.widening_threshold {
                            t.bounds[bi] = (si, 0, rtlir::value::mask(w));
                        } else {
                            t.bounds[bi] = (si, lo.min(v), hi.max(v));
                        }
                    }
                }
                Ok(false)
            }
        }
    }
}

impl Analyzer for TwoLs {
    fn name(&self) -> &'static str {
        if self.use_invariants {
            "2ls-kiki"
        } else {
            "2ls-kind"
        }
    }

    fn check(&self, prog: &SwProgram) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();
        let mut ts = prog.ts.clone();

        // Phase 1: infer an inductive interval invariant.
        let mut invariant: Option<ExprId> = None;
        if self.use_invariants {
            let mut t = Self::initial_template(&ts);
            loop {
                if let Some(u) = self.budget.interruption(started) {
                    return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
                }
                match self.strengthen_round(&mut ts, &mut t, started, &mut stats) {
                    Ok(true) => {
                        invariant = Some(Self::template_expr(&mut ts, &t));
                        break;
                    }
                    Ok(false) => {}
                    Err(u) => return CheckOutcome::finish(Verdict::Unknown(u), stats, started),
                }
            }
            // Quick win: invariant strong enough on its own?
            if let Some(inv) = invariant {
                let mut u = Unroller::new(&ts, InitMode::Free);
                let inv0 = u.translate(0, inv);
                let c0 = u.constraint(0);
                let bad0 = u.bad(0);
                stats.sat_queries += 1;
                let q = solve_word(u.pool(), &[inv0, c0, bad0], self.budget.sat_limits(started));
                if q.result == SolveResult::Unsat {
                    return CheckOutcome::finish(Verdict::Safe, stats, started);
                }
            }
        }

        // Phase 2: k-induction strengthened by the invariant at every
        // frame (kIkI's combined check).
        for k in 0..=self.budget.max_depth {
            if let Some(u) = self.budget.interruption(started) {
                return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
            }
            stats.depth = k;

            // Base case (BMC).
            let mut base = Unroller::new(&ts, InitMode::Initialized);
            let mut roots = Vec::new();
            for f in 0..=k as usize {
                let c = base.constraint(f);
                roots.push(c);
                if f < k as usize {
                    let b = base.bad(f);
                    let nb = base.pool_mut().not(b);
                    roots.push(nb);
                }
            }
            let bk = base.bad(k as usize);
            roots.push(bk);
            let extractor = TraceExtractor::prepare(&mut base, k as usize);
            stats.sat_queries += 1;
            let q = solve_word(base.pool(), &roots, self.budget.sat_limits(started));
            match q.result {
                SolveResult::Sat => {
                    let mut model = q.model.expect("model");
                    let trace = extractor.extract(&ts, &mut model);
                    return CheckOutcome::finish(Verdict::Unsafe(trace), stats, started);
                }
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started)
                }
                SolveResult::Unsat => {}
            }

            // Step case with the invariant assumed at every frame.
            let mut step = Unroller::new(&ts, InitMode::Free);
            let mut roots = Vec::new();
            for f in 0..=k as usize {
                let c = step.constraint(f);
                roots.push(c);
                if let Some(inv) = invariant {
                    let invf = step.translate(f as u32, inv);
                    roots.push(invf);
                }
                if f < k as usize {
                    let b = step.bad(f);
                    let nb = step.pool_mut().not(b);
                    roots.push(nb);
                }
            }
            let bk = step.bad(k as usize);
            roots.push(bk);
            stats.sat_queries += 1;
            let q = solve_word(step.pool(), &roots, self.budget.sat_limits(started));
            match q.result {
                SolveResult::Unsat => return CheckOutcome::finish(Verdict::Safe, stats, started),
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started)
                }
                SolveResult::Sat => {}
            }
        }
        CheckOutcome::finish(Verdict::Unknown(Unknown::BoundReached), stats, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter gated at 10 whose property `c <= 10` needs the
    /// interval invariant c ∈ [0, 10]: plain 1-induction fails (CTI at
    /// c = 15), intervals nail it without deep unrolling.
    fn gated_counter() -> SwProgram {
        let mut ts = TransitionSystem::new("gated");
        let s = ts.add_state("c", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, 10);
        let one = ts.pool_mut().constv(8, 1);
        let lt = ts.pool_mut().ult(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let nx = ts.pool_mut().ite(lt, inc, sv);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let c200 = ts.pool_mut().constv(8, 200);
        let bad = ts.pool_mut().eq(sv, c200);
        ts.add_bad(bad, "c == 200");
        SwProgram::from_ts(ts)
    }

    #[test]
    fn interval_invariant_proves_quickly() {
        let out = TwoLs::default().check(&gated_counter());
        assert_eq!(out.outcome, Verdict::Safe);
        assert_eq!(out.stats.depth, 0, "invariant alone should suffice");
    }

    #[test]
    fn finds_bugs_like_bmc() {
        let mut ts = TransitionSystem::new("c");
        let s = ts.add_state("count", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(8, 1);
        let nx = ts.pool_mut().add(sv, one);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let c = ts.pool_mut().constv(8, 6);
        let bad = ts.pool_mut().eq(sv, c);
        ts.add_bad(bad, "hit 6");
        let prog = SwProgram::from_ts(ts);
        let out = TwoLs::default().check(&prog);
        match out.outcome {
            Verdict::Unsafe(t) => {
                assert_eq!(t.length(), 6);
                let sys = aig::blast_system(&prog.ts);
                assert!(t.replays_on(&sys));
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn widening_terminates_inference() {
        // A free-running wrap-around counter: the interval must widen
        // to top, and the verdict falls back to k-induction.
        let mut ts = TransitionSystem::new("wrap");
        let s = ts.add_state("c", Sort::Bv(4));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(4, 1);
        let nx = ts.pool_mut().add(sv, one);
        let z = ts.pool_mut().constv(4, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        // Property true of all states: c <= 15 (trivially).
        let m = ts.pool_mut().constv(4, 15);
        let le = ts.pool_mut().ule(sv, m);
        let bad = ts.pool_mut().not(le);
        ts.add_bad(bad, "impossible");
        let out = TwoLs::default().check(&SwProgram::from_ts(ts));
        assert_eq!(out.outcome, Verdict::Safe);
    }
}
