//! Shared machinery for the software analyzers: word-level query
//! solving, model evaluation, substitution and atom collection.

use rtlir::{ExprId, ExprPool, Node, TransitionSystem, Unroller, VarId};
use satb::{Part, SolveResult, Solver};
use std::collections::{HashMap, HashSet};

/// Result of solving a conjunction of single-bit word-level roots.
pub struct WordQuery<'p> {
    /// The SAT result.
    pub result: SolveResult,
    /// Model access on SAT.
    pub model: Option<WordModel<'p>>,
}

/// A satisfying assignment over a formula pool.
pub struct WordModel<'p> {
    blaster: aig::Blaster<'p>,
    ci_vals: Vec<bool>,
}

impl WordModel<'_> {
    /// Evaluates any expression of the pool under the model
    /// (expressions outside the solved cone read as zero).
    pub fn eval_word(&mut self, e: ExprId) -> u64 {
        let bits = self.blaster.blast(e).bits().to_vec();
        if self.ci_vals.len() < self.blaster.aig().num_cis() {
            self.ci_vals.resize(self.blaster.aig().num_cis(), false);
        }
        let mut out = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if self.blaster.aig().eval(b, &self.ci_vals) {
                out |= 1 << i;
            }
        }
        out
    }
}

/// Solves `⋀ roots` (all single-bit) over `pool` by bit-blasting,
/// under the given per-query limits (deadline, conflict budget, and
/// the cooperative stop flag).
pub fn solve_word<'p>(pool: &'p ExprPool, roots: &[ExprId], limits: satb::Limits) -> WordQuery<'p> {
    let mut blaster = aig::Blaster::new(pool);
    let bits: Vec<aig::AigLit> = roots.iter().map(|&r| blaster.blast_bit(r)).collect();
    let mut solver = Solver::new();
    let mut enc = aig::FrameEncoder::new();
    for &b in &bits {
        let l = enc.encode(blaster.aig(), &mut solver, b, Part::A);
        solver.add_clause(&[l]);
    }
    let result = solver.solve_limited(&[], limits);
    if result == SolveResult::Sat {
        let mut ci_vals = vec![false; blaster.aig().num_cis()];
        for (ci, al) in blaster.aig().ci_lits().into_iter().enumerate() {
            ci_vals[ci] = enc
                .mapped(al)
                .and_then(|sl| solver.value(sl))
                .unwrap_or(false);
        }
        return WordQuery {
            result,
            model: Some(WordModel { blaster, ci_vals }),
        };
    }
    WordQuery {
        result,
        model: None,
    }
}

/// Substitutes state variables by their next-state functions in `e`
/// (the strongest-postcondition/weakest-precondition workhorse).
/// Input variables are left untouched.
pub fn substitute_next(ts: &mut TransitionSystem, e: ExprId) -> ExprId {
    let next_of: HashMap<VarId, ExprId> = ts
        .states()
        .iter()
        .filter_map(|s| s.next.map(|n| (s.var, n)))
        .collect();
    substitute(ts, e, &next_of)
}

/// Substitutes variables by expressions in `e` (bottom-up, memoized).
pub fn substitute(ts: &mut TransitionSystem, root: ExprId, map: &HashMap<VarId, ExprId>) -> ExprId {
    let mut memo: HashMap<ExprId, ExprId> = HashMap::new();
    let mut order: Vec<ExprId> = Vec::new();
    let mut stack = vec![(root, false)];
    while let Some((e, expanded)) = stack.pop() {
        if memo.contains_key(&e) {
            continue;
        }
        if expanded {
            order.push(e);
            continue;
        }
        stack.push((e, true));
        match ts.pool().node(e) {
            Node::Const { .. } | Node::Var(_) | Node::ConstArray { .. } => {}
            Node::Un(_, a) | Node::Extract { arg: a, .. } => stack.push((*a, false)),
            Node::Zext { arg, .. } | Node::Sext { arg, .. } => stack.push((*arg, false)),
            Node::Bin(_, a, b) => {
                stack.push((*a, false));
                stack.push((*b, false));
            }
            Node::Ite(c, t, f) => {
                stack.push((*c, false));
                stack.push((*t, false));
                stack.push((*f, false));
            }
            Node::Read { array, index } => {
                stack.push((*array, false));
                stack.push((*index, false));
            }
            Node::Write {
                array,
                index,
                value,
            } => {
                stack.push((*array, false));
                stack.push((*index, false));
                stack.push((*value, false));
            }
        }
    }
    for e in order {
        let node = ts.pool().node(e).clone();
        let p = ts.pool_mut();
        let out = match node {
            Node::Const { .. } | Node::ConstArray { .. } => e,
            Node::Var(v) => map.get(&v).copied().unwrap_or(e),
            Node::Un(op, a) => {
                let ta = memo[&a];
                match op {
                    rtlir::UnOp::Not => p.not(ta),
                    rtlir::UnOp::Neg => p.neg(ta),
                    rtlir::UnOp::RedAnd => p.redand(ta),
                    rtlir::UnOp::RedOr => p.redor(ta),
                    rtlir::UnOp::RedXor => p.redxor(ta),
                }
            }
            Node::Bin(op, a, b) => {
                let (ta, tb) = (memo[&a], memo[&b]);
                use rtlir::BinOp as B;
                match op {
                    B::And => p.and(ta, tb),
                    B::Or => p.or(ta, tb),
                    B::Xor => p.xor(ta, tb),
                    B::Add => p.add(ta, tb),
                    B::Sub => p.sub(ta, tb),
                    B::Mul => p.mul(ta, tb),
                    B::Udiv => p.udiv(ta, tb),
                    B::Urem => p.urem(ta, tb),
                    B::Shl => p.shl(ta, tb),
                    B::Lshr => p.lshr(ta, tb),
                    B::Ashr => p.ashr(ta, tb),
                    B::Eq => p.eq(ta, tb),
                    B::Ult => p.ult(ta, tb),
                    B::Ule => p.ule(ta, tb),
                    B::Slt => p.slt(ta, tb),
                    B::Sle => p.sle(ta, tb),
                    B::Concat => p.concat(ta, tb),
                }
            }
            Node::Ite(c, t, f) => {
                let (tc, tt, tf) = (memo[&c], memo[&t], memo[&f]);
                p.ite(tc, tt, tf)
            }
            Node::Extract { hi, lo, arg } => {
                let ta = memo[&arg];
                p.extract(ta, hi, lo)
            }
            Node::Zext { arg, width } => {
                let ta = memo[&arg];
                p.zext(ta, width)
            }
            Node::Sext { arg, width } => {
                let ta = memo[&arg];
                p.sext(ta, width)
            }
            Node::Read { array, index } => {
                let (ta, ti) = (memo[&array], memo[&index]);
                p.read(ta, ti)
            }
            Node::Write {
                array,
                index,
                value,
            } => {
                let (ta, ti, tv) = (memo[&array], memo[&index], memo[&value]);
                p.write(ta, ti, tv)
            }
        };
        memo.insert(e, out);
    }
    memo[&root]
}

/// The variables occurring in an expression.
pub fn vars_of(pool: &ExprPool, root: ExprId) -> HashSet<VarId> {
    let mut out = HashSet::new();
    let mut seen = HashSet::new();
    let mut stack = vec![root];
    while let Some(e) = stack.pop() {
        if !seen.insert(e) {
            continue;
        }
        match pool.node(e) {
            Node::Var(v) => {
                out.insert(*v);
            }
            Node::Const { .. } | Node::ConstArray { .. } => {}
            Node::Un(_, a) | Node::Extract { arg: a, .. } => stack.push(*a),
            Node::Zext { arg, .. } | Node::Sext { arg, .. } => stack.push(*arg),
            Node::Bin(_, a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Node::Ite(c, t, f) => {
                stack.push(*c);
                stack.push(*t);
                stack.push(*f);
            }
            Node::Read { array, index } => {
                stack.push(*array);
                stack.push(*index);
            }
            Node::Write {
                array,
                index,
                value,
            } => {
                stack.push(*array);
                stack.push(*index);
                stack.push(*value);
            }
        }
    }
    out
}

/// Collects predicate atoms (single-bit comparison or reduction
/// sub-expressions) of `root` whose variables all satisfy `keep`.
pub fn collect_atoms(pool: &ExprPool, root: ExprId, keep: &impl Fn(VarId) -> bool) -> Vec<ExprId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut stack = vec![root];
    while let Some(e) = stack.pop() {
        if !seen.insert(e) {
            continue;
        }
        let is_atom = pool.sort(e).is_bool()
            && matches!(
                pool.node(e),
                Node::Bin(
                    rtlir::BinOp::Eq
                        | rtlir::BinOp::Ult
                        | rtlir::BinOp::Ule
                        | rtlir::BinOp::Slt
                        | rtlir::BinOp::Sle,
                    _,
                    _
                ) | Node::Un(rtlir::UnOp::RedAnd | rtlir::UnOp::RedOr, _)
                    | Node::Extract { .. }
                    | Node::Var(_)
            );
        if is_atom && vars_of(pool, e).iter().all(|&v| keep(v)) && pool.const_bits(e).is_none() {
            out.push(e);
        }
        match pool.node(e) {
            Node::Var(_) | Node::Const { .. } | Node::ConstArray { .. } => {}
            Node::Un(_, a) | Node::Extract { arg: a, .. } => stack.push(*a),
            Node::Zext { arg, .. } | Node::Sext { arg, .. } => stack.push(*arg),
            Node::Bin(_, a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Node::Ite(c, t, f) => {
                stack.push(*c);
                stack.push(*t);
                stack.push(*f);
            }
            Node::Read { array, index } => {
                stack.push(*array);
                stack.push(*index);
            }
            Node::Write {
                array,
                index,
                value,
            } => {
                stack.push(*array);
                stack.push(*index);
                stack.push(*value);
            }
        }
    }
    out
}

/// Extracts a bit-level trace from a SAT word model of an unrolled
/// formula: states and inputs flattened in [`aig::AigSystem`] order.
pub struct TraceExtractor {
    /// Per frame, per state: expressions to evaluate.
    pub state_words: Vec<Vec<Vec<ExprId>>>,
    /// Per frame: input expressions.
    pub input_words: Vec<Vec<ExprId>>,
    /// Bad expressions at the final frame.
    pub bad_words: Vec<ExprId>,
}

impl TraceExtractor {
    /// Pre-materializes the expressions a trace of length `k` needs
    /// (must run before solving: model extraction borrows the pool).
    pub fn prepare(u: &mut Unroller<'_>, k: usize) -> TraceExtractor {
        let ts = u.ts();
        let nstates = ts.states().len();
        let ninputs = ts.inputs().len();
        let state_sorts: Vec<rtlir::Sort> = ts
            .states()
            .iter()
            .map(|s| ts.pool().var_sort(s.var))
            .collect();
        let nbads = ts.bads().len();
        let mut state_words = Vec::new();
        let mut input_words = Vec::new();
        for f in 0..=k {
            let mut per_state = Vec::new();
            for (si, sort) in state_sorts.iter().enumerate() {
                let e = u.state(f, si);
                let words = match sort {
                    rtlir::Sort::Bv(_) => vec![e],
                    rtlir::Sort::Array { index_width, .. } => (0..(1u64 << index_width))
                        .map(|idx| {
                            let ie = u.pool_mut().constv(*index_width, idx);
                            u.pool_mut().read(e, ie)
                        })
                        .collect(),
                };
                per_state.push(words);
            }
            let _ = nstates;
            state_words.push(per_state);
            input_words.push((0..ninputs).map(|ii| u.input(f, ii)).collect());
        }
        let bad_words = (0..nbads).map(|bi| u.bad_at(k, bi)).collect();
        TraceExtractor {
            state_words,
            input_words,
            bad_words,
        }
    }

    /// Builds the trace from a model.
    pub fn extract(&self, ts: &TransitionSystem, model: &mut WordModel<'_>) -> engines::Trace {
        let mut states = Vec::new();
        let mut inputs = Vec::new();
        for f in 0..self.state_words.len() {
            let mut st = Vec::new();
            for (si, s) in ts.states().iter().enumerate() {
                let width = match ts.pool().var_sort(s.var) {
                    rtlir::Sort::Bv(w) => w,
                    rtlir::Sort::Array { elem_width, .. } => elem_width,
                };
                for &e in &self.state_words[f][si] {
                    let v = model.eval_word(e);
                    for b in 0..width {
                        st.push((v >> b) & 1 == 1);
                    }
                }
            }
            states.push(st);
            let mut inp = Vec::new();
            for (ii, &ivar) in ts.inputs().iter().enumerate() {
                let w = ts.pool().var_sort(ivar).width();
                let v = model.eval_word(self.input_words[f][ii]);
                for b in 0..w {
                    inp.push((v >> b) & 1 == 1);
                }
            }
            inputs.push(inp);
        }
        let mut bad_index = 0;
        for (i, &e) in self.bad_words.iter().enumerate() {
            if model.eval_word(e) == 1 {
                bad_index = i;
                break;
            }
        }
        engines::Trace {
            states,
            inputs,
            bad_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::Sort;

    fn counter(bug_at: u64) -> TransitionSystem {
        let mut ts = TransitionSystem::new("c");
        let s = ts.add_state("count", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(8, 1);
        let nx = ts.pool_mut().add(sv, one);
        let z = ts.pool_mut().constv(8, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let c = ts.pool_mut().constv(8, bug_at);
        let bad = ts.pool_mut().eq(sv, c);
        ts.add_bad(bad, "hit");
        ts
    }

    #[test]
    fn solve_word_sat_and_model() {
        let ts = counter(5);
        let mut u = Unroller::new(&ts, rtlir::unroll::InitMode::Free);
        let b0 = u.bad(0);
        let s0 = u.state(0, 0);
        let q = solve_word(u.pool(), &[b0], satb::Limits::default());
        assert_eq!(q.result, SolveResult::Sat);
        let mut m = q.model.expect("model");
        assert_eq!(m.eval_word(s0), 5, "state must be the bad value");
    }

    #[test]
    fn substitute_next_is_wp() {
        let mut ts = counter(5);
        let bad = ts.bads()[0].expr;
        let wp = substitute_next(&mut ts, bad);
        // wp(bad) = (count + 1 == 5) = (count == 4): check by eval.
        let var = ts.states()[0].var;
        let mut env = HashMap::new();
        env.insert(var, rtlir::Value::bv(8, 4));
        assert!(rtlir::eval(ts.pool(), wp, &env).as_bool());
        env.insert(var, rtlir::Value::bv(8, 5));
        assert!(!rtlir::eval(ts.pool(), wp, &env).as_bool());
    }

    #[test]
    fn atoms_collected() {
        let ts = counter(5);
        let bad = ts.bads()[0].expr;
        let atoms = collect_atoms(ts.pool(), bad, &|_| true);
        assert!(!atoms.is_empty());
        assert!(atoms.contains(&bad));
    }

    #[test]
    fn vars_found() {
        let ts = counter(5);
        let bad = ts.bads()[0].expr;
        let vs = vars_of(ts.pool(), bad);
        assert_eq!(vs.len(), 1);
    }
}
