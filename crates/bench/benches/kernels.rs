//! Criterion micro-benchmarks on the verification kernels: the SAT
//! solver, bit-blasting, CNF encoding and the Verilog frontend.

use bench::pigeonhole_cnf;
use criterion::{criterion_group, criterion_main, Criterion};
use satb::Solver;

fn bench_sat(c: &mut Criterion) {
    let (nvars, cnf) = pigeonhole_cnf(7);
    c.bench_function("sat/pigeonhole-7", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &cnf {
                s.add_clause(cl);
            }
            assert_eq!(s.solve(), satb::SolveResult::Unsat);
        });
    });
    // The boxed-clause baseline on the same instance: the ratio of
    // these two numbers is the arena speedup (see also the `satperf`
    // binary for machine-readable output).
    c.bench_function("sat/pigeonhole-7-boxed-baseline", |b| {
        b.iter(|| {
            let mut s = bench::baseline::BoxedSolver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &cnf {
                s.add_clause(cl);
            }
            assert_eq!(s.solve(u64::MAX), bench::baseline::BoxedResult::Unsat);
        });
    });
}

fn bench_frontend(c: &mut Criterion) {
    let fifo = bmarks::by_name("FIFOs").expect("exists");
    c.bench_function("vfront/compile-fifo", |b| {
        b.iter(|| fifo.compile().expect("compiles"));
    });
    let rcu = bmarks::by_name("RCU").expect("exists");
    c.bench_function("aig/blast-rcu", |b| {
        let ts = rcu.compile().expect("compiles");
        b.iter(|| aig::blast_system(&ts));
    });
}

fn bench_v2c(c: &mut Criterion) {
    let huff = bmarks::by_name("Huffman").expect("exists");
    let mods = vfront::parse(huff.source).expect("parses");
    let design = vfront::elaborate(&mods, huff.top).expect("elaborates");
    c.bench_function("v2c/emit-huffman", |b| {
        b.iter(|| v2c::emit_c(&design, v2c::MainStyle::Verifier).expect("emits"));
    });
    let text = v2c::emit_c(&design, v2c::MainStyle::Verifier).expect("emits");
    c.bench_function("cfront/parse-huffman", |b| {
        b.iter(|| cfront::parse_software_netlist(&text).expect("parses"));
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_sat, bench_frontend, bench_v2c
}
criterion_main!(kernels);
