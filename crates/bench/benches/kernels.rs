//! Criterion micro-benchmarks on the verification kernels: the SAT
//! solver, bit-blasting, CNF encoding and the Verilog frontend.

use criterion::{criterion_group, criterion_main, Criterion};
use satb::{Lit, Solver, Var};

fn pigeonhole(s: &mut Solver, holes: usize) {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| p * holes + h;
    while s.num_vars() < pigeons * holes {
        s.new_var();
    }
    for p in 0..pigeons {
        let c: Vec<Lit> = (0..holes)
            .map(|h| Lit::pos(Var::from_index(var(p, h))))
            .collect();
        s.add_clause(&c);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause(&[
                    Lit::neg(Var::from_index(var(p1, h))),
                    Lit::neg(Var::from_index(var(p2, h))),
                ]);
            }
        }
    }
}

fn bench_sat(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole-7", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            pigeonhole(&mut s, 7);
            assert_eq!(s.solve(), satb::SolveResult::Unsat);
        })
    });
}

fn bench_frontend(c: &mut Criterion) {
    let fifo = bmarks::by_name("FIFOs").expect("exists");
    c.bench_function("vfront/compile-fifo", |b| {
        b.iter(|| fifo.compile().expect("compiles"))
    });
    let rcu = bmarks::by_name("RCU").expect("exists");
    c.bench_function("aig/blast-rcu", |b| {
        let ts = rcu.compile().expect("compiles");
        b.iter(|| aig::blast_system(&ts))
    });
}

fn bench_v2c(c: &mut Criterion) {
    let huff = bmarks::by_name("Huffman").expect("exists");
    let mods = vfront::parse(huff.source).expect("parses");
    let design = vfront::elaborate(&mods, huff.top).expect("elaborates");
    c.bench_function("v2c/emit-huffman", |b| {
        b.iter(|| v2c::emit_c(&design, v2c::MainStyle::Verifier).expect("emits"))
    });
    let text = v2c::emit_c(&design, v2c::MainStyle::Verifier).expect("emits");
    c.bench_function("cfront/parse-huffman", |b| {
        b.iter(|| cfront::parse_software_netlist(&text).expect("parses"))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_sat, bench_frontend, bench_v2c
}
criterion_main!(kernels);
