//! Criterion versions of the figure experiments on representative
//! benchmark/engine pairs (the full sweeps with timeout handling are
//! the fig3/fig4/fig5 binaries; Criterion here tracks regressions on
//! the solvable cells).

use criterion::{criterion_group, criterion_main, Criterion};
use engines::{Budget, Checker};
use std::time::Duration;
use swan::Analyzer;

fn budget() -> Budget {
    Budget {
        timeout: Some(Duration::from_secs(30)),
        max_depth: 4000,
        ..Budget::default()
    }
}

fn fig3_cells(c: &mut Criterion) {
    let vend = bmarks::by_name("Vending")
        .expect("exists")
        .compile()
        .expect("ok");
    c.bench_function("fig3/abc-kind/vending", |b| {
        b.iter(|| {
            let out = engines::kind::KInduction::new(budget()).check(&vend);
            assert!(out.outcome.is_safe());
        });
    });
    let daio = bmarks::by_name("DAIO")
        .expect("exists")
        .compile()
        .expect("ok");
    c.bench_function("fig3/cbmc-kind/daio", |b| {
        let prog = v2c::SwProgram::from_ts(daio.clone());
        b.iter(|| {
            let out = swan::cbmc::CbmcKind::new(budget()).check(&prog);
            assert!(out.outcome.is_unsafe());
        });
    });
}

fn fig4_cells(c: &mut Criterion) {
    let heap = bmarks::by_name("Heap")
        .expect("exists")
        .compile()
        .expect("ok");
    c.bench_function("fig4/abc-itp/heap", |b| {
        b.iter(|| {
            let out = engines::itp::Interpolation::new(budget()).check(&heap);
            assert!(out.outcome.is_safe());
        });
    });
}

fn fig5_cells(c: &mut Criterion) {
    let fifo = bmarks::by_name("FIFOs")
        .expect("exists")
        .compile()
        .expect("ok");
    c.bench_function("fig5/abc-pdr/fifo", |b| {
        b.iter(|| {
            let out = engines::pdr::Pdr::new(budget()).check(&fifo);
            assert!(out.outcome.is_safe());
        });
    });
    let tictac = bmarks::by_name("TicTacToe")
        .expect("exists")
        .compile()
        .expect("ok");
    c.bench_function("fig5/2ls-kiki/tictactoe", |b| {
        let prog = v2c::SwProgram::from_ts(tictac.clone());
        b.iter(|| {
            let out = swan::twols::TwoLs::new(budget()).check(&prog);
            assert!(out.outcome.is_safe());
        });
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig3_cells, fig4_cells, fig5_cells
}
criterion_main!(figures);
