//! Experiment harness: runs hardware engines and software analyzers on
//! the twelve benchmarks and classifies the results the way the
//! paper's Figures 3–5 do (solved-with-time, timeout, unknown, error,
//! wrong).
//!
//! The binaries `fig3_kinduction`, `fig4_interpolation`, `fig5_hybrid`
//! and `sec3c_equivalence` regenerate the corresponding figure/claim;
//! see `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.

#![forbid(unsafe_code)]

pub mod baseline;

use bmarks::{Benchmark, Expected};
use engines::{Budget, CheckOutcome, Checker, Unknown, Verdict};
use satb::{Lit, Var};
use std::time::Duration;
use swan::Analyzer;

/// Pigeonhole-principle CNF `PHP(holes+1, holes)` — always UNSAT,
/// forces real clause learning. The single generator shared by the
/// criterion kernels and the `satperf` binary, so the arena-vs-boxed
/// comparison always measures the same instance.
pub fn pigeonhole_cnf(holes: usize) -> (usize, Vec<Vec<Lit>>) {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| p * holes + h;
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push(
            (0..holes)
                .map(|h| Lit::pos(Var::from_index(var(p, h))))
                .collect(),
        );
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(vec![
                    Lit::neg(Var::from_index(var(p1, h))),
                    Lit::neg(Var::from_index(var(p2, h))),
                ]);
            }
        }
    }
    (pigeons * holes, clauses)
}

/// How a run is classified, mirroring the paper's figure annotations.
#[derive(Clone, Debug, PartialEq)]
pub enum Classification {
    /// Correct verdict within budget; seconds taken.
    Solved(f64),
    /// Ran out of time (or bound) without an answer.
    Timeout,
    /// Inconclusive result (abstraction alarms, refinement failure).
    UnknownResult,
    /// Wrong verdict (e.g. a false negative from lossy abstraction).
    Wrong,
}

impl Classification {
    /// Short cell label for tables.
    pub fn label(&self) -> String {
        match self {
            Classification::Solved(t) => format!("{t:.2}s"),
            Classification::Timeout => "TO".to_string(),
            Classification::UnknownResult => "UNK".to_string(),
            Classification::Wrong => "WRONG".to_string(),
        }
    }
}

/// One engine entry of a figure: a named closure over a benchmark.
pub struct Tool {
    /// Display name (the paper's legend label).
    pub name: &'static str,
    /// Runs the tool on a compiled benchmark.
    pub run: Box<dyn Fn(&Benchmark) -> CheckOutcome>,
}

impl Tool {
    /// Wraps a hardware-level engine (operates on the transition
    /// system, like ABC/EBMC on the synthesized netlist).
    pub fn hw<C: Checker + 'static>(name: &'static str, checker: C) -> Tool {
        Tool {
            name,
            run: Box::new(move |b: &Benchmark| {
                let ts = b.compile().expect("benchmark compiles");
                checker.check(&ts)
            }),
        }
    }

    /// Wraps a software analyzer (operates on the v2c software-netlist).
    pub fn sw<A: Analyzer + 'static>(name: &'static str, analyzer: A) -> Tool {
        Tool {
            name,
            run: Box::new(move |b: &Benchmark| {
                let ts = b.compile().expect("benchmark compiles");
                let prog = v2c::SwProgram::from_ts(ts);
                analyzer.check(&prog)
            }),
        }
    }
}

/// Runs one tool on one benchmark and classifies the outcome against
/// the ground truth (replaying counterexample traces on the bit-level
/// model to tell real bugs from false negatives).
pub fn run_and_classify(tool: &Tool, b: &Benchmark) -> (Classification, CheckOutcome) {
    let out = (tool.run)(b);
    let secs = out.stats.time.as_secs_f64();
    let class = match (&out.outcome, b.expected) {
        (Verdict::Safe, Expected::Safe) => Classification::Solved(secs),
        (Verdict::Safe, Expected::Unsafe) => Classification::Wrong,
        (Verdict::Unsafe(trace), expected) => {
            let sys = aig::blast_system(&b.compile().expect("compiles"));
            let replays = trace.replays_on(&sys);
            match (replays, expected) {
                (true, Expected::Unsafe) => Classification::Solved(secs),
                (true, Expected::Safe) => {
                    // A replaying trace on a "safe" benchmark would mean
                    // our ground truth is wrong; flag loudly.
                    eprintln!(
                        "!! ground-truth violation: {} found a real cex on {}",
                        tool.name, b.name
                    );
                    Classification::Wrong
                }
                (false, _) => Classification::Wrong, // false negative
            }
        }
        (Verdict::Unknown(Unknown::Timeout), _) => Classification::Timeout,
        (Verdict::Unknown(Unknown::BoundReached), _) => Classification::Timeout,
        (Verdict::Unknown(Unknown::ConflictLimit), _) => Classification::Timeout,
        (Verdict::Unknown(Unknown::Cancelled), _) => Classification::UnknownResult,
        (Verdict::Unknown(Unknown::Inconclusive(_)), _) => Classification::UnknownResult,
        // A withdrawn certificate or a crashed seat is a tool failure,
        // not a solved instance: classify as unknown so the score table
        // shows the gap instead of papering over it.
        (Verdict::Unknown(Unknown::CertificateFailed(_)), _) => Classification::UnknownResult,
        (Verdict::Unknown(Unknown::Crashed(_)), _) => Classification::UnknownResult,
    };
    (class, out)
}

/// A budget scaled for the reproduction (seconds instead of the
/// paper's 5 hours; same role).
pub fn budget(timeout_secs: u64) -> Budget {
    Budget {
        timeout: Some(Duration::from_secs(timeout_secs)),
        max_depth: 4000,
        ..Budget::default()
    }
}

/// The paper's hybrid portfolio: the default hardware engines (BMC,
/// k-induction, interpolation, PDR) **plus a software-analyzer seat**
/// (CPAChecker-style predicate abstraction over the v2c path), all
/// racing under one cooperative-cancellation flag.
pub fn hybrid_portfolio(timeout_secs: u64) -> engines::portfolio::Portfolio {
    let mut p = engines::portfolio::Portfolio::with_default_engines(budget(timeout_secs));
    let b = p.engine_budget();
    p.push(swan::SwSeat::new(swan::predabs::PredAbs::new(
        b,
        swan::predabs::RefineMode::Wp,
    )));
    p
}

/// The paper's best configuration as one tool: the parallel hybrid
/// portfolio with cooperative cancellation (the `portfolio` mode of
/// the benchmark runner), software seat included.
pub fn portfolio_tool(timeout_secs: u64) -> Tool {
    Tool::hw("Portfolio", hybrid_portfolio(timeout_secs))
}

/// The Figure 3 tool set: k-induction at bit level (ABC), word level
/// (EBMC) and software level (CBMC, 2LS-kind).
pub fn fig3_tools(timeout_secs: u64) -> Vec<Tool> {
    let b = budget(timeout_secs);
    vec![
        Tool::hw("ABC-kind", engines::kind::KInduction::new(b.clone())),
        Tool::hw("EBMC-kind", engines::word::WordKInduction::new(b.clone())),
        Tool::sw("CBMC-kind", swan::cbmc::CbmcKind::new(b.clone())),
        Tool::sw(
            "2LS-kind",
            swan::twols::TwoLs {
                budget: b,
                use_invariants: false,
                ..swan::twols::TwoLs::default()
            },
        ),
    ]
}

/// The Figure 4 tool set: interpolation at bit level (ABC) and
/// software level (CPAChecker interpolation, IMPARA).
pub fn fig4_tools(timeout_secs: u64) -> Vec<Tool> {
    let b = budget(timeout_secs);
    vec![
        Tool::hw("ABC-itp", engines::itp::Interpolation::new(b.clone())),
        Tool::sw(
            "CPA-itp",
            swan::predabs::PredAbs::new(b.clone(), swan::predabs::RefineMode::Interpolant),
        ),
        Tool::sw("IMPARA", swan::impact::Impact::new(b)),
    ]
}

/// The Figure 5 tool set: PDR at bit level (ABC) and software level
/// (SeaHorn), plus the hybrid techniques (CPA predicate abstraction,
/// 2LS kIkI).
pub fn fig5_tools(timeout_secs: u64) -> Vec<Tool> {
    let b = budget(timeout_secs);
    vec![
        Tool::hw("ABC-pdr", engines::pdr::Pdr::new(b.clone())),
        Tool::sw("SeaHorn-pdr", swan::seahorn::SeaHorn::new(b.clone())),
        Tool::sw(
            "CPA-predabs",
            swan::predabs::PredAbs::new(b.clone(), swan::predabs::RefineMode::Wp),
        ),
        Tool::sw("2LS-kiki", swan::twols::TwoLs::new(b)),
    ]
}

/// Runs a whole figure: every tool on every benchmark. Prints a table
/// and returns the classification matrix (benchmark-major).
pub fn run_figure(
    title: &str,
    tools: &[Tool],
    benchmarks: &[Benchmark],
) -> Vec<Vec<Classification>> {
    println!("== {title} ==");
    print!("{:<14}", "benchmark");
    for t in tools {
        print!("{:>14}", t.name);
    }
    println!();
    let mut matrix = Vec::new();
    for b in benchmarks {
        print!("{:<14}", b.name);
        let mut row = Vec::new();
        for t in tools {
            let (class, _) = run_and_classify(t, b);
            print!("{:>14}", class.label());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            row.push(class);
        }
        println!();
        matrix.push(row);
    }
    // Summary: solved per tool.
    print!("{:<14}", "solved");
    for ti in 0..tools.len() {
        let solved = matrix
            .iter()
            .filter(|row| matches!(row[ti], Classification::Solved(_)))
            .count();
        print!("{:>14}", format!("{solved}/{}", matrix.len()));
    }
    println!();
    matrix
}

/// Parses `--timeout N` and an optional benchmark-name filter from CLI
/// arguments.
pub fn parse_args(default_timeout: u64) -> (u64, Vec<Benchmark>) {
    let args: Vec<String> = std::env::args().collect();
    let mut timeout = default_timeout;
    let mut filter: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                timeout = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(default_timeout);
                i += 2;
            }
            other => {
                filter = Some(other.to_string());
                i += 1;
            }
        }
    }
    let benchmarks = match filter {
        Some(f) => bmarks::by_name(&f).into_iter().collect(),
        None => bmarks::all(),
    };
    (timeout, benchmarks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_sets_match_paper_legends() {
        assert_eq!(fig3_tools(1).len(), 4);
        assert_eq!(fig4_tools(1).len(), 3);
        assert_eq!(fig5_tools(1).len(), 4);
    }

    #[test]
    fn classification_labels() {
        assert_eq!(Classification::Timeout.label(), "TO");
        assert!(Classification::Solved(1.5).label().contains("1.50"));
    }

    #[test]
    fn easy_benchmark_solved_by_pdr_quickly() {
        let b = bmarks::by_name("Vending").expect("exists");
        let tool = Tool::hw("ABC-pdr", engines::pdr::Pdr::new(budget(30)));
        let (class, _) = run_and_classify(&tool, &b);
        assert!(
            matches!(class, Classification::Solved(_)),
            "vending must be easy for PDR: {class:?}"
        );
    }

    #[test]
    fn unsafe_benchmark_found_by_bmc_family() {
        let b = bmarks::by_name("traffic-light").expect("exists");
        let tool = Tool::hw("ABC-kind", engines::kind::KInduction::new(budget(60)));
        let (class, out) = run_and_classify(&tool, &b);
        assert!(
            matches!(class, Classification::Solved(_)),
            "traffic-light bug must be found: {class:?} ({:?})",
            out.outcome
        );
    }
}
