//! Boxed-clause baseline solver for the propagation microbenchmark.
//!
//! This is the seed repository's clause representation — every clause a
//! separately heap-allocated `Vec<Lit>` inside a `Vec<Clause>`, no
//! learned-clause deletion — kept (stripped of proof logging and
//! assumptions) as the measurement baseline that `satb`'s arena-backed
//! [`satb::ClauseDb`] is compared against by the `satperf` binary and
//! the criterion kernels. Do not use it for anything else; `satb` is
//! the real solver.

use satb::{Lit, Var};

/// Verdict of [`BoxedSolver::solve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoxedResult {
    /// Satisfiable.
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// Conflict budget exhausted.
    Unknown,
}

/// Propagation/conflict counters of a baseline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoxedStats {
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// Max-heap over variables ordered by VSIDS activity (copied from the
/// seed solver so decision cost matches).
#[derive(Clone, Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<i32>, // -1 if absent
}

impl VarHeap {
    fn ensure(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(-1);
        }
    }
    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] >= 0
    }
    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }
    fn bump(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            let i = self.pos[v.index()] as usize;
            self.sift_up(i, act);
        }
    }
    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = -1;
        let last = self.heap.pop().expect("nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }
    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[p].index()] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }
    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }
    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i as i32;
        self.pos[self.heap[j].index()] = j as i32;
    }
}

/// The Luby restart sequence (as in the seed solver).
fn luby(i: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

/// The seed's boxed-clause CDCL core.
#[derive(Debug, Default)]
pub struct BoxedSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    levels: Vec<u32>,
    reasons: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    ok: bool,
    seen: Vec<bool>,
    stats: BoxedStats,
}

impl BoxedSolver {
    /// Creates an empty solver.
    pub fn new() -> BoxedSolver {
        BoxedSolver {
            var_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> BoxedStats {
        self.stats
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.ensure(self.assigns.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    /// Adds a clause; returns `false` on immediate inconsistency.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        for w in ls.windows(2) {
            if w[0].var() == w[1].var() {
                return true;
            }
        }
        if ls.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true;
        }
        ls.retain(|&l| self.lit_value(l) != LBool::False);
        match ls.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(ls[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                let cref = self.clauses.len() as u32;
                let (l0, l1) = (ls[0], ls[1]);
                self.clauses.push(Clause { lits: ls });
                self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
                self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        let v = l.var().index();
        self.assigns[v] = if l.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.trail.push(l);
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.phase[v] = l.is_positive();
            self.assigns[v] = LBool::Undef;
            self.reasons[v] = None;
            self.heap.insert(l.var(), &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut j = 0;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict: Option<u32> = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref as usize;
                let false_lit = !p;
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    conflict = Some(w.cref);
                } else {
                    self.enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bump(v, &self.activity);
    }

    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)];
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut clause = confl;
        loop {
            let lits = self.clauses[clause as usize].lits.clone();
            for &q in &lits {
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if self.seen[v.index()] || self.levels[v.index()] == 0 {
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.levels[v.index()] >= self.decision_level() {
                    path_count += 1;
                } else {
                    learnt.push(q);
                }
            }
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            clause = self.reasons[pl.var().index()].expect("reason");
            p = Some(pl);
        }
        for &q in &learnt[1..] {
            self.seen[q.var().index()] = false;
        }
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn learn(&mut self, learnt: Vec<Lit>) -> u32 {
        let cref = self.clauses.len() as u32;
        if learnt.len() >= 2 {
            let (l0, l1) = (learnt[0], learnt[1]);
            self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
            self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
        }
        self.clauses.push(Clause { lits: learnt });
        cref
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    /// Solves, giving up after `max_conflicts` conflicts.
    pub fn solve(&mut self, max_conflicts: u64) -> BoxedResult {
        if !self.ok {
            return BoxedResult::Unsat;
        }
        let base = self.stats.conflicts;
        let mut restart_base = self.stats.conflicts;
        let mut restart_count = 0u64;
        let mut restart_budget = luby(restart_count) * 100;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return BoxedResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                let asserting = learnt[0];
                let cref = self.learn(learnt);
                self.enqueue(asserting, Some(cref));
                self.var_inc /= 0.95;
                if self.stats.conflicts - restart_base >= restart_budget {
                    restart_count += 1;
                    restart_budget = luby(restart_count) * 100;
                    restart_base = self.stats.conflicts;
                    self.backtrack(0);
                }
                if self.stats.conflicts - base >= max_conflicts {
                    self.backtrack(0);
                    return BoxedResult::Unknown;
                }
            } else {
                match self.pick_branch() {
                    None => {
                        self.backtrack(0);
                        return BoxedResult::Sat;
                    }
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_agrees_with_satb_on_small_instances() {
        // The baseline exists to be timed, but it must at least answer
        // correctly where satb does.
        for holes in 2..=5 {
            let pigeons = holes + 1;
            let var = |p: usize, h: usize| p * holes + h;
            let mut b = BoxedSolver::new();
            let mut s = satb::Solver::new();
            while b.num_vars() < pigeons * holes {
                b.new_var();
                s.new_var();
            }
            for p in 0..pigeons {
                let c: Vec<Lit> = (0..holes)
                    .map(|h| Lit::pos(Var::from_index(var(p, h))))
                    .collect();
                b.add_clause(&c);
                s.add_clause(&c);
            }
            for h in 0..holes {
                for p1 in 0..pigeons {
                    for p2 in (p1 + 1)..pigeons {
                        let c = [
                            Lit::neg(Var::from_index(var(p1, h))),
                            Lit::neg(Var::from_index(var(p2, h))),
                        ];
                        b.add_clause(&c);
                        s.add_clause(&c);
                    }
                }
            }
            assert_eq!(b.solve(u64::MAX), BoxedResult::Unsat);
            assert_eq!(s.solve(), satb::SolveResult::Unsat);
        }
    }
}
