//! Encoding-throughput microbenchmark: template instantiation vs.
//! per-frame `FrameEncoder` re-encoding.
//!
//! For every `benchmarks/*.v` design, the transition relation is
//! materialized for `FRAMES` chained time frames twice — once through
//! the compile-once [`aig::TransitionTemplate`] (offset-mapped bulk
//! load) and once through the pre-template path (a fresh
//! [`aig::FrameEncoder`] per frame re-running Tseitin over the cones).
//! Emits machine-readable JSON on stdout: per-design wall times,
//! clauses encoded per second, the template compile cost, the
//! per-design speedup and the geomean — the encoding leg of the perf
//! trajectory next to `satperf`'s propagation leg.
//!
//! Usage: `cargo run --release -p bench --bin encperf`

use aig::{AigSystem, FrameEncoder, TransitionTemplate};
use satb::{Lit, Part, Solver};
use std::time::Instant;

/// Frames unrolled per measurement (one incremental solver).
const FRAMES: usize = 24;
/// Measurement repetitions; the minimum wall time is reported.
const REPS: usize = 3;

/// Unrolls `FRAMES` chained frames through the template.
fn template_unroll(sys: &AigSystem, tpl: &TransitionTemplate) -> usize {
    let mut solver = Solver::new();
    let mut frame = tpl.instantiate(&mut solver, Part::A, 0);
    frame.assert_init(sys, &mut solver);
    for _ in 0..FRAMES {
        let bind = frame.latch_next.clone();
        frame = tpl.instantiate_bound(&mut solver, Part::A, 0, &bind);
    }
    solver.num_clauses()
}

/// Unrolls `FRAMES` chained frames the pre-template way: one
/// `FrameEncoder` per frame, next-state / constraint / bad cones
/// re-encoded per frame (the seed `FrameChain::ensure` behaviour).
fn encoder_unroll(sys: &AigSystem, any_bad: aig::AigLit, aig: &aig::Aig) -> usize {
    let mut solver = Solver::new();
    let mut enc = FrameEncoder::new();
    for latch in &sys.latches {
        let l = Lit::pos(solver.new_var());
        enc.bind(latch.output, l);
        if let Some(init) = latch.init {
            solver.add_clause(&[if init { l } else { !l }]);
        }
    }
    for _ in 0..=FRAMES {
        for &c in &sys.constraints {
            let cl = enc.encode(aig, &mut solver, c, Part::A);
            solver.add_clause(&[cl]);
        }
        for &b in &sys.bads {
            enc.encode(aig, &mut solver, b, Part::A);
        }
        enc.encode(aig, &mut solver, any_bad, Part::A);
        let mut next_enc = FrameEncoder::new();
        for latch in &sys.latches {
            let nl = enc.encode(aig, &mut solver, latch.next, Part::A);
            next_enc.bind(latch.output, nl);
        }
        enc = next_enc;
    }
    solver.num_clauses()
}

fn best_of<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut clauses = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        clauses = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, clauses)
}

fn main() {
    let benchmarks = bmarks::all();
    println!("{{");
    println!("  \"benchmark\": \"encperf\",");
    println!("  \"frames\": {FRAMES},");
    println!("  \"runs\": [");
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for (i, b) in benchmarks.iter().enumerate() {
        let ts = b.compile().expect("benchmark compiles");
        let mut sys = aig::blast_system(&ts);
        let bads = sys.bads.clone();
        let any_bad = sys.aig.or_all(&bads);
        let sys = sys; // freeze

        let t0 = Instant::now();
        let tpl = TransitionTemplate::compile(&sys);
        let compile_s = t0.elapsed().as_secs_f64();

        let (tpl_s, tpl_clauses) = best_of(|| template_unroll(&sys, &tpl));
        let (enc_s, enc_clauses) = best_of(|| encoder_unroll(&sys, any_bad, &sys.aig));
        let speedup = enc_s / tpl_s.max(1e-9);
        speedups.push((b.name.to_string(), speedup));
        let cps = tpl_clauses as f64 / tpl_s.max(1e-9);
        print!(
            "    {{\"design\":\"{}\",\"latches\":{},\"template_clauses_per_frame\":{},\
             \"template_compile_s\":{:.6},\"template_unroll_s\":{:.6},\
             \"encoder_unroll_s\":{:.6},\"template_clauses\":{},\"encoder_clauses\":{},\
             \"template_clauses_per_s\":{:.0},\"speedup\":{:.3}}}",
            b.name,
            sys.num_latches(),
            tpl.num_frame_clauses(),
            compile_s,
            tpl_s,
            enc_s,
            tpl_clauses,
            enc_clauses,
            cps,
            speedup
        );
        println!("{}", if i + 1 < benchmarks.len() { "," } else { "" });
    }
    println!("  ],");
    print!("  \"speedup\": {{");
    for (i, (n, r)) in speedups.iter().enumerate() {
        print!("{}\"{}\":{:.3}", if i == 0 { "" } else { "," }, n, r);
    }
    println!("}},");
    let geo = (speedups.iter().map(|(_, r)| r.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("  \"geomean_speedup\": {geo:.3}");
    println!("}}");
}
