//! Proof-logging microbenchmark: the cost and coverage of the
//! independent resolution-proof checker ([`satb::proofcheck`]) across
//! every `benchmarks/*.v` design.
//!
//! Three legs per design:
//!
//! 1. **Interpolation, raw vs. preprocessed template** — the engine
//!    runs once on an un-preprocessed blast ([`Blasted::of_raw`]) and
//!    once on the SatELite-preprocessed clause image
//!    ([`Blasted::of_unstrengthened`]). Opposing definite verdicts are
//!    a soundness alarm; every definite verdict is re-checked in
//!    **paranoid** mode ([`engines::certify::certify_with_mode`]), so
//!    each certification obligation is itself backed by a replayed
//!    resolution proof.
//! 2. **Proof-logged in-solver preprocessing** — a fresh proof-logging
//!    solver unrolls three template frames BMC-style, runs
//!    [`satb::Solver::preprocess`] (proof-aware as of this change:
//!    strengthenings and resolvents become derived chains, removals
//!    become deletions), solves, and replays the whole proof with
//!    [`satb::Solver::check_proof`]. On UNSAT the McMillan interpolant
//!    is extracted and its vocabulary side-conditions are checked too.
//! 3. **Accounting** — proof arena bytes, chains recorded, chains
//!    replayed, check time, and the checker-overhead ratio
//!    (check time / solve time) with its geomean.
//!
//! Emits machine-readable JSON on stdout. Exits 2 if any proof fails
//! its replay, an interpolant leaves the shared vocabulary, a paranoid
//! certification is rejected, or the raw and preprocessed
//! interpolation legs disagree on a definite verdict.
//!
//! Usage: `cargo run --release -p bench --bin proofperf [-- --timeout SECS]`

use engines::certify::certify_with_mode;
use engines::itp::Interpolation;
use engines::{Blasted, CheckOutcome, Checker, Verdict};
use satb::{Part, SolveResult, Solver};
use std::time::Instant;

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Safe => "safe".into(),
        Verdict::Unsafe(t) => format!("bug@{}", t.length()),
        Verdict::Unknown(u) => format!("unknown({u})"),
    }
}

fn run(checker: &Interpolation, ts: &rtlir::TransitionSystem, b: &Blasted) -> (CheckOutcome, f64) {
    let t0 = Instant::now();
    let out = checker.check_blasted(ts, b);
    (out, t0.elapsed().as_secs_f64())
}

/// Outcome of the proof-logged BMC + in-solver preprocessing leg.
struct ProofLeg {
    verdict: &'static str,
    preprocessed: bool,
    solve_s: f64,
    check_s: f64,
    proof_bytes: u64,
    proof_chains: u64,
    chains_checked: u64,
    steps_checked: u64,
    max_depth: usize,
    proof_ok: bool,
    itp_ok: bool,
    failure: Option<String>,
}

/// Unrolls `k` template frames (frame 0 initialized, `Part::A`; the
/// rest and the bad clause `Part::B`), preprocesses in-solver under
/// proof logging, solves, and replays the proof with the independent
/// checker.
fn proof_leg(sys: &aig::AigSystem, tpl: &aig::TransitionTemplate, k: usize) -> ProofLeg {
    let mut s = Solver::with_proof();
    let mut frames = vec![tpl.instantiate(&mut s, Part::A, 0)];
    frames[0].assert_init(sys, &mut s);
    for d in 1..=k {
        let cur = frames[d - 1].latch_next.clone();
        frames.push(tpl.instantiate_bound(&mut s, Part::B, d as u32, &cur));
    }
    s.add_clause_in(&[frames[k].any_bad], Part::B);
    let preprocessed = s.preprocess(&[]);

    let t0 = Instant::now();
    let verdict = s.solve();
    let solve_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let report = s.check_proof().expect("proof logging is on");
    let mut itp_ok = true;
    let mut failure = report.first_failure();
    if verdict == SolveResult::Unsat {
        let itp = s.interpolant().expect("UNSAT records a refutation");
        let irep =
            satb::proofcheck::check_with_interpolant(s.proof().expect("proof logging"), &itp);
        if !irep.ok() {
            itp_ok = false;
            failure = failure.or_else(|| irep.first_failure());
        }
    }
    let check_s = t1.elapsed().as_secs_f64();

    let stats = s.stats();
    ProofLeg {
        verdict: match verdict {
            SolveResult::Sat => "sat",
            SolveResult::Unsat => "unsat",
            SolveResult::Unknown(_) => "unknown",
        },
        preprocessed,
        solve_s,
        check_s,
        proof_bytes: stats.proof_bytes,
        proof_chains: stats.proof_chains,
        chains_checked: report.chains_checked,
        steps_checked: report.steps_checked,
        max_depth: report.max_depth,
        proof_ok: report.ok(),
        itp_ok,
        failure,
    }
}

fn main() {
    let (timeout, benchmarks) = bench::parse_args(20);
    let mut overheads: Vec<f64> = Vec::new();
    let mut disagreed = false;
    let mut uncertified = false;
    let mut proof_failed = false;
    println!("{{");
    println!("  \"benchmark\": \"proofperf\",");
    println!("  \"timeout_s\": {timeout},");
    println!("  \"runs\": [");
    for (i, b) in benchmarks.iter().enumerate() {
        let ts = b.compile().expect("benchmark compiles");
        let raw = Blasted::of_raw(&ts);
        let pre = Blasted::of_unstrengthened(&ts);
        let budget = bench::budget(timeout);
        let (out_raw, raw_s) = run(&Interpolation::new(budget.clone()), &ts, &raw);
        let (out_pre, pre_s) = run(&Interpolation::new(budget), &ts, &pre);
        // Opposing *definite* verdicts between the raw and the
        // preprocessed clause image indict the proof-logged
        // preprocessing; a timeout on one side is a budget artifact.
        let agree = !matches!(
            (&out_raw.outcome, &out_pre.outcome),
            (Verdict::Safe, Verdict::Unsafe(_)) | (Verdict::Unsafe(_), Verdict::Safe)
        );
        disagreed |= !agree;
        // Paranoid certification: every definite verdict re-checked
        // with proof-replaying obligation solvers.
        let tpl = aig::TransitionTemplate::compile(&raw.sys);
        let mut certified = true;
        let mut replayed_chains = 0u64;
        for out in [&out_raw, &out_pre] {
            if !matches!(out.outcome, Verdict::Unknown(_)) {
                let rep = certify_with_mode(&raw.sys, &tpl, out, true);
                replayed_chains += rep.proof_chains;
                if !rep.ok {
                    certified = false;
                }
            }
        }
        uncertified |= !certified;
        let leg = proof_leg(&raw.sys, &tpl, 3);
        proof_failed |= !(leg.proof_ok && leg.itp_ok);
        let overhead = leg.check_s / leg.solve_s.max(1e-9);
        overheads.push(overhead);
        print!(
            "    {{\"design\":\"{}\",\"verdict_raw\":\"{}\",\"verdict_pre\":\"{}\",\
             \"certified_paranoid\":{},\"certify_chains\":{},\
             \"raw_s\":{:.4},\"pre_s\":{:.4},\
             \"bmc3\":{{\"verdict\":\"{}\",\"preprocessed\":{},\
             \"proof_bytes\":{},\"proof_chains\":{},\"chains_checked\":{},\
             \"steps_checked\":{},\"max_depth\":{},\"proof_ok\":{},\"itp_ok\":{},\
             \"solve_s\":{:.4},\"check_s\":{:.4},\"check_overhead\":{:.3}}}}}",
            b.name,
            verdict_label(&out_raw.outcome),
            verdict_label(&out_pre.outcome),
            certified,
            replayed_chains,
            raw_s,
            pre_s,
            leg.verdict,
            leg.preprocessed,
            leg.proof_bytes,
            leg.proof_chains,
            leg.chains_checked,
            leg.steps_checked,
            leg.max_depth,
            leg.proof_ok,
            leg.itp_ok,
            leg.solve_s,
            leg.check_s,
            overhead,
        );
        println!("{}", if i + 1 < benchmarks.len() { "," } else { "" });
        if let Some(why) = &leg.failure {
            eprintln!("proofperf: {}: {}", b.name, why);
        }
    }
    println!("  ],");
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len().max(1) as f64).exp();
    println!("  \"geomean_check_overhead\": {:.3},", geo(&overheads));
    println!("  \"disagreement\": {disagreed},");
    println!("  \"certificate_failure\": {uncertified},");
    println!("  \"proof_check_failure\": {proof_failed}");
    println!("}}");
    if disagreed || uncertified || proof_failed {
        std::process::exit(2);
    }
}
