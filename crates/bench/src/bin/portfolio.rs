//! Portfolio mode of the benchmark runner: races BMC, k-induction,
//! interpolation, PDR **and a seated software analyzer**
//! (CPAChecker-style predicate abstraction over the v2c path) with
//! cooperative cancellation on each benchmark and prints the winner
//! plus the per-engine breakdown — the paper's "hybrid" configuration
//! as one tool.
//!
//! Usage: `portfolio [--timeout SECS] [benchmark]`
//!
//! Exits nonzero when nothing was solved (or the filter matched no
//! benchmark), and with code 2 on an engine disagreement, so CI smoke
//! runs fail on more than just panics.

use engines::Verdict;

fn main() {
    let (timeout, benchmarks) = bench::parse_args(15);
    if benchmarks.is_empty() {
        eprintln!("no benchmark matched the filter");
        std::process::exit(1);
    }
    println!("== Portfolio (hybrid) mode, timeout {timeout}s ==");
    println!(
        "{:<14}{:>10}{:>12}{:>10}{:>10}{:>12}{:>12}",
        "benchmark", "verdict", "winner", "time", "depth", "queries", "conflicts"
    );
    let mut solved = 0usize;
    let mut disagreed = false;
    for b in &benchmarks {
        let ts = match b.compile() {
            Ok(ts) => ts,
            Err(e) => {
                println!("{:<14}{:>10}   compile error: {e}", b.name, "ERR");
                continue;
            }
        };
        let p = bench::hybrid_portfolio(timeout);
        let report = p.check_detailed(&ts);
        let verdict = match &report.verdict {
            Verdict::Safe => "SAFE".to_string(),
            Verdict::Unsafe(t) => format!("bug@{}", t.length()),
            Verdict::Unknown(u) => format!("UNK({u})"),
        };
        if !matches!(report.verdict, Verdict::Unknown(_)) {
            solved += 1;
        }
        println!(
            "{:<14}{:>10}{:>12}{:>9.2}s{:>10}{:>12}{:>12}",
            b.name,
            verdict,
            report.winner.unwrap_or("-"),
            report.stats.time.as_secs_f64(),
            report.stats.depth,
            report.stats.sat_queries,
            report.stats.conflicts,
        );
        for e in &report.engines {
            println!(
                "{:<14}{:>10}{:>12}{:>9.2}s{:>10}{:>12}{:>12}",
                format!("  · {}", e.name),
                format!("{}", ClassLabel(&e.outcome.outcome)),
                if e.winner { "*" } else { "" },
                e.outcome.stats.time.as_secs_f64(),
                e.outcome.stats.depth,
                e.outcome.stats.sat_queries,
                e.outcome.stats.conflicts,
            );
        }
        if report.disagreement {
            println!("!! engines disagreed on {} — soundness alarm", b.name);
            disagreed = true;
        }
    }
    println!("solved {solved}/{}", benchmarks.len());
    if disagreed {
        std::process::exit(2);
    }
    if solved == 0 {
        std::process::exit(1);
    }
}

/// Compact verdict cell for the per-engine rows.
struct ClassLabel<'a>(&'a Verdict);

impl std::fmt::Display for ClassLabel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            Verdict::Safe => write!(f, "safe"),
            Verdict::Unsafe(t) => write!(f, "bug@{}", t.length()),
            Verdict::Unknown(u) => match u {
                engines::Unknown::Cancelled => write!(f, "cancel"),
                engines::Unknown::Timeout => write!(f, "t/o"),
                engines::Unknown::BoundReached => write!(f, "bound"),
                engines::Unknown::ConflictLimit => write!(f, "confl"),
                engines::Unknown::Inconclusive(_) => write!(f, "unk"),
                engines::Unknown::CertificateFailed(_) => write!(f, "cert✗"),
                engines::Unknown::Crashed(_) => write!(f, "crash"),
            },
        }
    }
}
