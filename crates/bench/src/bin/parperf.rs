//! Parallel-PDR scaling benchmark: the diversified worker pool
//! ([`engines::parallel::ParallelPdr`]) at 1, 2 and 4 workers over
//! every bundled design.
//!
//! Every `benchmarks/*.v` design is blasted and template-compiled
//! once, then checked three times under identical budgets — a solo
//! pool (worker 0 is byte-for-byte the single-solver PDR
//! configuration) and pools of 2 and 4 diversified workers sharing
//! one frame store. Emits machine-readable JSON on stdout: per-design
//! verdicts and wall times for each pool size, the lemma-exchange
//! counters of the widest pool (cubes published to the shared store,
//! cubes re-verified and imported from peers, store sync rounds), the
//! solo-to-4-worker speedup and its geomean — the parallel leg of the
//! perf trajectory next to `pdrperf` (solver architecture).
//!
//! Every definite verdict is independently re-checked:
//! [`engines::certify::certify`] replays traces and re-discharges
//! Safe witnesses against the **raw** template, so a worker pool that
//! races to a wrong answer fails the run rather than shipping it.
//!
//! Exits nonzero if any two pool sizes return opposing definite
//! verdicts on the same design, or if any definite verdict fails
//! certification.
//!
//! Usage: `cargo run --release -p bench --bin parperf [-- --timeout SECS]`

use engines::certify::certify;
use engines::parallel::ParallelPdr;
use engines::{Blasted, CheckOutcome, Checker, Verdict};
use std::time::Instant;

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Safe => "safe".into(),
        Verdict::Unsafe(t) => format!("bug@{}", t.length()),
        Verdict::Unknown(u) => format!("unknown({u})"),
    }
}

fn run(
    workers: usize,
    timeout: u64,
    ts: &rtlir::TransitionSystem,
    blasted: &Blasted,
) -> (CheckOutcome, f64) {
    let pool = ParallelPdr::new(bench::budget(timeout), workers);
    let t0 = Instant::now();
    let out = pool.check_blasted(ts, blasted);
    (out, t0.elapsed().as_secs_f64())
}

/// Opposing definite verdicts are a disagreement; a timeout on one
/// pool size while another answers is a budget artifact (same rule
/// the portfolio and pdrperf use).
fn opposed(a: &Verdict, b: &Verdict) -> bool {
    matches!(
        (a, b),
        (Verdict::Safe, Verdict::Unsafe(_)) | (Verdict::Unsafe(_), Verdict::Safe)
    )
}

fn main() {
    let (timeout, benchmarks) = bench::parse_args(20);
    let mut speedups: Vec<f64> = Vec::new();
    let mut disagreed = false;
    let mut cert_failed = false;
    println!("{{");
    println!("  \"benchmark\": \"parperf\",");
    println!("  \"timeout_s\": {timeout},");
    println!("  \"runs\": [");
    for (i, b) in benchmarks.iter().enumerate() {
        let ts = b.compile().expect("benchmark compiles");
        let blasted = Blasted::of(&ts);
        let (solo, solo_s) = run(1, timeout, &ts, &blasted);
        let (two, two_s) = run(2, timeout, &ts, &blasted);
        let (four, four_s) = run(4, timeout, &ts, &blasted);
        for out in [&solo, &two, &four] {
            disagreed |=
                opposed(&solo.outcome, &out.outcome) || opposed(&four.outcome, &out.outcome);
            if !matches!(out.outcome, Verdict::Unknown(_)) && !certify(&blasted.sys, out).ok {
                cert_failed = true;
            }
        }
        let speedup = solo_s / four_s.max(1e-9);
        speedups.push(speedup);
        print!(
            "    {{\"design\":\"{}\",\"verdict_w1\":\"{}\",\"verdict_w2\":\"{}\",\
             \"verdict_w4\":\"{}\",\"w1_s\":{:.4},\"w2_s\":{:.4},\"w4_s\":{:.4},\
             \"depth\":{},\"lemmas_exported\":{},\"lemmas_imported\":{},\
             \"sync_rounds\":{},\"lifted_lits\":{},\"speedup\":{:.3}}}",
            b.name,
            verdict_label(&solo.outcome),
            verdict_label(&two.outcome),
            verdict_label(&four.outcome),
            solo_s,
            two_s,
            four_s,
            four.stats.depth,
            four.stats.lemmas_exported,
            four.stats.lemmas_imported,
            four.stats.sync_rounds,
            four.stats.lifted_lits,
            speedup,
        );
        println!("{}", if i + 1 < benchmarks.len() { "," } else { "" });
    }
    println!("  ],");
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len().max(1) as f64).exp();
    println!("  \"geomean_speedup\": {:.3},", geo(&speedups));
    println!("  \"disagreement\": {disagreed},");
    println!("  \"certification_failure\": {cert_failed}");
    println!("}}");
    if disagreed || cert_failed {
        std::process::exit(2);
    }
}
