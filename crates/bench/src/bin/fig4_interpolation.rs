//! Regenerates the paper's Figure 4: comparison of interpolation-based
//! tools (ABC-itp, CPA-itp, IMPARA) on the twelve benchmarks.
//!
//! Usage: `fig4_interpolation [--timeout SECS] [benchmark]`

fn main() {
    let (timeout, benchmarks) = bench::parse_args(15);
    let tools = bench::fig4_tools(timeout);
    bench::run_figure(
        &format!("Figure 4: interpolation-based tools (timeout {timeout}s)"),
        &tools,
        &benchmarks,
    );
    println!(
        "\nExpected shape (paper): bit-level interpolation is fastest on most\n\
         designs but fails on RCU/FIFO/BufAl; the software interpolation tools\n\
         solve only a handful; nobody proves RCU or BufAl."
    );
}
