//! CNF-preprocessing microbenchmark: the SatELite-style simplified
//! transition template vs. the raw compiled image.
//!
//! For every `benchmarks/*.v` design the transition relation is
//! compiled once, preprocessed once, and both images are then put
//! through the same work: a chained unrolling (instantiation
//! throughput) and a full verdict sweep by every bit-level engine —
//! BMC, k-induction, interpolation, single-solver PDR and the
//! per-frame PDR baseline — under one budget. Emits machine-readable
//! JSON on stdout: clauses/variables before and after, preprocessing
//! cost, per-design instantiation and total solve-time deltas, and
//! the geomean reductions — the preprocessing leg of the perf
//! trajectory next to `satperf` (propagation), `encperf` (encoding)
//! and `pdrperf` (PDR architecture).
//!
//! Exits nonzero if any engine reaches opposing definite verdicts on
//! the raw and preprocessed encodings (the soundness alarm CI gates
//! on), or if an `Unsafe` trace fails to replay on the netlist.
//!
//! Usage: `cargo run --release -p bench --bin preperf [-- --timeout SECS]`

use aig::TransitionTemplate;
use engines::bmc::Bmc;
use engines::itp::Interpolation;
use engines::kind::KInduction;
use engines::pdr::Pdr;
use engines::pdr_baseline::PerFramePdr;
use engines::{Blasted, Checker, Verdict};
use satb::{Part, Solver};
use std::time::Instant;

/// Frames unrolled per instantiation measurement.
const FRAMES: usize = 16;
/// Instantiation measurement repetitions; minimum wall time reported.
const REPS: usize = 3;

fn unroll(sys: &aig::AigSystem, tpl: &TransitionTemplate) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut solver = Solver::new();
        let mut frame = tpl.instantiate(&mut solver, Part::A, 0);
        frame.assert_init(sys, &mut solver);
        for _ in 0..FRAMES {
            let bind = frame.latch_next.clone();
            frame = tpl.instantiate_bound(&mut solver, Part::A, 0, &bind);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Safe => "safe".into(),
        Verdict::Unsafe(t) => format!("bug@{}", t.length()),
        Verdict::Unknown(u) => format!("unknown({u})"),
    }
}

fn main() {
    let (timeout, benchmarks) = bench::parse_args(6);
    let mut clause_ratios: Vec<f64> = Vec::new();
    let mut var_ratios: Vec<f64> = Vec::new();
    let mut inst_speedups: Vec<f64> = Vec::new();
    let mut solve_speedups: Vec<f64> = Vec::new();
    let mut disagreed = false;
    let mut replay_failed = false;
    println!("{{");
    println!("  \"benchmark\": \"preperf\",");
    println!("  \"timeout_s\": {timeout},");
    println!("  \"frames\": {FRAMES},");
    println!("  \"runs\": [");
    for (i, b) in benchmarks.iter().enumerate() {
        let ts = b.compile().expect("benchmark compiles");
        let raw = Blasted::of_raw(&ts);
        let t0 = Instant::now();
        let pre_out = raw.template.preprocess();
        let preproc_s = t0.elapsed().as_secs_f64();
        let stats = pre_out.stats;
        let pre = Blasted {
            sys: raw.sys.clone(),
            template: std::sync::Arc::new(pre_out.template),
            preproc_stats: stats,
            invariant: raw.invariant.clone(),
            invariant_certified: raw.invariant_certified,
        };

        let clauses_before = raw.template.num_frame_clauses();
        let clauses_after = pre.template.num_frame_clauses();
        let vars_before = raw.template.num_frame_vars();
        let vars_after = pre.template.num_frame_vars();
        clause_ratios.push(clauses_before as f64 / (clauses_after as f64).max(1.0));
        var_ratios.push(vars_before as f64 / (vars_after as f64).max(1.0));

        let raw_inst_s = unroll(&raw.sys, &raw.template);
        let pre_inst_s = unroll(&pre.sys, &pre.template);
        inst_speedups.push(raw_inst_s / pre_inst_s.max(1e-9));

        let budget = bench::budget(timeout);
        let checkers: Vec<Box<dyn Checker>> = vec![
            Box::new(Bmc::new(budget.clone())),
            Box::new(KInduction::new(budget.clone())),
            Box::new(Interpolation::new(budget.clone())),
            Box::new(Pdr::new(budget.clone())),
            Box::new(PerFramePdr::new(budget.clone())),
        ];
        let mut raw_solve_s = 0.0;
        let mut pre_solve_s = 0.0;
        let mut engine_cells: Vec<String> = Vec::new();
        for c in &checkers {
            let t0 = Instant::now();
            let r = c.check_blasted(&ts, &raw);
            let r_s = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let p = c.check_blasted(&ts, &pre);
            let p_s = t0.elapsed().as_secs_f64();
            raw_solve_s += r_s;
            pre_solve_s += p_s;
            // Only opposing *definite* verdicts are a disagreement
            // (pdrperf's rule): a timeout on one side is a budget
            // artifact, not a soundness alarm.
            let agree = !matches!(
                (&r.outcome, &p.outcome),
                (Verdict::Safe, Verdict::Unsafe(_)) | (Verdict::Unsafe(_), Verdict::Safe)
            );
            disagreed |= !agree;
            for out in [&r, &p] {
                if let Verdict::Unsafe(trace) = &out.outcome {
                    replay_failed |= !trace.replays_on(&pre.sys);
                }
            }
            engine_cells.push(format!(
                "{{\"engine\":\"{}\",\"raw\":\"{}\",\"pre\":\"{}\",\"raw_s\":{:.4},\"pre_s\":{:.4},\"agree\":{}}}",
                c.name(),
                verdict_label(&r.outcome),
                verdict_label(&p.outcome),
                r_s,
                p_s,
                agree
            ));
        }
        solve_speedups.push(raw_solve_s / pre_solve_s.max(1e-9));
        print!(
            "    {{\"design\":\"{}\",\"clauses_before\":{},\"clauses_after\":{},\
             \"vars_before\":{},\"vars_after\":{},\"elim_vars\":{},\"subsumed\":{},\
             \"strengthened\":{},\"preproc_s\":{:.6},\"raw_inst_s\":{:.6},\"pre_inst_s\":{:.6},\
             \"raw_solve_s\":{:.4},\"pre_solve_s\":{:.4},\"engines\":[{}]}}",
            b.name,
            clauses_before,
            clauses_after,
            vars_before,
            vars_after,
            stats.elim_vars,
            stats.subsumed,
            stats.strengthened,
            preproc_s,
            raw_inst_s,
            pre_inst_s,
            raw_solve_s,
            pre_solve_s,
            engine_cells.join(",")
        );
        println!("{}", if i + 1 < benchmarks.len() { "," } else { "" });
    }
    println!("  ],");
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len().max(1) as f64).exp();
    println!(
        "  \"geomean_clause_reduction\": {:.3},",
        geo(&clause_ratios)
    );
    println!("  \"geomean_var_reduction\": {:.3},", geo(&var_ratios));
    println!(
        "  \"geomean_instantiation_speedup\": {:.3},",
        geo(&inst_speedups)
    );
    println!("  \"geomean_solve_speedup\": {:.3},", geo(&solve_speedups));
    println!("  \"disagreement\": {disagreed},");
    println!("  \"replay_failure\": {replay_failed}");
    println!("}}");
    if disagreed || replay_failed {
        std::process::exit(2);
    }
}
