//! Regenerates the paper's Figure 3: comparison of k-induction tools
//! (ABC-kind, EBMC-kind, CBMC-kind, 2LS-kind) on the twelve
//! benchmarks.
//!
//! Usage: `fig3_kinduction [--timeout SECS] [benchmark]`

fn main() {
    let (timeout, benchmarks) = bench::parse_args(15);
    let tools = bench::fig3_tools(timeout);
    bench::run_figure(
        &format!("Figure 3: k-induction tools (timeout {timeout}s)"),
        &tools,
        &benchmarks,
    );
    println!(
        "\nExpected shape (paper): all four agree on the 1-/2-inductive designs;\n\
         FIFO/RCU/BufAl are not k-inductive and diverge; the bugs in DAIO and\n\
         traffic-light are found at k=64/65 by every engine."
    );
}
