//! Static-strengthening microbenchmark: mined, certified netlist
//! invariants (`aig::analysis`) vs. the plain preprocessed encoding.
//!
//! For every `benchmarks/*.v` design the netlist is blasted twice:
//! once through [`Blasted::of`] — ternary-simulation mining, Houdini
//! filtering, certification of the surviving invariant against the raw
//! template, and constant-latch template refinement — and once through
//! [`Blasted::of_unstrengthened`], the pre-analysis pipeline. Both
//! images are then put through a full verdict sweep by every bit-level
//! engine (BMC, k-induction, interpolation, single-solver PDR, the
//! per-frame baseline) under one budget. Emits machine-readable JSON
//! on stdout: mined / retained candidate counts, constant latches,
//! analysis cost, the independent invariant re-check, per-engine
//! verdicts with solve-time and conflict deltas, and the geomean
//! strengthened-vs-plain speedup — the static-analysis leg of the perf
//! trajectory next to `satperf`, `encperf`, `pdrperf`, `preperf` and
//! `certperf`.
//!
//! Exits nonzero if any mined invariant fails its independent
//! certificate re-check, if any engine reaches opposing definite
//! verdicts on the strengthened and plain encodings (the soundness
//! alarm CI gates on), or if an `Unsafe` trace fails to replay.
//!
//! Usage: `cargo run --release -p bench --bin invperf [-- --timeout SECS]`

use engines::bmc::Bmc;
use engines::certify::certify_invariant;
use engines::itp::Interpolation;
use engines::kind::KInduction;
use engines::pdr::Pdr;
use engines::pdr_baseline::PerFramePdr;
use engines::{Blasted, Checker, Verdict};
use std::time::Instant;

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Safe => "safe".into(),
        Verdict::Unsafe(t) => format!("bug@{}", t.length()),
        Verdict::Unknown(u) => format!("unknown({u})"),
    }
}

fn main() {
    let (timeout, benchmarks) = bench::parse_args(6);
    let mut solve_speedups: Vec<f64> = Vec::new();
    let mut disagreed = false;
    let mut cert_failed = false;
    let mut replay_failed = false;
    let mut total_retained = 0u32;
    let mut any_engine_improved = false;
    println!("{{");
    println!("  \"benchmark\": \"invperf\",");
    println!("  \"timeout_s\": {timeout},");
    println!("  \"runs\": [");
    for (i, b) in benchmarks.iter().enumerate() {
        let ts = b.compile().expect("benchmark compiles");
        let t0 = Instant::now();
        let inv = Blasted::of(&ts);
        let analysis_s = t0.elapsed().as_secs_f64();
        let plain = Blasted::of_unstrengthened(&ts);
        let stats = inv.invariant.stats.clone();
        total_retained += stats.retained;

        // Independent re-check: every emitted invariant must certify
        // against the raw, un-preprocessed template of the original
        // netlist — not just at mining time inside `Blasted::of`.
        let raw_tpl = aig::TransitionTemplate::compile(&inv.sys);
        let recheck = certify_invariant(&inv.sys, &raw_tpl, &inv.invariant.clauses);
        cert_failed |= !recheck.ok || !inv.invariant_certified;

        let budget = bench::budget(timeout);
        let checkers: Vec<Box<dyn Checker>> = vec![
            Box::new(Bmc::new(budget.clone())),
            Box::new(KInduction::new(budget.clone())),
            Box::new(Interpolation::new(budget.clone())),
            Box::new(Pdr::new(budget.clone())),
            Box::new(PerFramePdr::new(budget.clone())),
        ];
        let mut inv_solve_s = 0.0;
        let mut plain_solve_s = 0.0;
        let mut engine_cells: Vec<String> = Vec::new();
        for c in &checkers {
            let t0 = Instant::now();
            let p = c.check_blasted(&ts, &plain);
            let p_s = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let s = c.check_blasted(&ts, &inv);
            let s_s = t0.elapsed().as_secs_f64();
            plain_solve_s += p_s;
            inv_solve_s += s_s;
            // Only opposing *definite* verdicts are a disagreement: a
            // timeout on one side is a budget artifact, not a
            // soundness alarm.
            let agree = !matches!(
                (&p.outcome, &s.outcome),
                (Verdict::Safe, Verdict::Unsafe(_)) | (Verdict::Unsafe(_), Verdict::Safe)
            );
            disagreed |= !agree;
            for out in [&p, &s] {
                if let Verdict::Unsafe(trace) = &out.outcome {
                    replay_failed |= !trace.replays_on(&plain.sys);
                }
            }
            any_engine_improved |= s_s < p_s || s.stats.conflicts < p.stats.conflicts;
            engine_cells.push(format!(
                "{{\"engine\":\"{}\",\"plain\":\"{}\",\"inv\":\"{}\",\
                 \"plain_s\":{:.4},\"inv_s\":{:.4},\
                 \"plain_conflicts\":{},\"inv_conflicts\":{},\"agree\":{}}}",
                c.name(),
                verdict_label(&p.outcome),
                verdict_label(&s.outcome),
                p_s,
                s_s,
                p.stats.conflicts,
                s.stats.conflicts,
                agree
            ));
        }
        solve_speedups.push(plain_solve_s / inv_solve_s.max(1e-9));
        print!(
            "    {{\"design\":\"{}\",\"mined\":{},\"retained\":{},\"constants\":{},\
             \"ternary_rounds\":{},\"houdini_rounds\":{},\"analysis_queries\":{},\
             \"cancelled\":{},\"certified\":{},\"recheck_ok\":{},\"analysis_s\":{:.6},\
             \"plain_solve_s\":{:.4},\"inv_solve_s\":{:.4},\"engines\":[{}]}}",
            b.name,
            stats.mined,
            stats.retained,
            inv.invariant.constants.len(),
            stats.ternary_rounds,
            stats.houdini_rounds,
            stats.sat_queries,
            stats.cancelled,
            inv.invariant_certified,
            recheck.ok,
            analysis_s,
            plain_solve_s,
            inv_solve_s,
            engine_cells.join(",")
        );
        println!("{}", if i + 1 < benchmarks.len() { "," } else { "" });
    }
    println!("  ],");
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len().max(1) as f64).exp();
    println!("  \"total_retained\": {total_retained},");
    println!("  \"geomean_solve_speedup\": {:.3},", geo(&solve_speedups));
    println!("  \"any_engine_improved\": {any_engine_improved},");
    println!("  \"certificate_failure\": {cert_failed},");
    println!("  \"disagreement\": {disagreed},");
    println!("  \"replay_failure\": {replay_failed}");
    println!("}}");
    if disagreed || cert_failed || replay_failed {
        std::process::exit(2);
    }
}
