//! Query-scoping microbenchmark: PDR with cone-restricted decision
//! domains ([`engines::pdr::Pdr::domains`]) vs. the same engine with
//! unrestricted VSIDS.
//!
//! Every `benchmarks/*.v` design is blasted and template-compiled
//! once, then checked by both configurations under the same budget.
//! Emits machine-readable JSON on stdout: per-design verdicts, query
//! counts, mean decisions and propagations per query for both legs,
//! the domain counters (in-domain decisions, parked variables,
//! chronological backtracks), wall times, and the per-design
//! decisions-per-query ratio (domains on / off) with its geomean —
//! the query-scoping leg of the perf trajectory next to `pdrperf`
//! (architecture) and `parperf` (scaling).
//!
//! Exits 2 if the two configurations disagree on any verdict or a
//! definite verdict fails independent certification; exits 1 if the
//! geomean decisions-per-query ratio is not strictly below 1 (domains
//! must prune decisions overall).
//!
//! Usage: `cargo run --release -p bench --bin qperf [-- --timeout SECS]`

use engines::certify::certify;
use engines::pdr::Pdr;
use engines::{Blasted, CheckOutcome, Checker, Verdict};
use std::time::Instant;

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Safe => "safe".into(),
        Verdict::Unsafe(t) => format!("bug@{}", t.length()),
        Verdict::Unknown(u) => format!("unknown({u})"),
    }
}

fn run(checker: &Pdr, ts: &rtlir::TransitionSystem, blasted: &Blasted) -> (CheckOutcome, f64) {
    let t0 = Instant::now();
    let out = checker.check_blasted(ts, blasted);
    (out, t0.elapsed().as_secs_f64())
}

/// Mean decisions (or propagations) per SAT query.
fn per_query(total: u64, queries: u64) -> f64 {
    total as f64 / queries.max(1) as f64
}

fn main() {
    let (timeout, benchmarks) = bench::parse_args(20);
    let mut ratios: Vec<f64> = Vec::new();
    let mut disagreed = false;
    let mut uncertified = false;
    println!("{{");
    println!("  \"benchmark\": \"qperf\",");
    println!("  \"timeout_s\": {timeout},");
    println!("  \"runs\": [");
    for (i, b) in benchmarks.iter().enumerate() {
        let ts = b.compile().expect("benchmark compiles");
        let blasted = Blasted::of(&ts);
        let budget = bench::budget(timeout);
        let (on, on_s) = run(&Pdr::new(budget.clone()), &ts, &blasted);
        let (off, off_s) = run(
            &Pdr {
                domains: false,
                ..Pdr::new(budget)
            },
            &ts,
            &blasted,
        );
        // Only opposing *definite* verdicts are a disagreement (the
        // portfolio rule): a timeout on one side is a budget artifact.
        let agree = !matches!(
            (&on.outcome, &off.outcome),
            (Verdict::Safe, Verdict::Unsafe(_)) | (Verdict::Unsafe(_), Verdict::Safe)
        );
        disagreed |= !agree;
        // Every definite verdict must survive independent
        // certification against the raw template.
        let mut certified = true;
        for out in [&on, &off] {
            if !matches!(out.outcome, Verdict::Unknown(_)) && !certify(&blasted.sys, out).ok {
                certified = false;
            }
        }
        uncertified |= !certified;
        let dec_on = per_query(on.stats.decisions, on.stats.sat_queries);
        let dec_off = per_query(off.stats.decisions, off.stats.sat_queries);
        let prop_on = per_query(on.stats.propagations, on.stats.sat_queries);
        let prop_off = per_query(off.stats.propagations, off.stats.sat_queries);
        let ratio = dec_on / dec_off.max(1e-9);
        ratios.push(ratio);
        print!(
            "    {{\"design\":\"{}\",\"verdict_on\":\"{}\",\"verdict_off\":\"{}\",\
             \"certified\":{},\
             \"queries_on\":{},\"queries_off\":{},\
             \"decisions_per_query_on\":{:.2},\"decisions_per_query_off\":{:.2},\
             \"propagations_per_query_on\":{:.2},\"propagations_per_query_off\":{:.2},\
             \"domain_decisions\":{},\"domain_skipped\":{},\"chrono_backtracks\":{},\
             \"on_s\":{:.4},\"off_s\":{:.4},\"decision_ratio\":{:.3}}}",
            b.name,
            verdict_label(&on.outcome),
            verdict_label(&off.outcome),
            certified,
            on.stats.sat_queries,
            off.stats.sat_queries,
            dec_on,
            dec_off,
            prop_on,
            prop_off,
            on.stats.domain_decisions,
            on.stats.domain_skipped,
            on.stats.chrono_backtracks,
            on_s,
            off_s,
            ratio,
        );
        println!("{}", if i + 1 < benchmarks.len() { "," } else { "" });
    }
    println!("  ],");
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len().max(1) as f64).exp();
    let geomean = geo(&ratios);
    println!("  \"geomean_decision_ratio\": {geomean:.3},");
    println!("  \"disagreement\": {disagreed},");
    println!("  \"certificate_failure\": {uncertified}");
    println!("}}");
    if disagreed || uncertified {
        std::process::exit(2);
    }
    if geomean >= 1.0 {
        std::process::exit(1);
    }
}
