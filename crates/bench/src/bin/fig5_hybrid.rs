//! Regenerates the paper's Figure 5: PDR and hybrid techniques
//! (ABC-pdr, SeaHorn-pdr, CPA-predabs, 2LS-kiki) on the twelve
//! benchmarks.
//!
//! Usage: `fig5_hybrid [--timeout SECS] [benchmark]`

fn main() {
    let (timeout, benchmarks) = bench::parse_args(15);
    let tools = bench::fig5_tools(timeout);
    bench::run_figure(
        &format!("Figure 5: PDR and hybrid techniques (timeout {timeout}s)"),
        &tools,
        &benchmarks,
    );
    println!(
        "\nExpected shape (paper): bit-level PDR is the clear winner and the\n\
         only engine proving FIFO and BufAl; SeaHorn produces wrong results\n\
         (false negatives) on bit-heavy designs; 2LS-kiki and CPA-predabs\n\
         solve most of the easy designs; nobody proves RCU."
    );
}
