//! Certificate-layer benchmark: every bundled design through the
//! certifying portfolio, plus two fault legs per design.
//!
//! Three runs per benchmark:
//!
//! 1. **chaos** — the same portfolio with `satb`'s deterministic
//!    fault-injection hook armed (`Budget::chaos`): solvers are
//!    cancelled mid-solve after a seeded number of conflicts. Any
//!    definite verdict that survives must still certify and agree with
//!    the calm run.
//! 2. **calm** — the default hardware engines racing with certificate
//!    checking on (the dispatcher re-verifies every witness against
//!    the raw template before calling the race). Doubles as the
//!    clean retry after the chaos leg: same design, fresh solvers,
//!    correct certified verdict.
//! 3. **panic** — the calm portfolio plus a seat that panics on entry;
//!    the dispatcher must isolate the crash and still return the calm
//!    verdict, certified.
//!
//! Emits machine-readable JSON on stdout. Exits with code 2 — the CI
//! gate — when any calm verdict is unknown, uncertified or wrong
//! against ground truth, when any certificate check or trace replay
//! demotes a seat, when the panic leg loses the verdict or the crash
//! report, or when a chaotic definite verdict contradicts the calm one.
//!
//! Usage: `cargo run --release -p bench --bin certperf [-- --timeout SECS]`

use bmarks::Expected;
use engines::portfolio::{Portfolio, PortfolioOutcome};
use engines::{CheckOutcome, Checker, Unknown, Verdict};
use rtlir::TransitionSystem;
use satb::Chaos;

/// A seat that panics the moment it is scheduled: the standing
/// fault-injection fixture for the dispatcher's `catch_unwind`.
struct PanicSeat;

impl Checker for PanicSeat {
    fn name(&self) -> &'static str {
        "panic-seat"
    }
    fn check(&self, _ts: &TransitionSystem) -> CheckOutcome {
        panic!("injected seat failure");
    }
}

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Safe => "safe".into(),
        Verdict::Unsafe(t) => format!("bug@{}", t.length()),
        Verdict::Unknown(u) => format!("unknown({u})"),
    }
}

fn agree(a: &Verdict, b: &Verdict) -> bool {
    matches!(
        (a, b),
        (Verdict::Safe, Verdict::Safe) | (Verdict::Unsafe(_), Verdict::Unsafe(_))
    )
}

fn demotions(report: &PortfolioOutcome) -> usize {
    report
        .engines
        .iter()
        .filter(|e| {
            matches!(
                e.outcome.outcome,
                Verdict::Unknown(Unknown::CertificateFailed(_))
            )
        })
        .count()
}

fn main() {
    let (timeout, benchmarks) = bench::parse_args(15);
    if benchmarks.is_empty() {
        eprintln!("no benchmark matched the filter");
        std::process::exit(1);
    }
    // The panic seat fires by design on every panic leg; keep its
    // backtrace spam out of the log without hiding real panics.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if std::thread::current().name() != Some("portfolio-panic-seat") {
            default_hook(info);
        }
    }));

    let mut failed = false;
    let mut solved = 0usize;
    let mut total_demotions = 0usize;
    println!("{{");
    println!("  \"benchmark\": \"certperf\",");
    println!("  \"timeout_s\": {timeout},");
    println!("  \"runs\": [");
    for (i, b) in benchmarks.iter().enumerate() {
        let ts = b.compile().expect("benchmark compiles");

        // Leg 1: chaos. Aggressive enough to hit real queries, loose
        // enough that trivial ones still finish.
        let chaos_budget = bench::budget(timeout).with_chaos(Chaos {
            seed: i as u64,
            period: 200,
        });
        let chaos = Portfolio::with_default_engines(chaos_budget).check_detailed(&ts);

        // Leg 2: calm — and the clean retry after the injected faults.
        let calm = Portfolio::with_default_engines(bench::budget(timeout)).check_detailed(&ts);

        // Leg 3: a panicking seat joins the calm field.
        let mut p = Portfolio::with_default_engines(bench::budget(timeout));
        p.push(PanicSeat);
        let panicked = p.check_detailed(&ts);

        let calm_definite = !matches!(calm.verdict, Verdict::Unknown(_));
        let truth_ok = matches!(
            (&calm.verdict, b.expected),
            (Verdict::Safe, Expected::Safe) | (Verdict::Unsafe(_), Expected::Unsafe)
        );
        let calm_demoted = demotions(&calm);
        let panic_crash_seen = panicked
            .engines
            .iter()
            .any(|e| matches!(e.outcome.outcome, Verdict::Unknown(Unknown::Crashed(_))));
        let panic_ok =
            agree(&panicked.verdict, &calm.verdict) && panicked.certified && panic_crash_seen;
        let chaos_definite = !matches!(chaos.verdict, Verdict::Unknown(_));
        let chaos_ok = !chaos_definite || (chaos.certified && agree(&chaos.verdict, &calm.verdict));
        let ok = calm_definite
            && truth_ok
            && calm.certified
            && calm_demoted == 0
            && panic_ok
            && chaos_ok
            && !calm.disagreement;

        if calm_definite {
            solved += 1;
        }
        total_demotions += calm_demoted;
        failed |= !ok;

        let cert_label = match (&calm.verdict, &calm.certificate) {
            (Verdict::Unsafe(t), _) => format!("trace@{}", t.length()),
            (_, Some(c)) => format!("{c}"),
            _ => "none".into(),
        };
        print!(
            "    {{\"design\":\"{}\",\"verdict\":\"{}\",\"winner\":\"{}\",\"certified\":{},\
             \"certificate\":\"{}\",\"demotions\":{},\"time_s\":{:.3},\
             \"panic_leg\":{{\"verdict\":\"{}\",\"certified\":{},\"crash_reported\":{}}},\
             \"chaos_leg\":{{\"verdict\":\"{}\",\"certified\":{}}},\"ok\":{}}}",
            b.name,
            verdict_label(&calm.verdict),
            calm.winner.unwrap_or("-"),
            calm.certified,
            cert_label,
            calm_demoted,
            calm.stats.time.as_secs_f64(),
            verdict_label(&panicked.verdict),
            panicked.certified,
            panic_crash_seen,
            verdict_label(&chaos.verdict),
            chaos.certified,
            ok
        );
        println!("{}", if i + 1 < benchmarks.len() { "," } else { "" });
    }
    println!("  ],");
    println!("  \"solved\": {solved},");
    println!("  \"total\": {},", benchmarks.len());
    println!("  \"demotions\": {total_demotions},");
    println!("  \"gate_failed\": {failed}");
    println!("}}");
    if failed {
        std::process::exit(2);
    }
}
