//! PDR architecture microbenchmark: the single-solver
//! activation-literal engine ([`engines::pdr::Pdr`]) vs. the
//! one-solver-per-frame baseline
//! ([`engines::pdr_baseline::PerFramePdr`]).
//!
//! Every `benchmarks/*.v` design is blasted and template-compiled
//! once, then checked by both engines under the same budget. Emits
//! machine-readable JSON on stdout: per-design verdicts, depths, wall
//! times, total conflicts, peak arena bytes, activation-variable
//! recycling and ternary-drop counts, the per-design arena ratio and
//! wall-time speedup, and their geomeans — the PDR leg of the perf
//! trajectory next to `satperf` (propagation) and `encperf`
//! (encoding).
//!
//! Exits nonzero if the two engines disagree on any verdict, or if the
//! single-solver engine's peak arena is not strictly below the
//! baseline's on a design both engines actually ran deep on.
//!
//! Usage: `cargo run --release -p bench --bin pdrperf [-- --timeout SECS]`

use engines::pdr::Pdr;
use engines::pdr_baseline::PerFramePdr;
use engines::{Blasted, CheckOutcome, Checker, Verdict};
use std::time::Instant;

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Safe => "safe".into(),
        Verdict::Unsafe(t) => format!("bug@{}", t.length()),
        Verdict::Unknown(u) => format!("unknown({u})"),
    }
}

fn run(
    checker: &dyn Checker,
    ts: &rtlir::TransitionSystem,
    blasted: &Blasted,
) -> (CheckOutcome, f64) {
    let t0 = Instant::now();
    let out = checker.check_blasted(ts, blasted);
    (out, t0.elapsed().as_secs_f64())
}

fn main() {
    let (timeout, benchmarks) = bench::parse_args(20);
    let mut arena_ratios: Vec<f64> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    let mut disagreed = false;
    let mut arena_regressed = false;
    println!("{{");
    println!("  \"benchmark\": \"pdrperf\",");
    println!("  \"timeout_s\": {timeout},");
    println!("  \"runs\": [");
    for (i, b) in benchmarks.iter().enumerate() {
        let ts = b.compile().expect("benchmark compiles");
        let blasted = Blasted::of(&ts);
        let budget = bench::budget(timeout);
        let (single, single_s) = run(&Pdr::new(budget.clone()), &ts, &blasted);
        let (frames, frames_s) = run(&PerFramePdr::new(budget), &ts, &blasted);
        // Only opposing *definite* verdicts are a disagreement (the
        // same rule the portfolio uses): one engine timing out while
        // the other answers is a budget artifact, not a soundness
        // alarm.
        let agree = !matches!(
            (&single.outcome, &frames.outcome),
            (Verdict::Safe, Verdict::Unsafe(_)) | (Verdict::Unsafe(_), Verdict::Safe)
        );
        disagreed |= !agree;
        let arena_ratio =
            frames.stats.arena_peak_bytes as f64 / (single.stats.arena_peak_bytes as f64).max(1.0);
        // Arena must shrink strictly whenever the baseline built more
        // than its frame-0 solver (i.e. on every design that goes past
        // the level-0 check).
        if frames.stats.depth >= 1 && single.stats.arena_peak_bytes >= frames.stats.arena_peak_bytes
        {
            arena_regressed = true;
        }
        let speedup = frames_s / single_s.max(1e-9);
        arena_ratios.push(arena_ratio);
        speedups.push(speedup);
        print!(
            "    {{\"design\":\"{}\",\"verdict\":\"{}\",\"baseline_verdict\":\"{}\",\
             \"depth\":{},\"single_s\":{:.4},\"frames_s\":{:.4},\
             \"single_conflicts\":{},\"frames_conflicts\":{},\
             \"single_arena_peak\":{},\"frames_arena_peak\":{},\
             \"act_recycled\":{},\"ternary_drops\":{},\
             \"arena_ratio\":{:.3},\"speedup\":{:.3}}}",
            b.name,
            verdict_label(&single.outcome),
            verdict_label(&frames.outcome),
            single.stats.depth,
            single_s,
            frames_s,
            single.stats.conflicts,
            frames.stats.conflicts,
            single.stats.arena_peak_bytes,
            frames.stats.arena_peak_bytes,
            single.stats.act_recycled,
            single.stats.ternary_drops,
            arena_ratio,
            speedup,
        );
        println!("{}", if i + 1 < benchmarks.len() { "," } else { "" });
    }
    println!("  ],");
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len().max(1) as f64).exp();
    println!("  \"geomean_arena_ratio\": {:.3},", geo(&arena_ratios));
    println!("  \"geomean_speedup\": {:.3},", geo(&speedups));
    println!("  \"disagreement\": {disagreed},");
    println!("  \"arena_regression\": {arena_regressed}");
    println!("}}");
    if disagreed {
        std::process::exit(2);
    }
    if arena_regressed {
        std::process::exit(1);
    }
}
