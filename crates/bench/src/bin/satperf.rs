//! SAT-solver propagation-throughput microbenchmark.
//!
//! Runs identical CNF workloads through `satb`'s arena-backed solver
//! and through the boxed-clause baseline (the seed representation,
//! `bench::baseline`) and emits machine-readable JSON on stdout:
//! per-workload wall time, conflicts/sec, propagations/sec, the
//! arena's peak footprint and reduction counters, plus the
//! arena-vs-boxed throughput ratios. Future PRs compare against these
//! numbers to keep a perf trajectory.
//!
//! Usage: `cargo run --release -p bench --bin satperf`

use bench::baseline::{BoxedResult, BoxedSolver};
use satb::{Lit, SolveResult, Solver, Var};
use std::time::Instant;

/// One CNF workload, generated deterministically.
struct Workload {
    name: &'static str,
    clauses: Vec<Vec<Lit>>,
    nvars: usize,
    max_conflicts: u64,
}

use bench::pigeonhole_cnf as pigeonhole;

/// Deterministic xorshift for reproducible random 3-SAT.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_3sat(seed: u64, nvars: usize, nclauses: usize) -> Vec<Vec<Lit>> {
    let mut rng = XorShift(seed | 1);
    (0..nclauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    Lit::new(
                        Var::from_index(rng.below(nvars as u64) as usize),
                        rng.below(2) == 0,
                    )
                })
                .collect()
        })
        .collect()
}

fn workloads() -> Vec<Workload> {
    let (php_vars, php) = pigeonhole(8);
    let (php9_vars, php9) = pigeonhole(9);
    vec![
        Workload {
            name: "pigeonhole-8",
            clauses: php,
            nvars: php_vars,
            max_conflicts: 200_000,
        },
        Workload {
            name: "pigeonhole-9",
            clauses: php9,
            nvars: php9_vars,
            max_conflicts: 60_000,
        },
        Workload {
            name: "random-3sat-150",
            clauses: random_3sat(0xDA7E, 150, 630),
            nvars: 150,
            max_conflicts: 120_000,
        },
        Workload {
            name: "random-3sat-200",
            clauses: random_3sat(0x2016, 200, 850),
            nvars: 200,
            max_conflicts: 120_000,
        },
    ]
}

struct RunResult {
    time_s: f64,
    conflicts: u64,
    propagations: u64,
    verdict: &'static str,
    arena_peak_bytes: u64,
    reduces: u64,
    deleted: u64,
}

fn run_arena(w: &Workload) -> RunResult {
    let mut s = Solver::new();
    for _ in 0..w.nvars {
        s.new_var();
    }
    for c in &w.clauses {
        s.add_clause(c);
    }
    let start = Instant::now();
    let r = s.solve_limited(
        &[],
        satb::Limits {
            max_conflicts: Some(w.max_conflicts),
            ..satb::Limits::default()
        },
    );
    let time_s = start.elapsed().as_secs_f64();
    let st = s.stats();
    RunResult {
        time_s,
        conflicts: st.conflicts,
        propagations: st.propagations,
        verdict: match r {
            SolveResult::Sat => "sat",
            SolveResult::Unsat => "unsat",
            SolveResult::Unknown(_) => "unknown",
        },
        arena_peak_bytes: st.arena_peak_bytes,
        reduces: st.reduces,
        deleted: st.deleted,
    }
}

fn run_boxed(w: &Workload) -> RunResult {
    let mut s = BoxedSolver::new();
    for _ in 0..w.nvars {
        s.new_var();
    }
    for c in &w.clauses {
        s.add_clause(c);
    }
    let start = Instant::now();
    let r = s.solve(w.max_conflicts);
    let time_s = start.elapsed().as_secs_f64();
    let st = s.stats();
    RunResult {
        time_s,
        conflicts: st.conflicts,
        propagations: st.propagations,
        verdict: match r {
            BoxedResult::Sat => "sat",
            BoxedResult::Unsat => "unsat",
            BoxedResult::Unknown => "unknown",
        },
        arena_peak_bytes: 0,
        reduces: 0,
        deleted: 0,
    }
}

fn emit(name: &str, solver: &str, r: &RunResult, first: bool) {
    if !first {
        print!(",");
    }
    let cps = r.conflicts as f64 / r.time_s.max(1e-9);
    let pps = r.propagations as f64 / r.time_s.max(1e-9);
    print!(
        "\n    {{\"workload\":\"{name}\",\"solver\":\"{solver}\",\"verdict\":\"{}\",\
         \"time_s\":{:.4},\"conflicts\":{},\"propagations\":{},\
         \"conflicts_per_s\":{:.0},\"propagations_per_s\":{:.0},\
         \"arena_peak_bytes\":{},\"reduces\":{},\"deleted\":{}}}",
        r.verdict,
        r.time_s,
        r.conflicts,
        r.propagations,
        cps,
        pps,
        r.arena_peak_bytes,
        r.reduces,
        r.deleted
    );
}

fn main() {
    let ws = workloads();
    println!("{{");
    println!("  \"benchmark\": \"satperf\",");
    println!("  \"runs\": [");
    let mut ratios_props: Vec<(String, f64)> = Vec::new();
    let mut ratios_time: Vec<(String, f64)> = Vec::new();
    let mut first = true;
    for w in &ws {
        let arena = run_arena(w);
        emit(w.name, "arena", &arena, first);
        first = false;
        let boxed = run_boxed(w);
        emit(w.name, "boxed", &boxed, false);
        let arena_pps = arena.propagations as f64 / arena.time_s.max(1e-9);
        let boxed_pps = boxed.propagations as f64 / boxed.time_s.max(1e-9);
        ratios_props.push((w.name.to_string(), arena_pps / boxed_pps.max(1e-9)));
        ratios_time.push((w.name.to_string(), boxed.time_s / arena.time_s.max(1e-9)));
    }
    println!("\n  ],");
    print!("  \"propagation_throughput_ratio\": {{");
    for (i, (n, r)) in ratios_props.iter().enumerate() {
        print!("{}\"{}\":{:.3}", if i == 0 { "" } else { "," }, n, r);
    }
    println!("}},");
    print!("  \"wall_time_speedup\": {{");
    for (i, (n, r)) in ratios_time.iter().enumerate() {
        print!("{}\"{}\":{:.3}", if i == 0 { "" } else { "," }, n, r);
    }
    println!("}},");
    let geo = |v: &[(String, f64)]| -> f64 {
        (v.iter().map(|(_, r)| r.ln()).sum::<f64>() / v.len() as f64).exp()
    };
    println!(
        "  \"geomean_propagation_ratio\": {:.3},",
        geo(&ratios_props)
    );
    println!("  \"geomean_wall_time_speedup\": {:.3}", geo(&ratios_time));
    println!("}}");
}
