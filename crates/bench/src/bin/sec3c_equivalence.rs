//! Regenerates the paper's §III-C translation-validation evidence:
//! on unsafe benchmarks the bug manifests in the same clock cycle for
//! the hardware model and the software-netlist; on (easy) safe
//! benchmarks the property is k-inductive with the same k on both.
//!
//! Usage: `sec3c_equivalence [--timeout SECS]`

use engines::{Checker, Verdict};
use swan::Analyzer;

fn main() {
    let (timeout, benchmarks) = bench::parse_args(20);
    let b = bench::budget(timeout);
    println!("== Section III-C: Verilog vs software-netlist equivalence ==");
    println!(
        "{:<14}{:>10}{:>16}{:>16}{:>10}",
        "benchmark", "expected", "hw k / cycle", "sw k / cycle", "equal"
    );
    for bm in &benchmarks {
        let ts = bm.compile().expect("compiles");
        let prog = v2c::SwProgram::from_ts(ts.clone());
        let hw = engines::kind::KInduction::new(b.clone()).check(&ts);
        let sw = swan::cbmc::CbmcKind::new(b.clone()).check(&prog);
        let fmt = |o: &engines::CheckOutcome| match &o.outcome {
            Verdict::Safe => format!("k={}", o.stats.depth),
            Verdict::Unsafe(t) => format!("cycle={}", t.length()),
            Verdict::Unknown(_) => "-".to_string(),
        };
        // For unsafe designs the manifestation cycle must agree; for
        // safe designs solved by both, the inductive k must agree
        // (bit-level k-induction uses simple-path constraints, CBMC
        // does not, so only directly comparable rows are checked).
        let equal = match (&hw.outcome, &sw.outcome) {
            (Verdict::Unsafe(a), Verdict::Unsafe(c)) => a.length() == c.length(),
            (Verdict::Safe, Verdict::Safe) => hw.stats.depth == sw.stats.depth,
            _ => true, // not comparable under this budget
        };
        println!(
            "{:<14}{:>10}{:>16}{:>16}{:>10}",
            bm.name,
            format!("{:?}", bm.expected),
            fmt(&hw),
            fmt(&sw),
            if equal { "yes" } else { "NO" }
        );
    }
}
