//! Translation validation (§III-C of the paper): the generated C
//! software-netlist is compiled with a real C compiler and co-simulated
//! against the word-level reference simulator under random stimulus.
//! Assertion flags and the complete architectural state must agree
//! every clock cycle — "the bug is manifested in the same clock cycle
//! for both models".
//!
//! These tests are skipped when no C compiler is installed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlir::{Simulator, Sort, Value};
use std::io::Write as _;
use std::process::{Command, Stdio};

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .is_ok_and(|s| s.success())
}

/// Compiles `src` both ways and co-simulates `cycles` random cycles.
fn cosim(src: &str, top: &str, cycles: u64, seed: u64) {
    if !have_cc() {
        eprintln!("skipping cosim test: no C compiler");
        return;
    }
    let ts = vfront::compile(src, top).expect("verilog compiles");
    let modules = vfront::parse(src).expect("parses");
    let design = vfront::elaborate(&modules, top).expect("elaborates");
    let c_code = v2c::emit_c(&design, v2c::MainStyle::Cosim).expect("emits C");

    // Build the C binary in a temp dir.
    let dir = std::env::temp_dir().join(format!("v2c_cosim_{top}_{seed}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let c_path = dir.join("netlist.c");
    let bin_path = dir.join("netlist");
    std::fs::write(&c_path, &c_code).expect("write C");
    let status = Command::new("cc")
        .arg("-O1")
        .arg("-o")
        .arg(&bin_path)
        .arg(&c_path)
        .status()
        .expect("run cc");
    assert!(status.success(), "C compilation failed for:\n{c_code}");

    // Random stimulus.
    let mut rng = StdRng::seed_from_u64(seed);
    let input_sorts: Vec<Sort> = ts.inputs().iter().map(|&v| ts.pool().var_sort(v)).collect();
    let mut stim_lines = String::new();
    let mut stim_values: Vec<Vec<Value>> = Vec::new();
    for _ in 0..cycles {
        let mut vals = Vec::new();
        let mut words = Vec::new();
        for sort in &input_sorts {
            let w = sort.width();
            let v: u64 = rng.gen::<u64>() & rtlir::value::mask(w);
            vals.push(Value::bv(w, v));
            words.push(format!("{v:x}"));
        }
        stim_lines.push_str(&words.join(" "));
        stim_lines.push('\n');
        stim_values.push(vals);
    }
    if input_sorts.is_empty() {
        stim_lines = format!("{cycles}\n");
    }

    // Run the C model.
    let mut child = Command::new(&bin_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn netlist");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stim_lines.as_bytes())
        .expect("write stimulus");
    let out = child.wait_with_output().expect("run netlist");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let c_lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(c_lines.len() as u64, cycles, "one output line per cycle");

    // Reference simulation, comparing every cycle.
    let mut sim = Simulator::new(&ts);
    for (cycle, line) in c_lines.iter().enumerate() {
        let inputs = stim_values.get(cycle).cloned().unwrap_or_default();
        let ref_bads = sim.bad_states_with_inputs(&inputs);
        sim.step(&inputs);

        let mut parts = line.split_whitespace();
        let flags = parts.next().expect("bad flags field");
        if flags != "-" {
            let c_bads: Vec<bool> = flags.chars().map(|c| c == '1').collect();
            assert_eq!(
                c_bads, ref_bads,
                "cycle {cycle}: assertion flags diverge (C vs reference)"
            );
        }
        // State words in flat order; memories expand to 2^aw elements.
        let mut c_state: Vec<u64> = Vec::new();
        for p in parts {
            c_state.push(u64::from_str_radix(p, 16).expect("hex word"));
        }
        let mut ref_state: Vec<u64> = Vec::new();
        for st in ts.states() {
            match ts.pool().var_sort(st.var) {
                Sort::Bv(_) => ref_state.push(sim.state_value(st.var).bits()),
                Sort::Array { index_width, .. } => {
                    let arr = sim.state_value(st.var);
                    let arr = arr.as_array();
                    for i in 0..(1u64 << index_width) {
                        ref_state.push(arr.read(i));
                    }
                }
            }
        }
        assert_eq!(
            c_state, ref_state,
            "cycle {cycle}: architectural state diverges (C vs reference)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn counter_with_reset() {
    cosim(
        r#"
        module counter(input clk, input rst, input en, output wrap);
          reg [3:0] c;
          initial c = 0;
          always @(posedge clk) begin
            if (rst) c <= 0;
            else if (en) c <= c + 1;
          end
          assign wrap = (c == 4'hF);
          assert property (c != 4'd13);
        endmodule
        "#,
        "counter",
        200,
        0xC0511,
    );
}

#[test]
fn hierarchical_accumulators() {
    cosim(
        r#"
        module acc(input clk, input [3:0] a, output [3:0] y);
          reg [3:0] r;
          initial r = 0;
          always @(posedge clk) r <= r + a;
          assign y = r;
          assert property (r != 4'd11);
        endmodule
        module top(input clk, input [3:0] x);
          wire [3:0] s1;
          wire [3:0] s2;
          acc u1 (.clk(clk), .a(x), .y(s1));
          acc u2 (.clk(clk), .a(s1), .y(s2));
          assert property (s2 != 4'd7);
        endmodule
        "#,
        "top",
        300,
        0xACC5,
    );
}

#[test]
fn memory_write_read() {
    cosim(
        r#"
        module m(input clk, input we, input [2:0] wa, input [2:0] ra,
                 input [7:0] d, output [7:0] q);
          reg [7:0] mem [0:7];
          reg [7:0] last;
          initial last = 0;
          assign q = mem[ra];
          always @(posedge clk) begin
            if (we) mem[wa] <= d;
            last <= q;
          end
          assert property (last != 8'hEE);
        endmodule
        "#,
        "m",
        400,
        0x3E3,
    );
}

#[test]
fn comb_process_case_and_selects() {
    cosim(
        r#"
        module alu(input clk, input [1:0] op, input [7:0] a, input [7:0] b);
          reg [7:0] r;
          reg [7:0] res;
          initial r = 0;
          always @* begin
            res = 0;
            case (op)
              2'd0: res = a + b;
              2'd1: res = a - b;
              2'd2: res = a & b;
              2'd3: res = {a[3:0], b[7:4]};
            endcase
          end
          always @(posedge clk) r <= res;
          assert property (r != 8'h5A);
        endmodule
        "#,
        "alu",
        400,
        0xA1B2,
    );
}

#[test]
fn shifts_mul_div_operators() {
    cosim(
        r#"
        module ops(input clk, input [7:0] a, input [7:0] b);
          reg [7:0] r1; reg [7:0] r2; reg [7:0] r3; reg [7:0] r4;
          initial begin r1 = 0; r2 = 0; r3 = 0; r4 = 0; end
          always @(posedge clk) begin
            r1 <= a << b[2:0];
            r2 <= a >> b[3:0];
            r3 <= a * b;
            r4 <= a / (b & 8'h0F);
          end
          assert property (r3 != 8'hF0);
        endmodule
        "#,
        "ops",
        400,
        0x5417,
    );
}

#[test]
fn unsafe_bug_fires_in_same_cycle_as_word_level() {
    // A design with a deterministic bug at a known cycle: both models
    // must flag it at exactly that cycle (the paper's §III-C check).
    let src = r#"
        module buggy(input clk);
          reg [6:0] t;
          initial t = 0;
          always @(posedge clk) t <= t + 1;
          assert property (t != 7'd64);
        endmodule
    "#;
    // Reference: cycle of first violation.
    let ts = vfront::compile(src, "buggy").expect("compiles");
    let mut sim = Simulator::new(&ts);
    let ref_cycle = sim.run_until_bad(200, |_| vec![]).expect("bug exists");
    assert_eq!(ref_cycle, 64);
    // The cosim checks equality of the bad flags on every cycle, which
    // subsumes "same clock cycle"; run it.
    cosim(src, "buggy", 100, 1);
}
