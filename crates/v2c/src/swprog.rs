//! The in-memory software-netlist program.

use rtlir::{Simulator, TransitionSystem, Value};

/// A software-netlist: the program the software analyzers consume.
///
/// Semantically one loop:
///
/// ```c
/// state s = init();
/// while (1) {
///     inputs = nondet();
///     assume(constraints(s, inputs));
///     assert(!bad_i(s, inputs));   // for every property
///     s = next(s, inputs);         // two-phase: read then commit
/// }
/// ```
///
/// The underlying [`TransitionSystem`] carries the init/next/bad
/// expressions; `locals` preserves named intermediate computations of
/// the program text (combinational signals), which program-level
/// analyzers use as predicate-discovery hints.
#[derive(Clone, Debug)]
pub struct SwProgram {
    /// The step semantics.
    pub ts: TransitionSystem,
    /// Named intermediate expressions `(name, expr)` in program order.
    pub locals: Vec<(String, rtlir::ExprId)>,
}

impl SwProgram {
    /// Wraps a transition system as a software-netlist (the direct
    /// translation path, bypassing C text).
    pub fn from_ts(ts: TransitionSystem) -> SwProgram {
        SwProgram {
            ts,
            locals: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        self.ts.name()
    }

    /// Runs the program for up to `max_iterations` loop iterations with
    /// the given stimulus, returning the first iteration in which an
    /// assertion fails. This is the reference execution used by the
    /// translation-validation tests (§III-C: "the bug is manifested in
    /// the same clock cycle for both models").
    pub fn run_until_assert(
        &self,
        max_iterations: u64,
        stimulus: impl FnMut(u64) -> Vec<Value>,
    ) -> Option<u64> {
        let mut sim = Simulator::new(&self.ts);
        sim.run_until_bad(max_iterations, stimulus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::Sort;

    #[test]
    fn wraps_and_runs() {
        let mut ts = TransitionSystem::new("p");
        let s = ts.add_state("s", Sort::Bv(4));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(4, 1);
        let nx = ts.pool_mut().add(sv, one);
        let z = ts.pool_mut().constv(4, 0);
        ts.set_init(s, z);
        ts.set_next(s, nx);
        let three = ts.pool_mut().constv(4, 3);
        let bad = ts.pool_mut().eq(sv, three);
        ts.add_bad(bad, "hits 3");
        let prog = SwProgram::from_ts(ts);
        assert_eq!(prog.name(), "p");
        assert_eq!(prog.run_until_assert(10, |_| vec![]), Some(3));
    }
}
