//! v2c — Verilog RTL to software-netlist synthesis.
//!
//! The core contribution of the DATE 2016 paper: given elaborated
//! Verilog RTL, produce a **software-netlist** — a cycle-accurate,
//! bit-precise, word-level ANSI-C program whose every execution of the
//! top-level step function corresponds to one clock cycle of the
//! hardware.
//!
//! Two coupled backends are provided:
//!
//! * [`emit_c`] renders the hierarchical C text (one struct + one
//!   `<module>_step` function per module, exactly the structure the
//!   paper describes: "the software-netlist model retains the module
//!   hierarchy of Verilog RTL"). The SV-COMP harness style uses
//!   `__VERIFIER_nondet_*` inputs and `assert`; a co-simulation
//!   harness style reads stimulus from stdin and prints the
//!   architectural state every cycle, which the test-suite uses to
//!   validate §III-C's translation-equivalence claim against the
//!   word-level simulator (via an actual C compiler).
//! * [`SwProgram`] is the in-memory software-netlist the `swan`
//!   software analyzers consume; [`software_netlist`] builds it
//!   directly, and the `cfront` crate recovers it from emitted C text.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), vfront::VerilogError> {
//! let src = "module top(input clk, input i);
//!              reg r; initial r = 0;
//!              always @(posedge clk) r <= i;
//!              assert property (!(r && i));
//!            endmodule";
//! let modules = vfront::parse(src)?;
//! let design = vfront::elaborate(&modules, "top")?;
//! let c = v2c::emit_c(&design, v2c::MainStyle::Verifier)?;
//! assert!(c.contains("top_state"));
//! assert!(c.contains("__VERIFIER_nondet"));
//! let prog = v2c::software_netlist(src, "top")?;
//! assert_eq!(prog.ts.states().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod emit;
pub mod swprog;

pub use emit::{emit_c, MainStyle};
pub use swprog::SwProgram;

use vfront::VerilogError;

/// Builds the in-memory software-netlist for a Verilog source (the
/// "direct" path: parse → elaborate → synthesize → wrap).
///
/// # Errors
///
/// Propagates any frontend error.
pub fn software_netlist(src: &str, top: &str) -> Result<SwProgram, VerilogError> {
    let ts = vfront::compile(src, top)?;
    Ok(SwProgram::from_ts(ts))
}
