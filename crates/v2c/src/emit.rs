//! Hierarchical ANSI-C emission of the software-netlist.
//!
//! Every elaborated module becomes a C struct (its registers and
//! memories plus nested child structs) and a `<module>_step` function:
//! combinational logic in dependency order, child instance calls at
//! their scheduled positions (the inter-modular analysis of §III-B),
//! assertions, then the two-phase sequential commit. Each call of the
//! top-level step function is one clock cycle.
//!
//! All signals are stored as `uint64_t` with explicit masking after
//! every operation — a deliberately simple, bit-precise mapping (the
//! original v2c used native C integer types; the uniform mapping keeps
//! the translation obviously width-correct, which §III-C values over
//! optimization).

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use vfront::ast::{BinaryOp, Dir, Expr, LValue, NetKind, Stmt, UnaryOp};
use vfront::elab::{ceil_log2, const_eval, Design, ESignal, ElabModule};
use vfront::synth::{expr_reads, lvalue_targets, stmt_reads, stmt_targets};
use vfront::VerilogError;

/// Which `main` to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MainStyle {
    /// SV-COMP harness: `__VERIFIER_nondet_*` inputs, `assert`
    /// properties, nondeterministic uninitialized registers. This is
    /// the form the software analyzers consume.
    Verifier,
    /// Co-simulation harness: inputs from stdin (hex per cycle),
    /// per-cycle dump of assertion flags and all architectural state;
    /// uninitialized registers start at zero. Used for translation
    /// validation against the word-level simulator.
    Cosim,
}

/// Emits the software-netlist C program for an elaborated design.
///
/// # Errors
///
/// Reports the same restrictions as synthesis (latches, loops,
/// multiple clocks) plus emitter-specific limits (instance outputs
/// must connect to whole signals).
pub fn emit_c(design: &Design, style: MainStyle) -> Result<String, VerilogError> {
    let mut e = Emitter::new(design, style)?;
    e.emit()?;
    Ok(e.out)
}

fn mask(w: u32) -> u64 {
    rtlir::value::mask(w)
}

fn cmask(w: u32) -> String {
    format!("{:#x}ULL", mask(w))
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Per-module facts computed bottom-up.
#[derive(Clone, Debug, Default)]
struct ModInfo {
    cname: String,
    /// Ports that carry the clock (skipped as function arguments).
    clock_ports: HashSet<String>,
    /// Total number of assertions in this module's subtree.
    assert_total: usize,
    /// Number of the module's own assertions.
    assert_own: usize,
}

struct Emitter<'d> {
    design: &'d Design,
    style: MainStyle,
    info: Vec<ModInfo>,
    out: String,
}

impl<'d> Emitter<'d> {
    fn new(design: &'d Design, style: MainStyle) -> Result<Emitter<'d>, VerilogError> {
        // Compute per-module info bottom-up (children precede parents
        // in `design.modules`).
        let mut info: Vec<ModInfo> = vec![ModInfo::default(); design.modules.len()];
        let mut used_names: HashSet<String> = HashSet::new();
        for (idx, m) in design.modules.iter().enumerate() {
            let mut cname = sanitize(&m.name);
            while used_names.contains(&cname) {
                cname.push('_');
            }
            used_names.insert(cname.clone());

            let mut clock_ports: HashSet<String> = HashSet::new();
            for (clk, _) in m
                .processes
                .iter()
                .filter_map(|(c, s)| c.as_ref().map(|c| (c.clone(), s)))
            {
                clock_ports.insert(clk);
            }
            // Ports feeding child clock ports are clocks too.
            for inst in &m.instances {
                let child = &design.modules[inst.module];
                for (pi, conn) in &inst.conns {
                    let pname = &child.signals[*pi].name;
                    if info[inst.module].clock_ports.contains(pname) {
                        match conn {
                            Expr::Ident(n) => {
                                clock_ports.insert(n.clone());
                            }
                            _ => {
                                return Err(VerilogError::general(format!(
                                    "clock port '{pname}' of instance '{}' must be \
                                     connected to a plain signal",
                                    inst.name
                                )))
                            }
                        }
                    }
                }
            }
            // Only ports can be clocks at module boundaries.
            for c in &clock_ports {
                let sig = m.signal(c).map(|i| &m.signals[i]);
                match sig {
                    Some(s) if s.port == Some(Dir::Input) && s.width == 1 => {}
                    _ => {
                        return Err(VerilogError::general(format!(
                            "clock '{c}' in module '{}' must be a 1-bit input port",
                            m.name
                        )))
                    }
                }
            }
            let own = m.asserts.len();
            let mut total = own;
            for inst in &m.instances {
                total += info[inst.module].assert_total;
            }
            info[idx] = ModInfo {
                cname,
                clock_ports,
                assert_total: total,
                assert_own: own,
            };
        }
        Ok(Emitter {
            design,
            style,
            info,
            out: String::new(),
        })
    }

    fn top(&self) -> &ElabModule {
        &self.design.modules[self.design.top]
    }

    fn emit(&mut self) -> Result<(), VerilogError> {
        let cosim = self.style == MainStyle::Cosim;
        let _ = writeln!(
            self.out,
            "/* software-netlist generated by v2c (DATE 2016 reproduction) */"
        );
        let _ = writeln!(self.out, "#include <assert.h>");
        let _ = writeln!(self.out, "#include <stdint.h>");
        if cosim {
            let _ = writeln!(self.out, "#include <stdio.h>");
        }
        if self.style == MainStyle::Verifier {
            let _ = writeln!(
                self.out,
                "extern unsigned long long __VERIFIER_nondet_ulonglong(void);"
            );
            let _ = writeln!(self.out, "extern void __VERIFIER_assume(int cond);");
        }
        if cosim {
            let nb = self.info[self.design.top].assert_total.max(1);
            let _ = writeln!(self.out, "static int __bad[{nb}];");
        }
        let _ = writeln!(self.out);

        for idx in 0..self.design.modules.len() {
            self.emit_struct(idx)?;
        }
        let _ = writeln!(self.out);
        for idx in 0..self.design.modules.len() {
            self.emit_init(idx)?;
            self.emit_step(idx)?;
            if cosim {
                self.emit_dump(idx)?;
            }
        }
        self.emit_main()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structs, init, dump
    // ------------------------------------------------------------------

    /// Registers of a module, in declaration order.
    fn regs(m: &ElabModule) -> Vec<&ESignal> {
        // A signal is architectural state iff it is a reg assigned in a
        // clocked process, or a reg never assigned at all (frozen).
        let mut clocked_targets: HashSet<String> = HashSet::new();
        for (c, body) in &m.processes {
            if c.is_some() {
                let mut t = Vec::new();
                stmt_targets(body, &mut t);
                clocked_targets.extend(t);
            }
        }
        let mut comb_targets: HashSet<String> = HashSet::new();
        for (c, body) in &m.processes {
            if c.is_none() {
                let mut t = Vec::new();
                stmt_targets(body, &mut t);
                comb_targets.extend(t);
            }
        }
        for (lv, _) in &m.assigns {
            let mut t = Vec::new();
            lvalue_targets(lv, &mut t);
            comb_targets.extend(t);
        }
        m.signals
            .iter()
            .filter(|s| {
                s.kind == NetKind::Reg
                    && !comb_targets.contains(&s.name)
                    && (clocked_targets.contains(&s.name) || s.port.is_none())
                    && !(s.port == Some(Dir::Input))
            })
            .filter(|s| {
                clocked_targets.contains(&s.name) || {
                    // frozen reg: not driven anywhere
                    !comb_targets.contains(&s.name)
                }
            })
            .collect()
    }

    fn emit_struct(&mut self, idx: usize) -> Result<(), VerilogError> {
        let m = &self.design.modules[idx];
        let cname = self.info[idx].cname.clone();
        let _ = writeln!(self.out, "typedef struct {cname}_state {{");
        for sig in Self::regs(m) {
            match sig.memory {
                Some((_, aw)) => {
                    let _ = writeln!(
                        self.out,
                        "  uint64_t {}[{}]; /* {} x {} bits */",
                        sanitize(&sig.name),
                        1u64 << aw,
                        1u64 << aw,
                        sig.width
                    );
                }
                None => {
                    let _ = writeln!(
                        self.out,
                        "  uint64_t {}; /* {} bits */",
                        sanitize(&sig.name),
                        sig.width
                    );
                }
            }
        }
        for inst in &m.instances {
            let child = self.info[inst.module].cname.clone();
            let _ = writeln!(self.out, "  struct {child}_state {};", sanitize(&inst.name));
        }
        let _ = writeln!(self.out, "}} {cname}_state;");
        Ok(())
    }

    fn emit_init(&mut self, idx: usize) -> Result<(), VerilogError> {
        let m = &self.design.modules[idx];
        let cname = self.info[idx].cname.clone();
        let _ = writeln!(self.out, "static void {cname}_init({cname}_state *s) {{");

        // Interpret the module's initial blocks.
        let mut scalars: HashMap<String, u64> = HashMap::new();
        let mut mems: HashMap<String, HashMap<u64, u64>> = HashMap::new();
        for ini in &m.initials {
            interp_initial(m, ini, &mut scalars, &mut mems)?;
        }
        for sig in &m.signals {
            if let Some(v) = sig.init {
                scalars.entry(sig.name.clone()).or_insert(v);
            }
        }
        for sig in Self::regs(m) {
            let n = sanitize(&sig.name);
            match sig.memory {
                None => {
                    if let Some(&v) = scalars.get(&sig.name) {
                        let _ = writeln!(self.out, "  s->{n} = {:#x}ULL;", v & mask(sig.width));
                    } else if self.style == MainStyle::Verifier {
                        let _ = writeln!(
                            self.out,
                            "  s->{n} = __VERIFIER_nondet_ulonglong() & {};",
                            cmask(sig.width)
                        );
                    } else {
                        let _ = writeln!(self.out, "  s->{n} = 0ULL;");
                    }
                }
                Some((_, aw)) => {
                    let total = 1u64 << aw;
                    match mems.get(&sig.name) {
                        Some(writes) => {
                            let _ = writeln!(
                                self.out,
                                "  {{ int __i; for (__i = 0; __i < {total}; __i++) \
                                 s->{n}[__i] = 0ULL; }}"
                            );
                            let mut keys: Vec<u64> = writes.keys().copied().collect();
                            keys.sort_unstable();
                            for k in keys {
                                let _ = writeln!(
                                    self.out,
                                    "  s->{n}[{k}] = {:#x}ULL;",
                                    writes[&k] & mask(sig.width)
                                );
                            }
                        }
                        None => {
                            if self.style == MainStyle::Verifier {
                                let _ = writeln!(
                                    self.out,
                                    "  {{ int __i; for (__i = 0; __i < {total}; __i++) \
                                     s->{n}[__i] = __VERIFIER_nondet_ulonglong() & {}; }}",
                                    cmask(sig.width)
                                );
                            } else {
                                let _ = writeln!(
                                    self.out,
                                    "  {{ int __i; for (__i = 0; __i < {total}; __i++) \
                                     s->{n}[__i] = 0ULL; }}"
                                );
                            }
                        }
                    }
                }
            }
        }
        for inst in &m.instances {
            let child = self.info[inst.module].cname.clone();
            let _ = writeln!(self.out, "  {child}_init(&s->{});", sanitize(&inst.name));
        }
        let _ = writeln!(self.out, "}}");
        Ok(())
    }

    fn emit_dump(&mut self, idx: usize) -> Result<(), VerilogError> {
        let m = &self.design.modules[idx];
        let cname = self.info[idx].cname.clone();
        let _ = writeln!(
            self.out,
            "static void {cname}_dump(const {cname}_state *s) {{"
        );
        for sig in Self::regs(m) {
            let n = sanitize(&sig.name);
            match sig.memory {
                None => {
                    let _ = writeln!(self.out, "  printf(\" %llx\", (unsigned long long)s->{n});");
                }
                Some((_, aw)) => {
                    let total = 1u64 << aw;
                    let _ = writeln!(
                        self.out,
                        "  {{ int __i; for (__i = 0; __i < {total}; __i++) \
                         printf(\" %llx\", (unsigned long long)s->{n}[__i]); }}"
                    );
                }
            }
        }
        for inst in &m.instances {
            let child = self.info[inst.module].cname.clone();
            let _ = writeln!(self.out, "  {child}_dump(&s->{});", sanitize(&inst.name));
        }
        let _ = writeln!(self.out, "}}");
        Ok(())
    }

    // ------------------------------------------------------------------
    // Step function
    // ------------------------------------------------------------------

    fn emit_step(&mut self, idx: usize) -> Result<(), VerilogError> {
        let m = self.design.modules[idx].clone();
        let inf = self.info[idx].clone();
        let cname = inf.cname.clone();

        // Signature: inputs by value, outputs by pointer, clock skipped.
        let mut args = vec![format!("{cname}_state *s")];
        let mut in_ports = Vec::new();
        let mut out_ports = Vec::new();
        for sig in m.signals.iter().filter(|s| s.port.is_some()) {
            if inf.clock_ports.contains(&sig.name) {
                continue;
            }
            match sig.port {
                Some(Dir::Input) => {
                    args.push(format!("uint64_t {}", sanitize(&sig.name)));
                    in_ports.push(sig.name.clone());
                }
                Some(Dir::Output) => {
                    args.push(format!("uint64_t *o_{}", sanitize(&sig.name)));
                    out_ports.push(sig.name.clone());
                }
                None => {}
            }
        }
        if self.style == MainStyle::Cosim && inf.assert_total > 0 {
            args.push("int __bad_base".to_string());
        }
        let mut body = FnBody::new(&m, &inf, self.style, self.design, &self.info);
        body.emit_body()?;
        let _ = writeln!(self.out, "static void {cname}_step({}) {{", args.join(", "));
        self.out.push_str(&body.text);
        // Outputs.
        for p in &out_ports {
            let v = body.value_of(p)?;
            let _ = writeln!(self.out, "  *o_{} = {v};", sanitize(p));
        }
        self.out.push_str(&body.tail);
        let _ = writeln!(self.out, "}}");
        Ok(())
    }

    // ------------------------------------------------------------------
    // main
    // ------------------------------------------------------------------

    fn emit_main(&mut self) -> Result<(), VerilogError> {
        let top = self.top().clone();
        let tidx = self.design.top;
        let inf = self.info[tidx].clone();
        let cname = inf.cname.clone();
        let _ = writeln!(self.out, "int main(void) {{");
        let _ = writeln!(self.out, "  {cname}_state s;");
        let _ = writeln!(self.out, "  {cname}_init(&s);");
        let ins: Vec<&ESignal> = top
            .signals
            .iter()
            .filter(|x| x.port == Some(Dir::Input) && !inf.clock_ports.contains(&x.name))
            .collect();
        let outs: Vec<&ESignal> = top
            .signals
            .iter()
            .filter(|x| x.port == Some(Dir::Output))
            .collect();
        for o in &outs {
            let _ = writeln!(self.out, "  uint64_t o_{};", sanitize(&o.name));
        }
        match self.style {
            MainStyle::Verifier => {
                let _ = writeln!(self.out, "  while (1) {{");
                for i in &ins {
                    let _ = writeln!(
                        self.out,
                        "    uint64_t {} = __VERIFIER_nondet_ulonglong() & {};",
                        sanitize(&i.name),
                        cmask(i.width)
                    );
                }
                let mut call_args = vec!["&s".to_string()];
                call_args.extend(ins.iter().map(|i| sanitize(&i.name)));
                call_args.extend(outs.iter().map(|o| format!("&o_{}", sanitize(&o.name))));
                let _ = writeln!(self.out, "    {cname}_step({});", call_args.join(", "));
                let _ = writeln!(self.out, "  }}");
            }
            MainStyle::Cosim => {
                for i in &ins {
                    let _ = writeln!(self.out, "  unsigned long long __in_{};", sanitize(&i.name));
                }
                let fmt = vec!["%llx"; ins.len()].join(" ");
                let scan_args: Vec<String> = ins
                    .iter()
                    .map(|i| format!("&__in_{}", sanitize(&i.name)))
                    .collect();
                if ins.is_empty() {
                    let _ = writeln!(self.out, "  int __cycles;");
                    let _ = writeln!(self.out, "  if (scanf(\"%d\", &__cycles) != 1) return 1;");
                    let _ = writeln!(self.out, "  while (__cycles-- > 0) {{");
                } else {
                    let _ = writeln!(
                        self.out,
                        "  while (scanf(\"{fmt}\", {}) == {}) {{",
                        scan_args.join(", "),
                        ins.len()
                    );
                }
                let nb = inf.assert_total;
                if nb > 0 {
                    let _ = writeln!(
                        self.out,
                        "    {{ int __k; for (__k = 0; __k < {nb}; __k++) __bad[__k] = 0; }}"
                    );
                }
                let mut call_args = vec!["&s".to_string()];
                call_args.extend(
                    ins.iter()
                        .map(|i| format!("(__in_{} & {})", sanitize(&i.name), cmask(i.width))),
                );
                call_args.extend(outs.iter().map(|o| format!("&o_{}", sanitize(&o.name))));
                if nb > 0 {
                    call_args.push("0".to_string());
                }
                let _ = writeln!(self.out, "    {cname}_step({});", call_args.join(", "));
                if nb > 0 {
                    let _ = writeln!(
                        self.out,
                        "    {{ int __k; for (__k = 0; __k < {nb}; __k++) \
                         printf(\"%d\", __bad[__k]); }}"
                    );
                } else {
                    let _ = writeln!(self.out, "    printf(\"-\");");
                }
                let _ = writeln!(self.out, "    {cname}_dump(&s);");
                let _ = writeln!(self.out, "    printf(\"\\n\");");
                let _ = writeln!(self.out, "    fflush(stdout);");
                let _ = writeln!(self.out, "  }}");
            }
        }
        let _ = writeln!(self.out, "  return 0;");
        let _ = writeln!(self.out, "}}");
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Per-function body emission
// ----------------------------------------------------------------------

/// Where a signal's current value lives in the generated C.
#[derive(Clone, Debug, PartialEq)]
enum Loc {
    StructReg,  // s-><name>
    StructMem,  // s-><name>[i]
    InputParam, // <name>
    CombLocal,  // <name> (uint64_t local)
    NextTemp,   // __next_<name> (inside clocked commit)
    CurTemp,    // __cur_<name> (blocking reg shadow)
}

struct FnBody<'a> {
    m: &'a ElabModule,
    info: &'a ModInfo,
    style: MainStyle,
    design: &'a Design,
    all_info: &'a [ModInfo],
    text: String,
    /// Commit statements, emitted after outputs.
    tail: String,
    loc: HashMap<String, Loc>,
    tmp: u32,
    indent: usize,
}

impl<'a> FnBody<'a> {
    fn new(
        m: &'a ElabModule,
        info: &'a ModInfo,
        style: MainStyle,
        design: &'a Design,
        all_info: &'a [ModInfo],
    ) -> FnBody<'a> {
        FnBody {
            m,
            info,
            style,
            design,
            all_info,
            text: String::new(),
            tail: String::new(),
            loc: HashMap::new(),
            tmp: 0,
            indent: 1,
        }
    }

    fn err(msg: impl Into<String>) -> VerilogError {
        VerilogError::general(msg)
    }

    fn sig(&self, name: &str) -> Result<&ESignal, VerilogError> {
        self.m
            .signal(name)
            .map(|i| &self.m.signals[i])
            .ok_or_else(|| Self::err(format!("unknown signal '{name}'")))
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.text.push_str("  ");
        }
        self.text.push_str(s);
        self.text.push('\n');
    }

    fn fresh(&mut self) -> String {
        self.tmp += 1;
        format!("__t{}", self.tmp)
    }

    /// C lvalue/rvalue text of a signal's *current* value.
    fn value_of(&self, name: &str) -> Result<String, VerilogError> {
        let n = sanitize(name);
        match self.loc.get(name) {
            Some(Loc::StructReg) => Ok(format!("s->{n}")),
            Some(Loc::InputParam) => Ok(n),
            Some(Loc::CombLocal) => Ok(n),
            Some(Loc::CurTemp) => Ok(format!("__cur_{n}")),
            Some(Loc::NextTemp) => Ok(format!("s->{n}")), // reads see old value
            Some(Loc::StructMem) => {
                Err(Self::err(format!("memory '{name}' used without an index")))
            }
            None => Err(Self::err(format!(
                "'{name}' read before it is computed (combinational ordering)"
            ))),
        }
    }

    // ---- expression emission (mirrors the synthesizer's width rules) ----

    fn self_width(&self, e: &Expr) -> Result<u32, VerilogError> {
        Ok(match e {
            Expr::Ident(n) => self.sig(n)?.width,
            Expr::Number { size, value } => size
                .unwrap_or_else(|| (64 - value.leading_zeros()).max(1))
                .min(64),
            Expr::Unary(op, a) => match op {
                UnaryOp::Not | UnaryOp::Neg | UnaryOp::Plus => self.self_width(a)?,
                _ => 1,
            },
            Expr::Binary(op, a, b) => match op {
                BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::Div
                | BinaryOp::Mod
                | BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::Xnor => self.self_width(a)?.max(self.self_width(b)?),
                BinaryOp::Shl | BinaryOp::Shr | BinaryOp::Sshl | BinaryOp::Sshr => {
                    self.self_width(a)?
                }
                _ => 1,
            },
            Expr::Ternary(_, a, b) => self.self_width(a)?.max(self.self_width(b)?),
            Expr::Concat(parts) => {
                let mut w = 0;
                for p in parts {
                    w += self.self_width(p)?;
                }
                w
            }
            Expr::Repl(n, parts) => {
                let c = const_eval(n, &HashMap::new()).map_err(Self::err)? as u32;
                let mut w = 0;
                for p in parts {
                    w += self.self_width(p)?;
                }
                c * w
            }
            Expr::Index(n, _) => {
                let s = self.sig(n)?;
                if s.memory.is_some() {
                    s.width
                } else {
                    1
                }
            }
            Expr::Part(_, hi, lo) => {
                let h = const_eval(hi, &HashMap::new()).map_err(Self::err)?;
                let l = const_eval(lo, &HashMap::new()).map_err(Self::err)?;
                (h.saturating_sub(l) + 1) as u32
            }
        })
    }

    /// Emits `e` as a C expression of exactly `width` bits (masked).
    fn expr(&mut self, e: &Expr, width: u32) -> Result<String, VerilogError> {
        let m = cmask(width);
        Ok(match e {
            Expr::Number { value, .. } => format!("{:#x}ULL", value & mask(width)),
            Expr::Ident(n) => {
                let v = self.value_of(n)?;
                let sw = self.sig(n)?.width;
                if sw <= width {
                    v
                } else {
                    format!("({v} & {m})")
                }
            }
            Expr::Unary(op, a) => match op {
                UnaryOp::Not => {
                    let av = self.expr(a, width)?;
                    format!("(~{av} & {m})")
                }
                UnaryOp::Neg => {
                    let av = self.expr(a, width)?;
                    format!("((0ULL - {av}) & {m})")
                }
                UnaryOp::Plus => self.expr(a, width)?,
                UnaryOp::LogicNot => {
                    let w = self.self_width(a)?;
                    let av = self.expr(a, w)?;
                    format!("({av} == 0ULL ? 1ULL : 0ULL)")
                }
                UnaryOp::RedAnd => {
                    let w = self.self_width(a)?;
                    let av = self.expr(a, w)?;
                    format!("({av} == {} ? 1ULL : 0ULL)", cmask(w))
                }
                UnaryOp::RedOr => {
                    let w = self.self_width(a)?;
                    let av = self.expr(a, w)?;
                    format!("({av} != 0ULL ? 1ULL : 0ULL)")
                }
                UnaryOp::RedXor => {
                    let w = self.self_width(a)?;
                    let av = self.expr(a, w)?;
                    format!("((uint64_t)__builtin_parityll({av}))")
                }
                UnaryOp::RedNand => {
                    let w = self.self_width(a)?;
                    let av = self.expr(a, w)?;
                    format!("({av} == {} ? 0ULL : 1ULL)", cmask(w))
                }
                UnaryOp::RedNor => {
                    let w = self.self_width(a)?;
                    let av = self.expr(a, w)?;
                    format!("({av} != 0ULL ? 0ULL : 1ULL)")
                }
                UnaryOp::RedXnor => {
                    let w = self.self_width(a)?;
                    let av = self.expr(a, w)?;
                    format!("((uint64_t)(__builtin_parityll({av}) ^ 1))")
                }
            },
            Expr::Binary(op, a, b) => {
                use BinaryOp as B;
                match op {
                    B::Add
                    | B::Sub
                    | B::Mul
                    | B::Div
                    | B::Mod
                    | B::And
                    | B::Or
                    | B::Xor
                    | B::Xnor => {
                        let w = width.max(self.self_width(a)?).max(self.self_width(b)?);
                        let av = self.expr(a, w)?;
                        let bv = self.expr(b, w)?;
                        let full = match op {
                            B::Add => format!("(({av} + {bv}) & {})", cmask(w)),
                            B::Sub => format!("(({av} - {bv}) & {})", cmask(w)),
                            B::Mul => format!("(({av} * {bv}) & {})", cmask(w)),
                            B::Div => {
                                let bt = self.atom(&bv);
                                format!("({bt} == 0ULL ? {} : ({av} / {bt}))", cmask(w))
                            }
                            B::Mod => {
                                let at = self.atom(&av);
                                let bt = self.atom(&bv);
                                format!("({bt} == 0ULL ? {at} : ({at} % {bt}))")
                            }
                            B::And => format!("({av} & {bv})"),
                            B::Or => format!("({av} | {bv})"),
                            B::Xor => format!("({av} ^ {bv})"),
                            B::Xnor => format!("(~({av} ^ {bv}) & {})", cmask(w)),
                            _ => unreachable!(),
                        };
                        if w == width {
                            full
                        } else {
                            format!("({full} & {m})")
                        }
                    }
                    B::Shl | B::Sshl => {
                        let w = width.max(self.self_width(a)?);
                        let av = self.expr(a, w)?;
                        let bw = self.self_width(b)?;
                        let bv = self.expr(b, bw)?;
                        let bt = self.atom(&bv);
                        let full =
                            format!("({bt} >= {w}ULL ? 0ULL : (({av} << {bt}) & {}))", cmask(w));
                        if w == width {
                            full
                        } else {
                            format!("({full} & {m})")
                        }
                    }
                    B::Shr => {
                        let w = width.max(self.self_width(a)?);
                        let av = self.expr(a, w)?;
                        let bw = self.self_width(b)?;
                        let bv = self.expr(b, bw)?;
                        let bt = self.atom(&bv);
                        let full = format!("({bt} >= {w}ULL ? 0ULL : ({av} >> {bt}))");
                        if w == width {
                            full
                        } else {
                            format!("({full} & {m})")
                        }
                    }
                    B::Sshr => {
                        let w = width.max(self.self_width(a)?);
                        let av = self.expr(a, w)?;
                        let at = self.atom(&av);
                        let bw = self.self_width(b)?;
                        let bv = self.expr(b, bw)?;
                        let bt = self.atom(&bv);
                        let sign = format!("(({at} >> {}ULL) & 1ULL)", w - 1);
                        let st = self.atom(&format!("({sign} ? {} : 0ULL)", cmask(w)));
                        // b == 0 -> a; b >= w -> sign mask; else shifted
                        // with sign fill.
                        let full = format!(
                            "({bt} == 0ULL ? {at} : ({bt} >= {w}ULL ? {st} : \
                             ((({at} >> {bt}) | (({st} << ({w}ULL - {bt})) & {mw})) & {mw})))",
                            mw = cmask(w)
                        );
                        if w == width {
                            full
                        } else {
                            format!("({full} & {m})")
                        }
                    }
                    B::Eq | B::Ne | B::Lt | B::Le | B::Gt | B::Ge => {
                        let w = self.self_width(a)?.max(self.self_width(b)?);
                        let av = self.expr(a, w)?;
                        let bv = self.expr(b, w)?;
                        let cop = match op {
                            B::Eq => "==",
                            B::Ne => "!=",
                            B::Lt => "<",
                            B::Le => "<=",
                            B::Gt => ">",
                            B::Ge => ">=",
                            _ => unreachable!(),
                        };
                        format!("({av} {cop} {bv} ? 1ULL : 0ULL)")
                    }
                    B::LogicAnd | B::LogicOr => {
                        let aw = self.self_width(a)?;
                        let bw = self.self_width(b)?;
                        let av = self.expr(a, aw)?;
                        let bv = self.expr(b, bw)?;
                        let cop = if *op == B::LogicAnd { "&&" } else { "||" };
                        format!("(({av} != 0ULL) {cop} ({bv} != 0ULL) ? 1ULL : 0ULL)")
                    }
                }
            }
            Expr::Ternary(c, a, b) => {
                let cw = self.self_width(c)?;
                let cv = self.expr(c, cw)?;
                let av = self.expr(a, width)?;
                let bv = self.expr(b, width)?;
                format!("({cv} != 0ULL ? {av} : {bv})")
            }
            Expr::Concat(parts) => {
                let mut acc: Option<(String, u32)> = None;
                for p in parts {
                    let w = self.self_width(p)?;
                    let pv = self.expr(p, w)?;
                    acc = Some(match acc {
                        None => (pv, w),
                        Some((a, aw)) => (format!("(({a} << {w}ULL) | {pv})"), aw + w),
                    });
                }
                let (s, total) = acc.ok_or_else(|| Self::err("empty concatenation"))?;
                if total <= width {
                    s
                } else {
                    format!("({s} & {m})")
                }
            }
            Expr::Repl(n, parts) => {
                let count = const_eval(n, &HashMap::new()).map_err(Self::err)?;
                let mut unit: Option<(String, u32)> = None;
                for p in parts {
                    let w = self.self_width(p)?;
                    let pv = self.expr(p, w)?;
                    unit = Some(match unit {
                        None => (pv, w),
                        Some((a, aw)) => (format!("(({a} << {w}ULL) | {pv})"), aw + w),
                    });
                }
                let (u, uw) = unit.ok_or_else(|| Self::err("empty replication"))?;
                let ut = self.atom(&u);
                let mut acc = ut.clone();
                let mut total = uw;
                for _ in 1..count {
                    acc = format!("(({acc} << {uw}ULL) | {ut})");
                    total += uw;
                }
                if total <= width {
                    acc
                } else {
                    format!("({acc} & {m})")
                }
            }
            Expr::Index(n, idx) => {
                let sig = self.sig(n)?.clone();
                if let Some((_, aw)) = sig.memory {
                    let iv = self.expr(idx, aw)?;
                    let base = match self.loc.get(n) {
                        Some(Loc::StructMem) => format!("s->{}", sanitize(n)),
                        Some(Loc::NextTemp) => format!("s->{}", sanitize(n)),
                        _ => return Err(Self::err(format!("'{n}' is not an accessible memory"))),
                    };
                    let v = format!("{base}[{iv}]");
                    if sig.width <= width {
                        v
                    } else {
                        format!("({v} & {m})")
                    }
                } else {
                    let v = self.value_of(n)?;
                    let iw = self
                        .self_width(idx)?
                        .max(ceil_log2(sig.width as u64).max(1));
                    let iv = self.expr(idx, iw)?;
                    let it = self.atom(&iv);
                    let off = if sig.lsb != 0 {
                        format!("({it} - {}ULL)", sig.lsb)
                    } else {
                        it
                    };
                    format!("(({v} >> {off}) & 1ULL)")
                }
            }
            Expr::Part(n, hi, lo) => {
                let sig = self.sig(n)?.clone();
                let h = const_eval(hi, &HashMap::new()).map_err(Self::err)? as u32;
                let l = const_eval(lo, &HashMap::new()).map_err(Self::err)? as u32;
                if l < sig.lsb || h >= sig.lsb + sig.width || l > h {
                    return Err(Self::err(format!("part select out of range on '{n}'")));
                }
                let v = self.value_of(n)?;
                let pw = h - l + 1;
                let s = format!("(({v} >> {}ULL) & {})", l - sig.lsb, cmask(pw));
                if pw <= width {
                    s
                } else {
                    format!("({s} & {m})")
                }
            }
        })
    }

    /// Materializes a complex C expression in a temp (identifiers and
    /// literals pass through).
    fn atom(&mut self, cexpr: &str) -> String {
        let simple = cexpr
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '>' || c == '.');
        if simple {
            return cexpr.to_string();
        }
        let t = self.fresh();
        self.line(&format!("uint64_t {t} = {cexpr};"));
        t
    }

    fn bool_expr(&mut self, e: &Expr) -> Result<String, VerilogError> {
        let w = self.self_width(e)?;
        let v = self.expr(e, w)?;
        Ok(format!("({v} != 0ULL)"))
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<(), VerilogError> {
        match s {
            Stmt::Nop => Ok(()),
            Stmt::Block(b) => {
                for st in b {
                    self.stmt(st)?;
                }
                Ok(())
            }
            Stmt::Blocking(lv, rhs) | Stmt::NonBlocking(lv, rhs) => self.assign(lv, rhs),
            Stmt::If(c, t, e) => {
                let cv = self.bool_expr(c)?;
                self.line(&format!("if ({cv}) {{"));
                self.indent += 1;
                self.stmt(t)?;
                self.indent -= 1;
                match e {
                    Some(e) => {
                        self.line("} else {");
                        self.indent += 1;
                        self.stmt(e)?;
                        self.indent -= 1;
                        self.line("}");
                    }
                    None => self.line("}"),
                }
                Ok(())
            }
            Stmt::Case {
                expr,
                arms,
                default,
                ..
            } => {
                let w = self.self_width(expr)?;
                let sv = self.expr(expr, w)?;
                let st = self.atom(&sv);
                let mut first = true;
                for (labels, body) in arms {
                    let conds: Result<Vec<String>, _> = labels
                        .iter()
                        .map(|l| self.expr(l, w).map(|lv| format!("{st} == {lv}")))
                        .collect();
                    let cond = conds?.join(" || ");
                    if first {
                        self.line(&format!("if ({cond}) {{"));
                        first = false;
                    } else {
                        self.line(&format!("}} else if ({cond}) {{"));
                    }
                    self.indent += 1;
                    self.stmt(body)?;
                    self.indent -= 1;
                }
                if let Some(d) = default {
                    if first {
                        self.stmt(d)?;
                    } else {
                        self.line("} else {");
                        self.indent += 1;
                        self.stmt(d)?;
                        self.indent -= 1;
                        self.line("}");
                    }
                } else if !first {
                    self.line("}");
                }
                Ok(())
            }
        }
    }

    /// C lvalue text for writing a signal (location-dependent).
    fn write_target(&self, name: &str) -> Result<String, VerilogError> {
        let n = sanitize(name);
        match self.loc.get(name) {
            Some(Loc::CombLocal) => Ok(n),
            Some(Loc::NextTemp) => Ok(format!("__next_{n}")),
            Some(Loc::CurTemp) => Ok(format!("__cur_{n}")),
            Some(Loc::StructMem) => Ok(format!("__next_{n}")),
            other => Err(Self::err(format!(
                "cannot assign '{name}' here ({other:?})"
            ))),
        }
    }

    fn assign(&mut self, lv: &LValue, rhs: &Expr) -> Result<(), VerilogError> {
        match lv {
            LValue::Ident(n) => {
                let w = self.sig(n)?.width;
                let rv = self.expr(rhs, w)?;
                let t = self.write_target(n)?;
                self.line(&format!("{t} = {rv};"));
                Ok(())
            }
            LValue::Index(n, idx) => {
                let sig = self.sig(n)?.clone();
                if let Some((_, aw)) = sig.memory {
                    let iv = self.expr(idx, aw)?;
                    let rv = self.expr(rhs, sig.width)?;
                    let t = self.write_target(n)?;
                    self.line(&format!("{t}[{iv}] = {rv};"));
                } else {
                    let iw = self
                        .self_width(idx)?
                        .max(ceil_log2(sig.width as u64).max(1));
                    let iv = self.expr(idx, iw)?;
                    let it = self.atom(&iv);
                    let sh = if sig.lsb != 0 {
                        format!("({it} - {}ULL)", sig.lsb)
                    } else {
                        it
                    };
                    let sht = self.atom(&sh);
                    let rv = self.expr(rhs, 1)?;
                    let t = self.write_target(n)?;
                    self.line(&format!(
                        "{t} = ({t} & ~(1ULL << {sht})) | (({rv}) << {sht});"
                    ));
                }
                Ok(())
            }
            LValue::Part(n, hi, lo) => {
                let sig = self.sig(n)?.clone();
                let h = const_eval(hi, &HashMap::new()).map_err(Self::err)? as u32 - sig.lsb;
                let l = const_eval(lo, &HashMap::new()).map_err(Self::err)? as u32 - sig.lsb;
                let pw = h - l + 1;
                let rv = self.expr(rhs, pw)?;
                let t = self.write_target(n)?;
                self.line(&format!(
                    "{t} = ({t} & ~({} << {l}ULL)) | (({rv}) << {l}ULL);",
                    cmask(pw)
                ));
                Ok(())
            }
            LValue::Concat(parts) => {
                let mut widths = Vec::new();
                for p in parts {
                    match p {
                        LValue::Ident(n) => widths.push(self.sig(n)?.width),
                        _ => {
                            return Err(Self::err(
                                "nested selects in concatenated assignment targets",
                            ))
                        }
                    }
                }
                let total: u32 = widths.iter().sum();
                let rv = self.expr(rhs, total)?;
                let rt = self.atom(&rv);
                let mut hi = total;
                for (p, w) in parts.iter().zip(&widths) {
                    let lo = hi - w;
                    if let LValue::Ident(n) = p {
                        let t = self.write_target(n)?;
                        self.line(&format!("{t} = (({rt} >> {lo}ULL) & {});", cmask(*w)));
                    }
                    hi = lo;
                }
                Ok(())
            }
        }
    }

    // ---- whole body ----

    fn emit_body(&mut self) -> Result<(), VerilogError> {
        let m = self.m;

        // Locate every signal.
        let regs: HashSet<String> = Emitter::regs(m).iter().map(|s| s.name.clone()).collect();
        for sig in &m.signals {
            if self.info.clock_ports.contains(&sig.name) {
                continue;
            }
            let loc = if regs.contains(&sig.name) {
                if sig.memory.is_some() {
                    Loc::StructMem
                } else {
                    Loc::StructReg
                }
            } else if sig.port == Some(Dir::Input) {
                Loc::InputParam
            } else {
                Loc::CombLocal
            };
            self.loc.insert(sig.name.clone(), loc);
        }

        // Declare combinational locals.
        for sig in &m.signals {
            if self.loc.get(&sig.name) == Some(&Loc::CombLocal) {
                if sig.memory.is_some() {
                    return Err(Self::err(format!(
                        "memory '{}' must be a clocked register",
                        sig.name
                    )));
                }
                self.line(&format!("uint64_t {} = 0ULL;", sanitize(&sig.name)));
            }
        }

        // Build the unit list: assigns, comb processes, instances.
        #[derive(Clone)]
        enum U {
            Assign(usize),
            Comb(usize),
            Inst(usize),
        }
        let mut units: Vec<U> = Vec::new();
        let mut defs: Vec<Vec<String>> = Vec::new();
        let mut reads: Vec<HashSet<String>> = Vec::new();
        for (i, (lv, rhs)) in m.assigns.iter().enumerate() {
            let mut d = Vec::new();
            lvalue_targets(lv, &mut d);
            // Clock wiring assigns are dropped.
            if d.iter().all(|x| self.info.clock_ports.contains(x)) {
                continue;
            }
            let mut r = HashSet::new();
            expr_reads(rhs, &HashSet::new(), &mut r);
            units.push(U::Assign(i));
            defs.push(d);
            reads.push(r);
        }
        for (i, (clk, body)) in m.processes.iter().enumerate() {
            if clk.is_none() {
                let mut d = Vec::new();
                stmt_targets(body, &mut d);
                let mut assigned = HashSet::new();
                let mut r = HashSet::new();
                stmt_reads(body, &mut assigned, &mut r);
                units.push(U::Comb(i));
                defs.push(d);
                reads.push(r);
            }
        }
        for (i, inst) in m.instances.iter().enumerate() {
            let child = &self.design.modules[inst.module];
            let cinfo = &self.all_info[inst.module];
            let mut d = Vec::new();
            let mut r = HashSet::new();
            for (pi, conn) in &inst.conns {
                let p = &child.signals[*pi];
                if cinfo.clock_ports.contains(&p.name) {
                    continue;
                }
                match p.port {
                    Some(Dir::Input) => expr_reads(conn, &HashSet::new(), &mut r),
                    Some(Dir::Output) => match conn {
                        Expr::Ident(n) => d.push(n.clone()),
                        _ => {
                            return Err(Self::err(format!(
                                "output port '{}' of instance '{}' must connect to a \
                                 whole signal",
                                p.name, inst.name
                            )))
                        }
                    },
                    None => {}
                }
            }
            units.push(U::Inst(i));
            defs.push(d);
            reads.push(r);
        }

        // Kahn topological sort (instance-granular inter-module
        // dependency analysis).
        let def_of: HashMap<String, usize> = defs
            .iter()
            .enumerate()
            .flat_map(|(i, ds)| ds.iter().map(move |d| (d.clone(), i)))
            .collect();
        let n = units.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, rs) in reads.iter().enumerate() {
            for rsig in rs {
                if let Some(&j) = def_of.get(rsig) {
                    if j == i {
                        return Err(Self::err(format!(
                            "combinational loop through '{rsig}' in module '{}'",
                            m.name
                        )));
                    }
                    succ[j].push(i);
                    indeg[i] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        queue.reverse(); // keep close to source order
        let mut order = Vec::new();
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &succ[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n {
            return Err(Self::err(format!(
                "combinational loop in module '{}' (possibly across instances)",
                m.name
            )));
        }

        // Emit combinational section.
        self.line("/* combinational logic (dependency order) */");
        let mut assert_base_offsets: Vec<usize> = Vec::with_capacity(m.instances.len());
        {
            let mut acc = self.info.assert_own;
            for inst in &m.instances {
                assert_base_offsets.push(acc);
                acc += self.all_info[inst.module].assert_total;
            }
        }
        for u in &order {
            match units[*u] {
                U::Assign(i) => {
                    let (lv, rhs) = m.assigns[i].clone();
                    self.assign(&lv, &rhs)?;
                }
                U::Comb(i) => {
                    let body = m.processes[i].1.clone();
                    self.stmt(&body)?;
                }
                U::Inst(i) => {
                    let inst = m.instances[i].clone();
                    let child = self.design.modules[inst.module].clone();
                    let cinfo = self.all_info[inst.module].clone();
                    let mut args = vec![format!("&s->{}", sanitize(&inst.name))];
                    // Arguments in the child's port order.
                    for sig in child.signals.iter().filter(|s| s.port.is_some()) {
                        if cinfo.clock_ports.contains(&sig.name) {
                            continue;
                        }
                        let conn = inst
                            .conns
                            .iter()
                            .find(|(pi, _)| child.signals[*pi].name == sig.name)
                            .map(|(_, c)| c.clone());
                        match sig.port {
                            Some(Dir::Input) => match conn {
                                Some(c) => args.push(self.expr(&c, sig.width)?),
                                None => {
                                    return Err(Self::err(format!(
                                        "input port '{}' of instance '{}' is unconnected",
                                        sig.name, inst.name
                                    )))
                                }
                            },
                            Some(Dir::Output) => match conn {
                                Some(Expr::Ident(nm)) => args.push(format!("&{}", sanitize(&nm))),
                                Some(_) => unreachable!("checked above"),
                                None => {
                                    let t = self.fresh();
                                    self.line(&format!("uint64_t {t};"));
                                    args.push(format!("&{t}"));
                                }
                            },
                            None => {}
                        }
                    }
                    if self.style == MainStyle::Cosim && cinfo.assert_total > 0 {
                        args.push(format!("__bad_base + {}", assert_base_offsets[i]));
                    }
                    self.line(&format!("{}_step({});", cinfo.cname, args.join(", ")));
                }
            }
        }

        // Assertions (over pre-commit state).
        if !m.asserts.is_empty() {
            self.line("/* safety properties */");
        }
        for (ai, (label, cond)) in m.asserts.clone().iter().enumerate() {
            let cv = self.bool_expr(cond)?;
            match self.style {
                MainStyle::Verifier => {
                    self.line(&format!("assert({cv}); /* {label} */"));
                }
                MainStyle::Cosim => {
                    self.line(&format!(
                        "if (!{cv}) __bad[__bad_base + {ai}] = 1; /* {label} */"
                    ));
                }
            }
        }
        for cond in m.assumes.clone().iter() {
            let cv = self.bool_expr(cond)?;
            match self.style {
                MainStyle::Verifier => self.line(&format!("__VERIFIER_assume({cv});")),
                MainStyle::Cosim => self.line(&format!("(void)({cv});")),
            }
        }

        // Sequential processes: compute next values, commit at the end.
        let clocked: Vec<Stmt> = m
            .processes
            .iter()
            .filter(|(c, _)| c.is_some())
            .map(|(_, b)| b.clone())
            .collect();
        if !clocked.is_empty() {
            self.line("/* sequential update (two-phase) */");
        }
        for body in &clocked {
            let mut targets = Vec::new();
            stmt_targets(body, &mut targets);
            let mut seen: HashSet<String> = HashSet::new();
            // Classify blocking vs non-blocking per register.
            let mut blocking: HashSet<String> = HashSet::new();
            let mut nonblocking: HashSet<String> = HashSet::new();
            classify_assigns(body, &mut blocking, &mut nonblocking);
            for t in &targets {
                if !seen.insert(t.clone()) {
                    continue;
                }
                if blocking.contains(t) && nonblocking.contains(t) {
                    return Err(Self::err(format!(
                        "register '{t}' assigned both blocking and non-blocking"
                    )));
                }
                let sig = self.sig(t)?.clone();
                let n = sanitize(t);
                if let Some((_, aw)) = sig.memory {
                    let total = 1u64 << aw;
                    self.line(&format!("uint64_t __next_{n}[{total}];"));
                    self.line(&format!(
                        "{{ int __i; for (__i = 0; __i < {total}; __i++) \
                         __next_{n}[__i] = s->{n}[__i]; }}"
                    ));
                    self.loc.insert(t.clone(), Loc::StructMem);
                    let _ = writeln!(
                        self.tail,
                        "  {{ int __i; for (__i = 0; __i < {total}; __i++) \
                         s->{n}[__i] = __next_{n}[__i]; }}"
                    );
                } else if blocking.contains(t) {
                    self.line(&format!("uint64_t __cur_{n} = s->{n};"));
                    self.loc.insert(t.clone(), Loc::CurTemp);
                    let _ = writeln!(self.tail, "  s->{n} = __cur_{n};");
                } else {
                    self.line(&format!("uint64_t __next_{n} = s->{n};"));
                    self.loc.insert(t.clone(), Loc::NextTemp);
                    let _ = writeln!(self.tail, "  s->{n} = __next_{n};");
                }
            }
            self.stmt(body)?;
        }
        Ok(())
    }
}

fn classify_assigns(s: &Stmt, blocking: &mut HashSet<String>, nonblocking: &mut HashSet<String>) {
    match s {
        Stmt::Block(b) => b
            .iter()
            .for_each(|x| classify_assigns(x, blocking, nonblocking)),
        Stmt::If(_, t, e) => {
            classify_assigns(t, blocking, nonblocking);
            if let Some(e) = e {
                classify_assigns(e, blocking, nonblocking);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for (_, b) in arms {
                classify_assigns(b, blocking, nonblocking);
            }
            if let Some(d) = default {
                classify_assigns(d, blocking, nonblocking);
            }
        }
        Stmt::Blocking(lv, _) => {
            let mut t = Vec::new();
            lvalue_targets(lv, &mut t);
            blocking.extend(t);
        }
        Stmt::NonBlocking(lv, _) => {
            let mut t = Vec::new();
            lvalue_targets(lv, &mut t);
            nonblocking.extend(t);
        }
        Stmt::Nop => {}
    }
}

fn interp_initial(
    m: &ElabModule,
    s: &Stmt,
    scalars: &mut HashMap<String, u64>,
    mems: &mut HashMap<String, HashMap<u64, u64>>,
) -> Result<(), VerilogError> {
    match s {
        Stmt::Nop => Ok(()),
        Stmt::Block(b) => {
            for st in b {
                interp_initial(m, st, scalars, mems)?;
            }
            Ok(())
        }
        Stmt::If(c, t, e) => {
            let cv = const_eval(c, scalars).map_err(VerilogError::general)?;
            if cv != 0 {
                interp_initial(m, t, scalars, mems)
            } else if let Some(e) = e {
                interp_initial(m, e, scalars, mems)
            } else {
                Ok(())
            }
        }
        Stmt::Blocking(lv, rhs) | Stmt::NonBlocking(lv, rhs) => {
            let v = const_eval(rhs, scalars).map_err(VerilogError::general)?;
            match lv {
                LValue::Ident(n) => {
                    let w = m
                        .signal(n)
                        .map(|i| m.signals[i].width)
                        .ok_or_else(|| VerilogError::general(format!("unknown '{n}'")))?;
                    scalars.insert(n.clone(), v & mask(w));
                    Ok(())
                }
                LValue::Index(n, idx) => {
                    let i = const_eval(idx, scalars).map_err(VerilogError::general)?;
                    let w = m
                        .signal(n)
                        .map(|x| m.signals[x].width)
                        .ok_or_else(|| VerilogError::general(format!("unknown '{n}'")))?;
                    mems.entry(n.clone()).or_default().insert(i, v & mask(w));
                    Ok(())
                }
                _ => Err(VerilogError::general("unsupported initial target")),
            }
        }
        Stmt::Case { .. } => Err(VerilogError::general("case in initial block")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(src: &str, top: &str, style: MainStyle) -> String {
        let mods = vfront::parse(src).expect("parses");
        let design = vfront::elaborate(&mods, top).expect("elaborates");
        emit_c(&design, style).expect("emits")
    }

    const COUNTER: &str = r#"
    module counter(input clk, input rst, output wrap);
      reg [3:0] c;
      initial c = 0;
      always @(posedge clk) begin
        if (rst) c <= 0;
        else c <= c + 1;
      end
      assign wrap = (c == 4'hF);
      assert property (c <= 4'hF);
    endmodule
    "#;

    #[test]
    fn verifier_harness_structure() {
        let c = emit(COUNTER, "counter", MainStyle::Verifier);
        assert!(c.contains("typedef struct counter_state"));
        assert!(c.contains("uint64_t c; /* 4 bits */"));
        assert!(c.contains("static void counter_init(counter_state *s)"));
        assert!(c.contains(
            "static void counter_step(counter_state *s, uint64_t rst, uint64_t *o_wrap)"
        ));
        assert!(c.contains("__VERIFIER_nondet_ulonglong()"));
        assert!(c.contains("assert("));
        assert!(c.contains("while (1)"));
        assert!(!c.contains("clk"), "clock must be compiled away:\n{c}");
    }

    #[test]
    fn cosim_harness_structure() {
        let c = emit(COUNTER, "counter", MainStyle::Cosim);
        assert!(c.contains("scanf"));
        assert!(c.contains("counter_dump"));
        assert!(c.contains("__bad"));
        assert!(!c.contains("__VERIFIER_nondet"));
    }

    #[test]
    fn hierarchy_emits_nested_structs_and_calls() {
        let src = r#"
        module adder(input clk, input [3:0] a, output [3:0] y);
          reg [3:0] acc;
          initial acc = 0;
          always @(posedge clk) acc <= acc + a;
          assign y = acc;
          assert property (acc != 4'hF);
        endmodule
        module top(input clk, input [3:0] x);
          wire [3:0] s1;
          adder u1 (.clk(clk), .a(x), .y(s1));
          adder u2 (.clk(clk), .a(s1), .y());
        endmodule
        "#;
        let c = emit(src, "top", MainStyle::Verifier);
        assert!(c.contains("struct adder_state u1;"));
        assert!(c.contains("struct adder_state u2;"));
        assert!(c.contains("adder_step(&s->u1"));
        assert!(c.contains("adder_step(&s->u2"));
        // u2 reads s1 which u1 computes: u1 must be called first.
        let p1 = c.find("adder_step(&s->u1").expect("u1 call");
        let p2 = c.find("adder_step(&s->u2").expect("u2 call");
        assert!(p1 < p2, "inter-module dependency order");
    }

    #[test]
    fn memory_becomes_array_with_copy_commit() {
        let src = r#"
        module m(input clk, input we, input [2:0] addr, input [7:0] d, output [7:0] q);
          reg [7:0] mem [0:7];
          assign q = mem[addr];
          always @(posedge clk) if (we) mem[addr] <= d;
        endmodule
        "#;
        let c = emit(src, "m", MainStyle::Verifier);
        assert!(c.contains("uint64_t mem[8];"));
        assert!(c.contains("__next_mem"));
        assert!(c.contains("s->mem[__i] = __next_mem[__i];"));
    }

    #[test]
    fn blocking_gets_cur_shadow() {
        let src = r#"
        module m(input clk, input [3:0] x);
          reg [3:0] a; reg [3:0] b;
          initial begin a = 0; b = 0; end
          always @(posedge clk) begin
            a = x;
            b <= a;
          end
        endmodule
        "#;
        let c = emit(src, "m", MainStyle::Verifier);
        assert!(c.contains("__cur_a"), "blocking register gets shadow:\n{c}");
        assert!(c.contains("__next_b"));
        assert!(c.contains("__next_b = __cur_a;"));
    }
}
