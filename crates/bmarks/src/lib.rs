//! The twelve DATE 2016 benchmark designs.
//!
//! The paper evaluates on circuits "derived from real world hardware
//! benchmark suites, including VIS Verilog models, the Texas-97
//! Benchmark suite, and opencores.org": a Huffman encoder/decoder and
//! a Digital Audio Input-Output chip (data-path intensive), plus a
//! non-pipelined 3-stage processor, a Read-Copy-Update protocol, a
//! FIFO controller, a buffer allocation model and an instruction
//! queue controller (control-intensive), along with Dekker, Heap,
//! TicTacToe, traffic-light and Vending designs appearing in
//! Figures 3–5.
//!
//! The paper's artifact archive is no longer online, so each design is
//! re-authored here from its description and the standard literature,
//! keeping the published characteristics (see `DESIGN.md` §2): DAIO
//! and traffic-light are **unsafe** with bugs manifesting at cycles 64
//! and 65; FIFO, BufAl and RCU are safe but not k-inductive for
//! feasible k; the rest are easy for every engine.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), vfront::VerilogError> {
//! let b = bmarks::by_name("fifos").expect("exists");
//! let ts = b.compile()?;
//! assert!(!ts.bads().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

use rtlir::TransitionSystem;
use vfront::VerilogError;

/// Ground-truth verdict of a benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expected {
    /// All assertions hold on all reachable states.
    Safe,
    /// An assertion is violated; `bug_cycle` gives the first cycle.
    Unsafe,
}

/// Design class, as the paper groups them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Data-path intensive.
    DataPath,
    /// Control intensive.
    Control,
}

/// One benchmark: embedded Verilog source plus ground truth.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Short name, as used in the paper's figures.
    pub name: &'static str,
    /// Verilog source text.
    pub source: &'static str,
    /// Top module name.
    pub top: &'static str,
    /// Ground-truth verdict.
    pub expected: Expected,
    /// First violating cycle for unsafe designs.
    pub bug_cycle: Option<u64>,
    /// Data-path or control intensive.
    pub class: Class,
    /// One-line description.
    pub description: &'static str,
    /// Expected difficulty: designs whose properties are not
    /// k-inductive for feasible k (only invariant-generating engines
    /// prove them in reasonable time).
    pub hard: bool,
}

impl Benchmark {
    /// Compiles the benchmark into a word-level transition system.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (none are expected for the embedded
    /// sources; the test-suite compiles every benchmark).
    pub fn compile(&self) -> Result<TransitionSystem, VerilogError> {
        vfront::compile(self.source, self.top)
    }
}

/// All twelve benchmarks, in the row order of the paper's figures.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "BufAl",
            source: include_str!("../../../benchmarks/bufal.v"),
            top: "bufal",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "buffer allocation model: bitmap vs. counter coupling",
            hard: true,
        },
        Benchmark {
            name: "DAIO",
            source: include_str!("../../../benchmarks/daio.v"),
            top: "daio",
            expected: Expected::Unsafe,
            bug_cycle: Some(64),
            class: Class::DataPath,
            description: "digital audio I/O serdes; frame-sync bug at cycle 64",
            hard: false,
        },
        Benchmark {
            name: "Dekker",
            source: include_str!("../../../benchmarks/dekker.v"),
            top: "dekker",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "Dekker's mutual exclusion protocol",
            hard: false,
        },
        Benchmark {
            name: "FIFOs",
            source: include_str!("../../../benchmarks/fifo.v"),
            top: "fifo",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "FIFO controller with weak (non-inductive) flags property",
            hard: true,
        },
        Benchmark {
            name: "Heap",
            source: include_str!("../../../benchmarks/heap.v"),
            top: "heap",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "binary heap controller with one sift step per cycle",
            hard: false,
        },
        Benchmark {
            name: "Huffman",
            source: include_str!("../../../benchmarks/huffman.v"),
            top: "huffman",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::DataPath,
            description: "Huffman encoder/decoder round-trip",
            hard: false,
        },
        Benchmark {
            name: "Ibuf",
            source: include_str!("../../../benchmarks/ibuf.v"),
            top: "ibuf",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "instruction queue controller",
            hard: false,
        },
        Benchmark {
            name: "RCU",
            source: include_str!("../../../benchmarks/rcu.v"),
            top: "rcu",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "read-copy-update grace-period protocol",
            hard: true,
        },
        Benchmark {
            name: "TicTacToe",
            source: include_str!("../../../benchmarks/tictactoe.v"),
            top: "tictactoe",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "tic-tac-toe referee with win detection",
            hard: false,
        },
        Benchmark {
            name: "non-pipe-mp",
            source: include_str!("../../../benchmarks/npipe_mp.v"),
            top: "npipe_mp",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "non-pipelined 3-stage microprocessor",
            hard: false,
        },
        Benchmark {
            name: "traffic-light",
            source: include_str!("../../../benchmarks/traffic_light.v"),
            top: "traffic_light",
            expected: Expected::Unsafe,
            bug_cycle: Some(65),
            class: Class::Control,
            description: "traffic light controller; collision bug at cycle 65",
            hard: false,
        },
        Benchmark {
            name: "Vending",
            source: include_str!("../../../benchmarks/vending.v"),
            top: "vending",
            expected: Expected::Safe,
            bug_cycle: None,
            class: Class::Control,
            description: "vending machine credit/change controller",
            hard: false,
        },
    ]
}

/// Looks up a benchmark by its (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rtlir::{Simulator, Value};

    #[test]
    fn twelve_benchmarks() {
        assert_eq!(all().len(), 12);
        assert!(by_name("fifos").is_some());
        assert!(by_name("rcu").is_some());
        assert!(by_name("ghost").is_none());
    }

    #[test]
    fn all_compile() {
        for b in all() {
            let ts = b
                .compile()
                .unwrap_or_else(|e| panic!("benchmark {} failed to compile: {e}", b.name));
            assert!(!ts.bads().is_empty(), "{} has no property", b.name);
            assert!(
                ts.validate().is_empty(),
                "{} has validation problems: {:?}",
                b.name,
                ts.validate()
            );
        }
    }

    fn random_inputs(ts: &TransitionSystem, rng: &mut StdRng) -> Vec<Value> {
        ts.inputs()
            .iter()
            .map(|&v| {
                let w = ts.pool().var_sort(v).width();
                Value::bv(w, rng.gen::<u64>())
            })
            .collect()
    }

    #[test]
    fn unsafe_bugs_manifest_at_documented_cycle() {
        for b in all().into_iter().filter(|b| b.expected == Expected::Unsafe) {
            let ts = b.compile().expect("compiles");
            // The planted bugs are deterministic: any stimulus triggers
            // them at exactly the documented cycle.
            let mut rng = StdRng::seed_from_u64(7);
            let mut sim = Simulator::new(&ts);
            let hit = sim.run_until_bad(200, |_| random_inputs(&ts, &mut rng));
            assert_eq!(
                hit, b.bug_cycle,
                "{}: bug must manifest at the documented cycle",
                b.name
            );
        }
    }

    #[test]
    fn safe_designs_survive_random_simulation() {
        for b in all().into_iter().filter(|b| b.expected == Expected::Safe) {
            let ts = b.compile().expect("compiles");
            for seed in 0..4u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sim = Simulator::new(&ts);
                let hit = sim.run_until_bad(3000, |_| random_inputs(&ts, &mut rng));
                assert_eq!(hit, None, "{} violated under seed {seed}", b.name);
            }
        }
    }

    #[test]
    fn classes_match_paper() {
        let dp: Vec<&str> = all()
            .into_iter()
            .filter(|b| b.class == Class::DataPath)
            .map(|b| b.name)
            .collect();
        assert_eq!(dp, vec!["DAIO", "Huffman"]);
        assert_eq!(
            all().iter().filter(|b| b.hard).count(),
            3,
            "FIFO, BufAl and RCU are the hard trio"
        );
    }
}
