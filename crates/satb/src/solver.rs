//! The CDCL solver.

use crate::cdb::{CRef, ClauseDb};
use crate::domain::Domain;
use crate::lit::{LBool, Lit, Var};
use crate::proof::{ClauseId, Part, Proof, ProofClause, ResStep};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Per-thread count of [`Solver`] constructions (observability
    /// hook, mirroring `aig::seq::blast_count`).
    static SOLVERS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of [`Solver`]s constructed by the *current thread*.
///
/// Thread-local on purpose: tests assert construction discipline (e.g.
/// "single-solver PDR builds exactly one solver per run") without
/// racing against solvers created on unrelated test threads.
pub fn solver_count() -> u64 {
    SOLVERS.with(std::cell::Cell::get)
}

/// Which resource limit ended a solve call without an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The per-call conflict budget ([`Limits::max_conflicts`]) ran out.
    ConflictLimit,
    /// The wall-clock deadline ([`Limits::deadline`]) passed.
    Timeout,
    /// The shared stop flag ([`Limits::stop`]) was raised by another
    /// thread (cooperative cancellation, e.g. a portfolio winner).
    Cancelled,
    /// The proof arena grew past the configured byte cap
    /// ([`Solver::set_proof_limit`]); the recorded derivations stay
    /// intact and checkable, but no answer was derived.
    ProofLimit,
}

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource limit was hit before an answer was derived; the
    /// payload says which one.
    Unknown(Interrupt),
}

/// Resource limits for a single `solve` call.
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Give up after this many conflicts (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Give up once this wall-clock instant has passed.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation: give up as soon as this shared flag is
    /// observed `true`. Checked once per solver-loop iteration (every
    /// conflict or decision), so a cancelled solve returns within one
    /// propagation round.
    pub stop: Option<Arc<AtomicBool>>,
    /// Deterministic fault injection for robustness testing: pretend an
    /// external cancellation arrived mid-solve (see [`Chaos`]).
    pub chaos: Option<Chaos>,
}

impl Limits {
    /// Whether the shared stop flag has been raised.
    pub fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }
}

/// Deterministic seeded fault injection ([`Limits::chaos`]).
///
/// When set, each `solve_limited` call picks a conflict threshold in
/// `1..=period` from a hash of `seed` and the solver's per-call epoch
/// counter, and aborts with [`Interrupt::Cancelled`] once the call has
/// analyzed that many conflicts — exactly the code path a real
/// cross-thread cancellation takes, so the solver is left in a clean,
/// reusable state. Calls that finish in fewer conflicts complete
/// normally. The schedule depends only on `seed`, `period` and the
/// order of solve calls, so failures replay deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chaos {
    /// Seed mixed into every per-call threshold.
    pub seed: u64,
    /// Upper bound (inclusive) of the per-call conflict threshold.
    pub period: u64,
}

impl Chaos {
    /// Conflict threshold for the call with the given epoch number.
    pub fn threshold(&self, epoch: u64) -> u64 {
        1 + splitmix64(self.seed ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % self.period.max(1)
    }
}

/// SplitMix64 finalizer: cheap, well-mixed hash for chaos scheduling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Cumulative solver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses.
    pub learned: u64,
    /// Number of learned-clause reduction passes.
    pub reduces: u64,
    /// Number of learned clauses deleted by reduction.
    pub deleted: u64,
    /// Number of Glucose-style LBD improvements: a learned clause
    /// reused as a conflict-analysis reason whose recomputed LBD was
    /// lower than the stored one (protecting it from reduction).
    pub lbd_improved: u64,
    /// Number of arena compaction (garbage collection) passes.
    pub gcs: u64,
    /// Number of activation variables reused from the free-list by
    /// [`Solver::new_activation`] instead of allocating a fresh one.
    pub act_recycled: u64,
    /// Number of clauses freed by [`Solver::release_activation`]
    /// (registered activated clauses plus contaminated learned ones).
    pub act_released: u64,
    /// Number of releases abandoned because the activation variable was
    /// fixed at level 0 or a dependent clause was locked; the group
    /// goes on the leaked-release list and is reclaimed by the next
    /// sweep (solve entry, restart or reduction pass), except for
    /// clauses that remain the reason of a level-0 assignment.
    pub act_leaked: u64,
    /// Number of clauses reclaimed from abandoned activation groups by
    /// the leaked-release sweep.
    pub act_swept: u64,
    /// Variables eliminated by [`Solver::preprocess`].
    pub elim_vars: u64,
    /// Clauses deleted by subsumption in [`Solver::preprocess`].
    pub subsumed: u64,
    /// Literals removed by self-subsuming resolution in
    /// [`Solver::preprocess`].
    pub strengthened: u64,
    /// Current clause-arena footprint in bytes.
    pub arena_bytes: u64,
    /// High-water clause-arena footprint in bytes.
    pub arena_peak_bytes: u64,
    /// Faults injected by [`Limits::chaos`] (each one surfaced as an
    /// [`Interrupt::Cancelled`] answer).
    pub chaos_injected: u64,
    /// Conflicts resolved by a one-level chronological backtrack
    /// instead of the full non-chronological jump (see
    /// [`Solver::set_chrono`]).
    pub chrono_backtracks: u64,
    /// Decisions made on in-domain variables during
    /// [`Solver::solve_with_domain`] calls.
    pub domain_decisions: u64,
    /// Out-of-domain variables the decision heuristic popped and
    /// parked during [`Solver::solve_with_domain`] calls (each is
    /// parked at most once per call — the work a plain solve would
    /// have spent branching outside the cone).
    pub domain_skipped: u64,
    /// Original clauses deleted by inprocessing because a learned
    /// clause subsumed them (the learned clause is promoted in their
    /// place).
    pub inproc_subsumed: u64,
    /// Approximate bytes held by the recorded resolution proof (zero
    /// when proof logging is off). See [`crate::proof::Proof::bytes`].
    pub proof_bytes: u64,
    /// Derivation chains recorded in the proof (derived clauses plus
    /// the final empty-clause chain).
    pub proof_chains: u64,
}

/// Learned-clause reduction policy.
///
/// Reduction runs every time the conflict count passes a limit that
/// starts at `first_conflicts` and grows by `conflicts_inc` after each
/// pass. A pass keeps binary clauses, "glue" clauses (LBD at most
/// `glue_keep`), locked clauses (currently the reason of an
/// assignment), and the better-scoring half of the rest (low LBD, then
/// high activity); everything else is deleted and the arena is
/// compacted once a fifth of it is garbage.
#[derive(Clone, Copy, Debug)]
pub struct ReduceConfig {
    /// Master switch; `false` keeps every learned clause forever.
    pub enabled: bool,
    /// Conflicts before the first reduction pass.
    pub first_conflicts: u64,
    /// Additional conflicts between passes.
    pub conflicts_inc: u64,
    /// Learned clauses with LBD at most this are never deleted.
    pub glue_keep: u32,
}

impl Default for ReduceConfig {
    fn default() -> ReduceConfig {
        ReduceConfig {
            enabled: true,
            first_conflicts: 2000,
            conflicts_inc: 1000,
            glue_keep: 2,
        }
    }
}

/// A watch-list entry. The clause reference and the binary flag share
/// one word (bit 0 is the flag): for binary clauses the blocker *is*
/// the other literal, so propagation never touches the arena.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    tag: u32,
    blocker: Lit,
}

impl Watcher {
    fn new(cref: CRef, blocker: Lit, binary: bool) -> Watcher {
        debug_assert!(cref.0 < u32::MAX / 2, "clause arena exceeds watcher range");
        Watcher {
            tag: (cref.0 << 1) | binary as u32,
            blocker,
        }
    }
    fn cref(self) -> CRef {
        CRef(self.tag >> 1)
    }
    fn is_binary(self) -> bool {
        self.tag & 1 != 0
    }
}

/// Max-heap over variables ordered by VSIDS activity.
#[derive(Clone, Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<i32>, // -1 if absent
}

impl VarHeap {
    fn ensure(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(-1);
        }
    }
    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] >= 0
    }
    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }
    fn bump(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            let i = self.pos[v.index()] as usize;
            self.sift_up(i, act);
        }
    }
    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = -1;
        let last = self.heap.pop().expect("nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }
    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[p].index()] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }
    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }
    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i as i32;
        self.pos[self.heap[j].index()] = j as i32;
    }
    /// Replaces the heap contents with exactly the given variables in
    /// one O(n) bottom-up heapify — cheaper than n sift-up inserts
    /// (O(n log n)) when rebuilding the whole decision pool, e.g.
    /// after preprocessing renumbers the live variable set.
    fn rebuild(&mut self, vars: impl IntoIterator<Item = Var>, act: &[f64]) {
        self.heap.clear();
        for p in &mut self.pos {
            *p = -1;
        }
        for v in vars {
            self.pos[v.index()] = self.heap.len() as i32;
            self.heap.push(v);
        }
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, act);
        }
    }
}

/// A CDCL SAT solver (see the [crate docs](crate) for an overview).
///
/// The solver is incremental: clauses may be added between `solve`
/// calls, and [`solve_with`](Solver::solve_with) accepts assumption
/// literals whose inconsistent subset is available afterwards via
/// [`failed_assumptions`](Solver::failed_assumptions).
///
/// Clauses live in a flat arena ([`ClauseDb`]): propagation walks one
/// contiguous allocation, binary clauses propagate straight out of the
/// watcher without touching the arena, and the database is kept small
/// by periodic **learned-clause reduction** (see [`ReduceConfig`]):
/// high-LBD, low-activity learned clauses are deleted and the arena is
/// compacted, with watch lists and reason references remapped.
///
/// Proof logging (enabled with [`with_proof`](Solver::with_proof))
/// records resolution chains for interpolant extraction. Reduction is
/// proof-aware: deleting a learned clause never touches the recorded
/// chains (the [`Proof`] owns its data), locked clauses — including the
/// reasons of all level-0 assignments, which the empty-clause
/// derivation resolves against — are never deleted, and the proof-id of
/// each clause travels with it through compaction, so interpolation
/// keeps working across arbitrarily many reduce/GC cycles.
#[derive(Debug)]
pub struct Solver {
    cdb: ClauseDb,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    levels: Vec<u32>,
    reasons: Vec<Option<CRef>>,
    trail_pos: Vec<usize>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    ok: bool,
    proof: Option<Proof>,
    model: Vec<LBool>,
    failed: Vec<Lit>,
    stats: Stats,
    seen: Vec<bool>,
    /// Clause-activity increment for reduction scoring.
    cla_inc: f32,
    /// Reduction policy.
    reduce: ReduceConfig,
    /// Conflict count that triggers the next reduction pass.
    next_reduce: u64,
    /// Scratch generation stamps for LBD computation, per level.
    lbd_stamp: Vec<u64>,
    lbd_gen: u64,
    /// Live activation groups: clauses registered under each in-use
    /// activation variable, plus the arena/GC watermarks at creation
    /// (so release can scan only the learned clauses allocated since).
    act_entries: HashMap<Var, ActEntry>,
    /// Recycled activation variables, ready for reuse.
    free_acts: Vec<Var>,
    /// Abandoned activation releases awaiting reclamation: their
    /// clauses are all satisfied at level 0 (the guard variable is
    /// fixed false), so they are freed by the next sweep unless they
    /// are currently the reason of an assignment.
    leaked: Vec<LeakedGroup>,
    /// Model-reconstruction stack installed by
    /// [`preprocess`](Solver::preprocess) (eliminated variables get
    /// their values re-derived after every `Sat` answer).
    recon: Option<crate::preproc::ReconStack>,
    /// Per-variable flag for variables eliminated by preprocessing
    /// (empty when preprocessing never ran). Eliminated variables must
    /// not reappear in clauses or assumptions.
    elim_mask: Vec<bool>,
    /// Reusable buffer for model extension over eliminated variables.
    recon_scratch: Vec<bool>,
    /// Monotone `solve_limited` call counter; feeds the per-call
    /// [`Chaos`] threshold so injected faults vary across calls but
    /// replay deterministically.
    chaos_epoch: u64,
    /// Chronological-backtracking threshold (see
    /// [`set_chrono`](Solver::set_chrono)); `None` disables it.
    chrono: Option<u32>,
    /// Out-of-domain variables popped off the decision heap during a
    /// domain-restricted solve; restored to the heap when the call
    /// returns. Parking them (instead of re-inserting immediately)
    /// means each is popped at most once per call.
    dom_stash: Vec<Var>,
    /// Learned-clause count that triggers the next inprocessing pass.
    next_inproc: u64,
    /// Byte cap on the recorded proof; a solve that pushes the proof
    /// past it returns [`Interrupt::ProofLimit`].
    proof_limit: Option<u64>,
}

/// Clauses of one abandoned activation release, kept until the sweep
/// can free them.
#[derive(Debug)]
struct LeakedGroup {
    origs: Vec<CRef>,
    learnts: Vec<CRef>,
}

/// Bookkeeping of one activation-literal clause group.
#[derive(Debug)]
struct ActEntry {
    /// Registered original clauses (each contains the negated
    /// activation literal).
    crefs: Vec<CRef>,
    /// Arena word offset when the group was created: learned clauses
    /// allocated after it are the only ones that can mention the
    /// variable — valid while no GC has run since.
    arena_mark: usize,
    /// `stats.gcs` at creation; a mismatch invalidates `arena_mark`.
    gc_mark: u64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver without proof logging.
    pub fn new() -> Solver {
        SOLVERS.with(|c| c.set(c.get() + 1));
        let reduce = ReduceConfig::default();
        Solver {
            cdb: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail_pos: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: VarHeap::default(),
            phase: Vec::new(),
            ok: true,
            proof: None,
            model: Vec::new(),
            failed: Vec::new(),
            stats: Stats::default(),
            seen: Vec::new(),
            cla_inc: 1.0,
            reduce,
            next_reduce: reduce.first_conflicts,
            lbd_stamp: Vec::new(),
            lbd_gen: 0,
            act_entries: HashMap::new(),
            free_acts: Vec::new(),
            leaked: Vec::new(),
            recon: None,
            elim_mask: Vec::new(),
            recon_scratch: Vec::new(),
            chaos_epoch: 0,
            chrono: None,
            dom_stash: Vec::new(),
            next_inproc: Self::INPROC_INTERVAL,
            proof_limit: None,
        }
    }

    /// Creates a solver that records a resolution proof, enabling
    /// [`interpolant`](Solver::interpolant) after an UNSAT answer.
    pub fn with_proof() -> Solver {
        let mut s = Solver::new();
        s.proof = Some(Proof::default());
        s
    }

    /// Whether proof logging is enabled.
    pub fn proof_logging(&self) -> bool {
        self.proof.is_some()
    }

    /// The recorded proof (`None` when proof logging is off).
    pub fn proof(&self) -> Option<&Proof> {
        self.proof.as_ref()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.arena_bytes = self.cdb.bytes() as u64;
        s.arena_peak_bytes = self.cdb.peak_bytes() as u64;
        if let Some(p) = &self.proof {
            s.proof_bytes = p.bytes();
            s.proof_chains = p.chains();
        }
        s
    }

    /// Caps the recorded proof at approximately `bytes` heap bytes
    /// (`None` = unbounded, the default). A solve call that pushes the
    /// proof past the cap stops and returns
    /// [`Interrupt::ProofLimit`] through the usual typed-interrupt
    /// path; everything recorded so far stays intact and checkable,
    /// and the solver remains usable (raise the cap or accept the
    /// partial proof). No effect when proof logging is off.
    pub fn set_proof_limit(&mut self, bytes: Option<u64>) {
        self.proof_limit = bytes;
    }

    /// The configured proof byte cap, if any.
    pub fn proof_limit(&self) -> Option<u64> {
        self.proof_limit
    }

    /// The current learned-clause reduction policy.
    pub fn reduce_config(&self) -> ReduceConfig {
        self.reduce
    }

    /// Replaces the learned-clause reduction policy. Lower limits make
    /// reduction (and arena compaction) happen sooner; disabling it
    /// reproduces the historical keep-everything behaviour.
    pub fn set_reduce_config(&mut self, cfg: ReduceConfig) {
        self.reduce = cfg;
        self.next_reduce = self
            .stats
            .conflicts
            .saturating_add(cfg.first_conflicts.max(1));
    }

    /// Enables or disables learned-clause reduction, keeping the other
    /// policy knobs.
    pub fn set_reduce_enabled(&mut self, enabled: bool) {
        let mut cfg = self.reduce;
        cfg.enabled = enabled;
        self.set_reduce_config(cfg);
    }

    /// Additional learned clauses between inprocessing passes.
    const INPROC_INTERVAL: u64 = 500;

    /// Sets the chronological-backtracking threshold: on a conflict
    /// whose asserting level is more than `threshold` levels below the
    /// conflict level, backtrack a single level instead of jumping all
    /// the way down — the intervening assignments are usually still
    /// consistent, and dense incremental query sequences (IC3/PDR)
    /// re-derive them constantly otherwise. `None` (the default)
    /// restores classic non-chronological backjumping. Unit learned
    /// clauses always jump to level 0 regardless (they must be
    /// asserted at the root). Counted in [`Stats::chrono_backtracks`].
    pub fn set_chrono(&mut self, threshold: Option<u32>) {
        self.chrono = threshold;
    }

    /// The current chronological-backtracking threshold.
    pub fn chrono(&self) -> Option<u32> {
        self.chrono
    }

    /// Creates `n` fresh variables and returns the first one. The
    /// block is contiguous, so callers that pre-compile a clause image
    /// over local variables (like the `aig` crate's transition
    /// template) can map it into this solver with offset arithmetic.
    pub fn new_vars(&mut self, n: usize) -> Var {
        let first = Var::from_index(self.assigns.len());
        for _ in 0..n {
            self.new_var();
        }
        first
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.levels.push(0);
        self.reasons.push(None);
        self.trail_pos.push(0);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.lbd_stamp.push(0);
        self.heap.ensure(self.assigns.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.cdb.len()
    }

    /// Whether the clause set is still possibly consistent (`false`
    /// once a top-level contradiction has been derived).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    /// The value of `l` in the model of the last `Sat` answer.
    ///
    /// Returns `None` if the last answer was not `Sat` or the variable
    /// was created afterwards.
    pub fn value(&self, l: Lit) -> Option<bool> {
        match self.model.get(l.var().index()) {
            Some(LBool::True) => Some(l.is_positive()),
            Some(LBool::False) => Some(!l.is_positive()),
            _ => None,
        }
    }

    /// The inconsistent subset of the assumptions of the last
    /// [`solve_with`](Solver::solve_with) call that returned `Unsat`.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Pre-sizes the clause arena for a batch of `clauses` clauses
    /// totalling `lits` literals, so bulk loading (e.g. reloading the
    /// blocked-cube clauses of a PDR frame) performs one allocation.
    pub fn reserve_clauses(&mut self, clauses: usize, lits: usize) {
        // 4 header words per clause; see `cdb`.
        self.cdb.reserve_words(clauses * 4 + lits);
    }

    /// Bulk-adds clauses. Callers that know the batch size call
    /// [`reserve_clauses`](Solver::reserve_clauses) first so the whole
    /// batch lands in one arena allocation.
    ///
    /// Returns `false` if the solver became inconsistent.
    pub fn add_clauses<'a, I>(&mut self, clauses: I) -> bool
    where
        I: IntoIterator<Item = &'a [Lit]>,
    {
        let mut ok = true;
        for c in clauses {
            ok = self.add_clause(c) && ok;
        }
        ok
    }

    /// Runs SatELite-style preprocessing ([`crate::preproc`]) over the
    /// current clause database with the default configuration: clause
    /// subsumption, self-subsuming resolution and bounded variable
    /// elimination, in front of the arena solver.
    ///
    /// `frozen` is the interface: variables that will be assumed,
    /// read from models, or mentioned by clauses added later must all
    /// be listed — they are never eliminated. Eliminated variables
    /// stay allocated but leave the decision pool; after a `Sat`
    /// answer their model values are reconstructed from the saved
    /// clauses, so [`value`](Solver::value) keeps working
    /// transparently.
    ///
    /// Returns `false` (a no-op) when the solver state does not admit
    /// preprocessing: a search has already learned clauses, an
    /// activation group is live, or preprocessing already ran. Proof
    /// logging is supported: every strengthening step and kept BVE
    /// resolvent is recorded as a derived resolution chain and every
    /// removed clause as a deletion, so interpolation
    /// ([`interpolant`](Solver::interpolant)) and the independent
    /// checker ([`check_proof`](Solver::check_proof)) keep working on
    /// the simplified formula.
    pub fn preprocess(&mut self, frozen: &[Var]) -> bool {
        self.preprocess_with(frozen, &crate::preproc::PreprocConfig::default())
    }

    /// [`preprocess`](Solver::preprocess) with an explicit
    /// configuration.
    pub fn preprocess_with(&mut self, frozen: &[Var], cfg: &crate::preproc::PreprocConfig) -> bool {
        if !self.ok
            || !self.trail_lim.is_empty()
            || !self.cdb.learnts().is_empty()
            || !self.act_entries.is_empty()
            || !self.leaked.is_empty()
            || self.recon.is_some()
        {
            return false;
        }
        // Under proof logging every clause keeps its recorded identity:
        // originals are fed with their proof id, part and tag, so the
        // run's derivation journal can be replayed into the proof. A
        // clause whose proof entry is already `Derived` (a resolvent
        // kept by an earlier logged run) has no stored part/tag to
        // restrict resolution with, so a repeat run is declined.
        if let Some(p) = &self.proof {
            for &c in self.cdb.originals() {
                let pid = self.cdb.proof_id(c);
                if !matches!(
                    p.clauses.get(pid.index()),
                    Some(ProofClause::Original { .. })
                ) {
                    return false;
                }
            }
        }
        let mut pre = crate::preproc::Preprocessor::new(self.num_vars());
        for &v in frozen {
            pre.freeze(v);
        }
        for &c in self.cdb.originals() {
            let lits = self.cdb.lits(c).to_vec();
            match &self.proof {
                Some(p) => {
                    let pid = self.cdb.proof_id(c);
                    let ProofClause::Original { part, .. } = &p.clauses[pid.index()] else {
                        unreachable!("checked above");
                    };
                    pre.add_clause_logged(&lits, *part, p.tags[pid.index()], pid);
                }
                None => pre.add_clause(&lits, Part::A, 0),
            }
        }
        let res = pre.run(cfg);
        // Replay the derivation journal into the proof before the
        // rebuild, so re-installed clauses can reference their ids.
        let replayed = match (&mut self.proof, &res.provenance) {
            (Some(p), Some(prov)) => Some(prov.replay(p)),
            _ => None,
        };
        self.stats.elim_vars += res.stats.elim_vars;
        self.stats.subsumed += res.stats.subsumed;
        self.stats.strengthened += res.stats.strengthened;
        // Rebuild search state from the simplified set.
        self.cdb = ClauseDb::new();
        for ws in &mut self.watches {
            ws.clear();
        }
        for a in &mut self.assigns {
            *a = LBool::Undef;
        }
        for r in &mut self.reasons {
            *r = None;
        }
        for l in &mut self.levels {
            *l = 0;
        }
        self.trail.clear();
        self.trail_lim.clear();
        self.qhead = 0;
        self.model.clear();
        self.failed.clear();
        // Eliminated variables leave the decision pool; everyone else
        // re-enters the heap via one O(n) bottom-up rebuild (not n
        // sift-up inserts over a worst-case ordered activity array).
        self.heap.ensure(self.assigns.len());
        let live = (0..self.assigns.len())
            .filter(|&i| !res.eliminated[i])
            .map(Var::from_index);
        self.heap.rebuild(live, &self.activity);
        self.recon = if res.recon.is_empty() {
            None
        } else {
            Some(res.recon)
        };
        self.elim_mask = res.eliminated;
        if res.unsat {
            self.ok = false;
            return true;
        }
        match replayed {
            Some(ids) => {
                // Re-install each surviving clause under the proof id
                // its derivation (or original registration) carries —
                // no duplicate `Original` entries are created.
                for (c, &pid) in res.clauses.iter().zip(&ids.clause_ids) {
                    if !self.install_normalized(c.lits.clone(), pid) {
                        break;
                    }
                }
            }
            None => {
                for c in &res.clauses {
                    if !self.add_clause(&c.lits) {
                        break;
                    }
                }
            }
        }
        true
    }

    /// Allocates an **activation variable** for a releasable clause
    /// group, reusing a previously released one when possible (the
    /// free-list that replaces the leak-a-var-per-query pattern of
    /// incremental IC3/PDR queries).
    ///
    /// The returned positive literal is the group's guard: add clauses
    /// with [`add_clause_activated`](Solver::add_clause_activated),
    /// enable them by assuming the literal, and retire the whole group
    /// with [`release_activation`](Solver::release_activation). The
    /// caller must only use the variable as an assumption guard — it
    /// must not occur in ordinary clauses, or release becomes unsound.
    pub fn new_activation(&mut self) -> Lit {
        let v = match self.free_acts.pop() {
            Some(v) => {
                debug_assert_eq!(self.assigns[v.index()], LBool::Undef);
                self.stats.act_recycled += 1;
                v
            }
            None => self.new_var(),
        };
        self.act_entries.insert(
            v,
            ActEntry {
                crefs: Vec::new(),
                arena_mark: self.cdb.bytes() / 4,
                gc_mark: self.stats.gcs,
            },
        );
        Lit::pos(v)
    }

    /// Adds a clause guarded by (and registered under) the activation
    /// literal `act` returned by
    /// [`new_activation`](Solver::new_activation): the stored clause is
    /// `lits ∨ ¬act`, active only while `act` is assumed.
    ///
    /// Returns `false` if the solver is now known inconsistent.
    pub fn add_clause_activated(&mut self, act: Lit, lits: &[Lit]) -> bool {
        debug_assert!(
            self.act_entries.contains_key(&act.var()),
            "activation literal not obtained from new_activation"
        );
        let mut full: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
        full.extend_from_slice(lits);
        full.push(!act);
        let before = self.cdb.originals().len();
        let ok = self.add_clause(&full);
        let added = self.cdb.originals()[before..].to_vec();
        if let Some(e) = self.act_entries.get_mut(&act.var()) {
            e.crefs.extend(added);
        }
        ok
    }

    /// [`add_clause_activated`](Solver::add_clause_activated) for
    /// clauses the caller guarantees are already normalized (pairwise
    /// distinct variables, no tautology) — the cheap cube-import path
    /// for parallel PDR, where foreign blocking clauses arrive sorted
    /// by latch index and the guard variable is fresh by construction.
    /// Skips the sort/dedup scan of the general path; the stored clause
    /// is still `lits ∨ ¬act` and registered under the group.
    ///
    /// Returns `false` if the solver is now known inconsistent.
    pub fn add_clause_activated_prenormalized(&mut self, act: Lit, lits: &[Lit]) -> bool {
        debug_assert!(
            self.act_entries.contains_key(&act.var()),
            "activation literal not obtained from new_activation"
        );
        let mut full: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
        full.extend_from_slice(lits);
        full.push(!act);
        let before = self.cdb.originals().len();
        let ok = self.add_clause_prenormalized(&full, Part::A, 0);
        let added = self.cdb.originals()[before..].to_vec();
        if let Some(e) = self.act_entries.get_mut(&act.var()) {
            e.crefs.extend(added);
        }
        ok
    }

    /// Retires an activation group: frees its registered clauses *and*
    /// every learned clause mentioning the activation variable, then
    /// returns the variable to the free-list for reuse.
    ///
    /// Why deleting exactly those clauses is sound: the activation
    /// variable appears positively only as an assumption, never in any
    /// clause, so no resolution step can eliminate its negative
    /// literal — every clause whose derivation used the guarded group
    /// still contains it. Clauses without the literal were derived
    /// from the rest of the database and remain implied.
    ///
    /// If the variable was fixed at level 0 (the guarded clause
    /// simplified to a unit) or a dependent clause is currently the
    /// reason of a level-0 assignment, the release is abandoned
    /// (counted in [`Stats::act_leaked`]) and the group goes on the
    /// leaked-release list: because the guard variable only occurs
    /// negatively, it can only ever be *fixed false*, which satisfies
    /// every clause of the group at level 0 — so the next sweep (on a
    /// restart, a reduction pass or a compaction) reclaims every
    /// member that is not pinned as the reason of a level-0
    /// assignment (a compaction prunes and forwards the list; the
    /// freeing itself happens on the solve-entry/restart/reduction
    /// sweeps). Long runs no longer accumulate dead clauses.
    ///
    /// Returns `true` when the group was freed immediately; `false`
    /// when the release was abandoned (the variable is *not* returned
    /// to the free-list then, and any caller-side scratch variables
    /// scoped to the group must not be reused).
    pub fn release_activation(&mut self, act: Lit) -> bool {
        let v = act.var();
        let Some(entry) = self.act_entries.remove(&v) else {
            return false;
        };
        debug_assert!(self.trail_lim.is_empty(), "release happens at level 0");
        let doomed = entry.crefs;
        // Learned clauses mentioning the variable can only have been
        // allocated after the group was created; skip the scan of the
        // older arena prefix unless a compaction moved things since.
        let mark = if self.stats.gcs == entry.gc_mark {
            entry.arena_mark
        } else {
            0
        };
        let mut doomed_learnts: Vec<CRef> = Vec::new();
        let learnts = self.cdb.learnts();
        // The registry is in ascending CRef order, so the pre-mark
        // prefix is skipped outright, not merely filtered.
        let start = learnts.partition_point(|c| c.index() < mark);
        for &c in &learnts[start..] {
            if self.cdb.lits(c).iter().any(|l| l.var() == v) {
                doomed_learnts.push(c);
            }
        }
        if self.assigns[v.index()] != LBool::Undef
            || doomed
                .iter()
                .chain(&doomed_learnts)
                .any(|&c| self.is_reason_clause(c))
        {
            self.stats.act_leaked += 1;
            self.leaked.push(LeakedGroup {
                origs: doomed,
                learnts: doomed_learnts,
            });
            return false;
        }
        for &c in doomed.iter().chain(&doomed_learnts) {
            self.detach(c);
            self.cdb.free(c);
            self.stats.act_released += 1;
        }
        self.cdb.remove_from_registry(false, &doomed);
        self.cdb.remove_from_registry(true, &doomed_learnts);
        self.free_acts.push(v);
        true
    }

    /// Reclaims abandoned activation groups (see
    /// [`release_activation`](Solver::release_activation)): every
    /// member clause is satisfied at level 0 by the fixed-false guard
    /// variable, so deleting it is sound at any decision level; only
    /// clauses currently serving as the reason of an assignment are
    /// kept for a later sweep. Runs on solve entry, restarts and
    /// reduction passes (compaction only prunes and forwards the
    /// leaked list).
    fn sweep_leaked(&mut self) {
        if self.leaked.is_empty() {
            return;
        }
        let mut groups = std::mem::take(&mut self.leaked);
        for g in &mut groups {
            // Reduction may have freed contaminated learned clauses on
            // its own; drop those entries before touching anything.
            g.learnts.retain(|&c| !self.cdb.is_deleted(c));
            for learnt in [false, true] {
                let list = if learnt { &g.learnts } else { &g.origs };
                let mut freed: Vec<CRef> = Vec::new();
                let mut kept: Vec<CRef> = Vec::new();
                for &c in list {
                    if self.is_reason_clause(c) {
                        kept.push(c);
                    } else {
                        freed.push(c);
                    }
                }
                for &c in &freed {
                    // Effective-unit clauses are stored unattached.
                    if self.cdb.size(c) >= 2 {
                        self.detach(c);
                    }
                    self.cdb.free(c);
                    self.stats.act_swept += 1;
                }
                self.cdb.remove_from_registry(learnt, &freed);
                if learnt {
                    g.learnts = kept;
                } else {
                    g.origs = kept;
                }
            }
        }
        groups.retain(|g| !g.origs.is_empty() || !g.learnts.is_empty());
        self.leaked = groups;
    }

    /// Adds a clause, defaulting to partition [`Part::A`] for proofs.
    ///
    /// Returns `false` if the solver is now known inconsistent.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.add_clause_in(lits, Part::A)
    }

    /// Adds a clause with an interpolation partition label.
    ///
    /// Returns `false` if the solver is now known inconsistent.
    pub fn add_clause_in(&mut self, lits: &[Lit], part: Part) -> bool {
        self.add_clause_tagged(lits, part, 0)
    }

    /// Adds a clause with a partition label and a caller tag; tags let
    /// [`interpolant_with`](Solver::interpolant_with) re-partition one
    /// refutation into a whole *sequence* of interpolants (one per
    /// time-frame cut), which is how the IMPACT-style analyzer gets
    /// chained interpolants.
    ///
    /// Returns `false` if the solver is now known inconsistent.
    pub fn add_clause_tagged(&mut self, lits: &[Lit], part: Part, tag: u32) -> bool {
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedupe, detect tautology.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        for w in ls.windows(2) {
            if w[0].var() == w[1].var() {
                return true; // tautology: x | !x
            }
        }
        self.add_normalized(ls, part, tag)
    }

    /// Adds a clause the caller guarantees is already normalized — its
    /// literals are over pairwise-distinct variables (no duplicates, no
    /// tautology). This is the bulk-load fast path for pre-compiled
    /// clause images (the `aig` transition template): no sort, no
    /// dedup, and in the common case (no proof logging, no literal
    /// already assigned) no per-clause allocation at all. Level-0
    /// simplification and watch selection are identical to
    /// [`add_clause_tagged`](Solver::add_clause_tagged).
    ///
    /// Returns `false` if the solver is now known inconsistent.
    pub fn add_clause_prenormalized(&mut self, lits: &[Lit], part: Part, tag: u32) -> bool {
        if !self.ok {
            return false;
        }
        debug_assert!(
            {
                let mut vs: Vec<Var> = lits.iter().map(|l| l.var()).collect();
                vs.sort_unstable();
                vs.windows(2).all(|w| w[0] != w[1])
            },
            "pre-normalized clause has duplicate variables: {lits:?}"
        );
        if self.proof.is_none() && lits.len() >= 2 {
            let mut any_assigned = false;
            for &l in lits {
                match self.lit_value(l) {
                    LBool::True => return true, // satisfied at top level
                    LBool::False => any_assigned = true,
                    LBool::Undef => {}
                }
            }
            if !any_assigned {
                // All literals free: watch the first two, store the
                // clause straight from the caller's slice.
                debug_assert!(self.trail_lim.is_empty(), "clauses are added at level 0");
                let cref = self.cdb.alloc(lits, false, ClauseId(0));
                self.attach(cref);
                return true;
            }
        }
        self.add_normalized(lits.to_vec(), part, tag)
    }

    /// Shared tail of the clause-add paths: level-0 simplification,
    /// proof registration, watch selection. `ls` must be normalized.
    fn add_normalized(&mut self, mut ls: Vec<Lit>, part: Part, tag: u32) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "clauses are added at level 0");
        debug_assert!(
            ls.iter().all(|l| !self
                .elim_mask
                .get(l.var().index())
                .copied()
                .unwrap_or(false)),
            "clause over a preprocessing-eliminated variable"
        );
        // Drop literals already false at level 0 only when proofs are
        // off (with proofs the drop would need extra resolution steps,
        // so we keep the clause intact and let analysis handle it).
        if self.proof.is_none() {
            if ls.iter().any(|&l| self.lit_value(l) == LBool::True) {
                return true; // satisfied at top level
            }
            ls.retain(|&l| self.lit_value(l) != LBool::False);
        }

        let pid = match &mut self.proof {
            Some(p) => p.add_original(part, ls.clone(), tag),
            None => ClauseId(0),
        };
        self.install_normalized(ls, pid)
    }

    /// Installs a normalized clause that already has a proof identity
    /// (a fresh `Original` from [`add_normalized`](Solver::add_normalized),
    /// or a kept/derived clause re-installed after proof-logged
    /// preprocessing): level-0 handling, watch selection, propagation
    /// of top-level implications.
    fn install_normalized(&mut self, mut ls: Vec<Lit>, pid: ClauseId) -> bool {
        if ls.is_empty() {
            self.ok = false;
            if let Some(p) = &mut self.proof {
                p.set_empty(pid, Vec::new());
            }
            return false;
        }

        // Choose watch positions: prefer non-false literals.
        let mut nonfalse: Vec<usize> = Vec::new();
        for (i, &l) in ls.iter().enumerate() {
            if self.lit_value(l) != LBool::False {
                nonfalse.push(i);
                if nonfalse.len() == 2 {
                    break;
                }
            }
        }
        match nonfalse.len() {
            0 => {
                // All literals false at level 0: top-level conflict.
                let cref = self.cdb.alloc(&ls, false, pid);
                self.derive_empty_from(cref);
                self.ok = false;
                false
            }
            1 => {
                // Exactly one non-false literal: a top-level implication.
                let unit = ls[nonfalse[0]];
                let cref = self.cdb.alloc(&ls, false, pid);
                if self.lit_value(unit) == LBool::Undef {
                    self.enqueue(unit, Some(cref));
                    if let Some(confl) = self.propagate() {
                        self.derive_empty_from(confl);
                        self.ok = false;
                        return false;
                    }
                }
                true
            }
            _ => {
                ls.swap(0, nonfalse[0]);
                // The first swap may have moved the second pick.
                let j = if nonfalse[1] == 0 {
                    nonfalse[0]
                } else {
                    nonfalse[1]
                };
                ls.swap(1, j);
                let cref = self.cdb.alloc(&ls, false, pid);
                self.attach(cref);
                true
            }
        }
    }

    /// Installs the two watchers of a clause (binary clauses get the
    /// inline-blocker fast path).
    fn attach(&mut self, cref: CRef) {
        let l0 = self.cdb.lit(cref, 0);
        let l1 = self.cdb.lit(cref, 1);
        let binary = self.cdb.size(cref) == 2;
        self.watches[(!l0).code()].push(Watcher::new(cref, l1, binary));
        self.watches[(!l1).code()].push(Watcher::new(cref, l0, binary));
    }

    /// Removes the two watchers of a live attached clause (positions 0
    /// and 1 always hold the currently watched literals).
    fn detach(&mut self, cref: CRef) {
        debug_assert!(self.cdb.size(cref) >= 2, "unit clauses are never attached");
        for i in 0..2 {
            let l = self.cdb.lit(cref, i);
            let ws = &mut self.watches[(!l).code()];
            if let Some(p) = ws.iter().position(|w| w.cref() == cref) {
                ws.swap_remove(p);
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<CRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.trail_pos[v] = self.trail.len();
        self.trail.push(l);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.phase[v] = l.is_positive();
            self.assigns[v] = LBool::Undef;
            self.reasons[v] = None;
            self.heap.insert(l.var(), &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut j = 0;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict: Option<CRef> = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                let bval = self.lit_value(w.blocker);
                if bval == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                if w.is_binary() {
                    // The blocker is the only other literal: propagate
                    // or conflict without reading the arena.
                    ws[j] = w;
                    j += 1;
                    if bval == LBool::False {
                        while i < ws.len() {
                            ws[j] = ws[i];
                            j += 1;
                            i += 1;
                        }
                        conflict = Some(w.cref());
                    } else {
                        self.enqueue(w.blocker, Some(w.cref()));
                    }
                    if conflict.is_some() {
                        break 'watchers;
                    }
                    continue;
                }
                let cref = w.cref();
                // Make sure the false literal is at position 1.
                let false_lit = !p;
                if self.cdb.lit(cref, 0) == false_lit {
                    self.cdb.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.cdb.lit(cref, 1), false_lit);
                let first = self.cdb.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watcher::new(cref, first, false);
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.cdb.size(cref);
                for k in 2..len {
                    let lk = self.cdb.lit(cref, k);
                    if self.lit_value(lk) != LBool::False {
                        self.cdb.swap_lits(cref, 1, k);
                        self.watches[(!lk).code()].push(Watcher::new(cref, first, false));
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = Watcher::new(cref, first, false);
                j += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: copy back remaining watchers and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bump(v, &self.activity);
    }

    /// Bumps a learned clause's reduction activity.
    fn bump_clause(&mut self, c: CRef) {
        if !self.cdb.is_learnt(c) {
            return;
        }
        let a = self.cdb.activity(c) + self.cla_inc;
        self.cdb.set_activity(c, a);
        if a > 1e20 {
            for &lc in &self.cdb.learnts().to_vec() {
                let v = self.cdb.activity(lc) * 1e-20;
                self.cdb.set_activity(lc, v);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Glucose-style dynamic LBD re-scoring: when a learned clause is
    /// used in conflict analysis (as the conflict or as a reason), its
    /// literals are all assigned, so its LBD can be recomputed against
    /// the current decision levels. A clause that has become "glue"
    /// since it was learned gets its stored LBD lowered, protecting it
    /// from the next reduction pass.
    fn rescore_lbd(&mut self, c: CRef) {
        if !self.cdb.is_learnt(c) {
            return;
        }
        let old = self.cdb.lbd(c);
        if old <= self.reduce.glue_keep {
            return; // already permanently kept
        }
        self.lbd_gen += 1;
        let mut lbd = 0u32;
        for k in 0..self.cdb.size(c) {
            let lvl = self.levels[self.cdb.lit(c, k).var().index()] as usize;
            if self.lbd_stamp[lvl] != self.lbd_gen {
                self.lbd_stamp[lvl] = self.lbd_gen;
                lbd += 1;
            }
        }
        if lbd < old {
            self.cdb.set_lbd(c, lbd);
            self.stats.lbd_improved += 1;
        }
    }

    /// Literal-block distance: number of distinct decision levels.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen += 1;
        let mut lbd = 0;
        for &l in lits {
            let lvl = self.levels[l.var().index()] as usize;
            if self.lbd_stamp[lvl] != self.lbd_gen {
                self.lbd_stamp[lvl] = self.lbd_gen;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis. Returns `(learned clause, backtrack
    /// level)`; the asserting literal is at position 0 and the
    /// highest-level remaining literal at position 1. Records a proof
    /// chain when logging is enabled.
    fn analyze(&mut self, confl: CRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot for UIP
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut clause = confl;
        let mut steps: Vec<ResStep> = Vec::new();
        let start_id = self.proof.as_ref().map(|_| self.cdb.proof_id(confl));
        // Level-0 variables whose literals were dropped; each needs a
        // resolution step against its reason clause in the proof.
        let mut level0: HashSet<Var> = HashSet::new();

        loop {
            self.bump_clause(clause);
            self.rescore_lbd(clause);
            let n = self.cdb.size(clause);
            for k in 0..n {
                let q = self.cdb.lit(clause, k);
                if Some(q) == p {
                    continue; // the literal resolved on
                }
                let v = q.var();
                if self.seen[v.index()] {
                    continue;
                }
                if self.levels[v.index()] == 0 {
                    if self.proof.is_some() {
                        level0.insert(v);
                    }
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.levels[v.index()] >= self.decision_level() {
                    path_count += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Select next literal to resolve on (latest seen on trail).
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            clause = self.reasons[pl.var().index()].expect("non-UIP literal has a reason");
            if self.proof.is_some() {
                steps.push(ResStep {
                    pivot: pl.var(),
                    other: self.cdb.proof_id(clause),
                });
            }
            p = Some(pl);
        }

        // Clause minimization: drop literals whose reason clause is
        // subsumed by the learned clause (plus level-0 literals).
        for &q in &learnt[1..] {
            self.seen[q.var().index()] = true;
        }
        let mut kept: Vec<Lit> = vec![learnt[0]];
        // (trail position, pivot var, reason cref) of removed literals,
        // recorded so proof steps can be emitted in a valid order.
        let mut removed: Vec<(usize, Var, CRef)> = Vec::new();
        for &q in &learnt[1..] {
            let vi = q.var().index();
            let removable = match self.reasons[vi] {
                None => false,
                Some(r) => self.cdb.lits(r).iter().all(|&w| {
                    w == !q || self.seen[w.var().index()] || self.levels[w.var().index()] == 0
                }),
            };
            if removable {
                let r = self.reasons[vi].expect("checked above");
                removed.push((self.trail_pos[vi], q.var(), r));
            } else {
                kept.push(q);
            }
        }
        for &q in &learnt[1..] {
            self.seen[q.var().index()] = false;
        }

        if self.proof.is_some() {
            // Minimization resolutions must run latest-assigned first so
            // no resolved literal is ever re-introduced.
            removed.sort_by_key(|r| std::cmp::Reverse(r.0));
            for &(_, v, r) in &removed {
                steps.push(ResStep {
                    pivot: v,
                    other: self.cdb.proof_id(r),
                });
                for k in 0..self.cdb.size(r) {
                    let w = self.cdb.lit(r, k);
                    if self.levels[w.var().index()] == 0 {
                        level0.insert(w.var());
                    }
                }
            }
            // Resolve away dropped level-0 literals, transitively,
            // also latest-assigned first.
            let mut l0: Vec<Var> = level0.iter().copied().collect();
            let mut qi = 0;
            while qi < l0.len() {
                let v = l0[qi];
                qi += 1;
                let r = self.reasons[v.index()].expect("level-0 assignment has a clause reason");
                for k in 0..self.cdb.size(r) {
                    let w = self.cdb.lit(r, k);
                    let wv = w.var();
                    if self.lit_value(w) == LBool::False
                        && self.levels[wv.index()] == 0
                        && level0.insert(wv)
                    {
                        l0.push(wv);
                    }
                }
            }
            l0.sort_by(|a, b| self.trail_pos[b.index()].cmp(&self.trail_pos[a.index()]));
            for v in l0 {
                let r = self.reasons[v.index()].expect("level-0 assignment has a clause reason");
                steps.push(ResStep {
                    pivot: v,
                    other: self.cdb.proof_id(r),
                });
            }
            if let (Some(proof), Some(sid)) = (&mut self.proof, start_id) {
                proof.add_derived(sid, steps);
            }
        }

        let mut learnt = kept;
        // Backtrack level: second-highest level in the clause; move that
        // literal to position 1 (it becomes the second watch).
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    /// Derives the empty clause from a conflict at decision level 0.
    fn derive_empty_from(&mut self, confl: CRef) {
        if self.proof.is_none() {
            return;
        }
        let start = self.cdb.proof_id(confl);
        let mut set: HashSet<Var> = HashSet::new();
        let mut queue: Vec<Var> = Vec::new();
        for &l in self.cdb.lits(confl) {
            if set.insert(l.var()) {
                queue.push(l.var());
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let v = queue[qi];
            qi += 1;
            let r = self.reasons[v.index()].expect("level-0 assignment has a clause reason");
            for k in 0..self.cdb.size(r) {
                let w = self.cdb.lit(r, k);
                if self.lit_value(w) == LBool::False && set.insert(w.var()) {
                    queue.push(w.var());
                }
            }
        }
        queue.sort_by(|a, b| self.trail_pos[b.index()].cmp(&self.trail_pos[a.index()]));
        let steps: Vec<ResStep> = queue
            .into_iter()
            .map(|v| ResStep {
                pivot: v,
                other: self
                    .cdb
                    .proof_id(self.reasons[v.index()].expect("has reason")),
            })
            .collect();
        if let Some(p) = &mut self.proof {
            p.set_empty(start, steps);
        }
    }

    fn learn(&mut self, learnt: Vec<Lit>, proof_id: ClauseId) -> CRef {
        let lbd = self.compute_lbd(&learnt);
        let cref = self.cdb.alloc(&learnt, true, proof_id);
        self.cdb.set_lbd(cref, lbd);
        self.cdb.set_activity(cref, self.cla_inc);
        if learnt.len() >= 2 {
            self.attach(cref);
        }
        self.stats.learned += 1;
        cref
    }

    /// Whether a clause is the reason of a current assignment (deleting
    /// it would dangle the trail).
    fn is_locked(&self, c: CRef) -> bool {
        let l0 = self.cdb.lit(c, 0);
        self.lit_value(l0) == LBool::True && self.reasons[l0.var().index()] == Some(c)
    }

    /// Like [`is_locked`](Solver::is_locked) but checks every literal:
    /// clauses that became unit during `add` can be the reason of a
    /// literal that is not at position 0.
    fn is_reason_clause(&self, c: CRef) -> bool {
        (0..self.cdb.size(c)).any(|k| {
            let l = self.cdb.lit(c, k);
            self.lit_value(l) == LBool::True && self.reasons[l.var().index()] == Some(c)
        })
    }

    /// Lightweight inprocessing, run between solve calls at level 0:
    /// backward subsumption of the *original* image by learned
    /// clauses. A learned clause whose literals are a subset of an
    /// original's makes that original redundant — common in
    /// incremental model checking, where the search keeps re-deriving
    /// sharper versions of the transition-relation clauses it actually
    /// uses. The subsumed original is deleted and the learned clause
    /// is **promoted to original status** in its place, so a later
    /// reduction pass can never drop the only remaining copy of the
    /// constraint. Counted in [`Stats::inproc_subsumed`].
    ///
    /// Skipped whenever the bookkeeping could be invalidated: proof
    /// logging (original clauses anchor resolution chains), live or
    /// leaked activation groups (their registries hold `CRef`s into
    /// the original registry), or an inconsistent solver. Clauses
    /// serving as level-0 reasons are never removed.
    fn inprocess(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "inprocessing above level 0");
        if self.proof.is_some()
            || !self.ok
            || !self.act_entries.is_empty()
            || !self.leaked.is_empty()
        {
            return;
        }
        let learnts: Vec<CRef> = self.cdb.learnts().to_vec();
        if learnts.is_empty() {
            return;
        }
        // Signature: a 64-bit Bloom word over variable indices; L can
        // only subsume O when sig(L) & !sig(O) == 0.
        let sig = |db: &ClauseDb, c: CRef| {
            db.lits(c)
                .iter()
                .fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64))
        };
        // Occurrence lists over the original image, each entry
        // carrying the clause's signature and size so most candidates
        // are rejected without touching its literals.
        let mut occ: Vec<Vec<(CRef, u64, u32)>> = vec![Vec::new(); 2 * self.num_vars()];
        for &c in self.cdb.originals() {
            let s = sig(&self.cdb, c);
            let n = self.cdb.size(c) as u32;
            if n < 2 {
                continue; // a unit original is subsumable only by its twin
            }
            for &l in self.cdb.lits(c) {
                occ[l.code()].push((c, s, n));
            }
        }
        // Mark-based subset test over unsorted literal arrays.
        let mut mark = vec![0u32; 2 * self.num_vars()];
        let mut gen = 0u32;
        let mut doomed: Vec<CRef> = Vec::new();
        for &lc in &learnts {
            if self.cdb.is_deleted(lc) || !self.cdb.is_learnt(lc) {
                continue; // deleted earlier, or already promoted
            }
            let lsig = sig(&self.cdb, lc);
            let lsize = self.cdb.size(lc) as u32;
            // Probe the shortest occurrence list among L's literals.
            let Some(&probe) = self.cdb.lits(lc).iter().min_by_key(|l| occ[l.code()].len()) else {
                continue;
            };
            gen += 1;
            for &l in self.cdb.lits(lc) {
                mark[l.code()] = gen;
            }
            let mut promoted = false;
            for i in 0..occ[probe.code()].len() {
                let (oc, osig, osize) = occ[probe.code()][i];
                if osize < lsize || lsig & !osig != 0 || self.cdb.is_deleted(oc) {
                    continue;
                }
                // L ⊆ O iff every one of O's marked literals accounts
                // for one of L's (both are duplicate-free).
                let hits = self
                    .cdb
                    .lits(oc)
                    .iter()
                    .filter(|l| mark[l.code()] == gen)
                    .count() as u32;
                if hits < lsize {
                    continue;
                }
                if self.is_reason_clause(oc) {
                    continue; // deleting it would dangle the trail
                }
                self.detach(oc);
                self.cdb.free(oc);
                doomed.push(oc);
                self.stats.inproc_subsumed += 1;
                if !promoted {
                    self.cdb.promote_to_original(lc);
                    promoted = true;
                }
            }
        }
        if !doomed.is_empty() {
            doomed.sort_unstable();
            self.cdb.remove_from_registry(false, &doomed);
            if self.cdb.should_collect() {
                self.collect_garbage();
            }
        }
    }

    /// Learned-clause reduction: deletes the worse half of the
    /// deletable learned clauses (high LBD, low activity), keeping
    /// binary, glue and locked clauses, then compacts the arena when
    /// enough of it is garbage. Proof records are untouched — see the
    /// type-level docs.
    fn reduce_db(&mut self) {
        self.stats.reduces += 1;
        self.sweep_leaked();
        let glue_keep = self.reduce.glue_keep;
        let mut deletable: Vec<CRef> = Vec::new();
        let mut kept: Vec<CRef> = Vec::new();
        for &c in self.cdb.learnts() {
            if self.cdb.size(c) <= 2 || self.cdb.lbd(c) <= glue_keep || self.is_locked(c) {
                kept.push(c);
            } else {
                deletable.push(c);
            }
        }
        // Delete the worse half: highest LBD first, lowest activity as
        // the tie-break.
        deletable.sort_by(|&a, &b| {
            self.cdb.lbd(a).cmp(&self.cdb.lbd(b)).then(
                self.cdb
                    .activity(b)
                    .partial_cmp(&self.cdb.activity(a))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let keep_n = deletable.len() / 2;
        for (i, &c) in deletable.iter().enumerate() {
            if i < keep_n {
                kept.push(c);
            } else {
                self.cdb.free(c);
                self.stats.deleted += 1;
            }
        }
        let deleted_any = kept.len() != self.cdb.learnts().len();
        kept.sort_unstable(); // restore insertion (arena) order
        self.cdb.set_learnts(kept);
        if deleted_any {
            // Drop watchers of deleted clauses in one sweep.
            for ws in &mut self.watches {
                ws.retain(|w| !self.cdb.is_deleted(w.cref()));
            }
        }
        if self.cdb.should_collect() {
            self.collect_garbage();
        }
    }

    /// Compacts the clause arena and remaps every watcher and reason.
    fn collect_garbage(&mut self) {
        // Leaked-release entries freed since the last sweep (by the
        // sweep itself or by reduction) must be pruned before
        // compaction; the survivors are live registry members and get
        // forwarded like everything else.
        let mut leaked = std::mem::take(&mut self.leaked);
        for g in &mut leaked {
            g.origs.retain(|&c| !self.cdb.is_deleted(c));
            g.learnts.retain(|&c| !self.cdb.is_deleted(c));
        }
        leaked.retain(|g| !g.origs.is_empty() || !g.learnts.is_empty());
        self.leaked = leaked;
        let reloc = self.cdb.collect();
        for ws in &mut self.watches {
            for w in ws.iter_mut() {
                *w = Watcher::new(reloc.forward(w.cref()), w.blocker, w.is_binary());
            }
        }
        for c in self.reasons.iter_mut().flatten() {
            *c = reloc.forward(*c);
        }
        for e in self.act_entries.values_mut() {
            for c in e.crefs.iter_mut() {
                *c = reloc.forward(*c);
            }
        }
        for g in &mut self.leaked {
            for c in g.origs.iter_mut().chain(g.learnts.iter_mut()) {
                *c = reloc.forward(*c);
            }
        }
        self.stats.gcs += 1;
    }

    /// Runs a reduction pass immediately (test hook; normal operation
    /// triggers reduction from the conflict count).
    #[doc(hidden)]
    pub fn debug_force_reduce(&mut self) {
        self.reduce_db();
    }

    /// Compacts the arena immediately (test hook).
    #[doc(hidden)]
    pub fn debug_force_gc(&mut self) {
        self.collect_garbage();
    }

    /// Runs an inprocessing pass immediately (test hook; normal
    /// operation triggers it from the learned-clause count at solve
    /// entry).
    #[doc(hidden)]
    pub fn debug_force_inprocess(&mut self) {
        self.backtrack(0);
        self.inprocess();
    }

    /// Replays every live clause against the current watch lists and
    /// reasons, checking referential integrity (test hook).
    #[doc(hidden)]
    pub fn debug_check_integrity(&self) -> Result<(), String> {
        for ws in &self.watches {
            for w in ws {
                if self.cdb.is_deleted(w.cref()) {
                    return Err(format!("watcher references deleted clause {:?}", w.cref()));
                }
                if w.is_binary() != (self.cdb.size(w.cref()) == 2) {
                    return Err("binary flag disagrees with clause size".into());
                }
            }
        }
        for (v, r) in self.reasons.iter().enumerate() {
            if let Some(c) = r {
                if self.cdb.is_deleted(*c) {
                    return Err(format!("reason of var {v} references deleted clause"));
                }
            }
        }
        Ok(())
    }

    /// Re-derives the model values of preprocessing-eliminated
    /// variables from the reconstruction stack (no-op otherwise). The
    /// scratch buffer is reused across `Sat` answers, so the only
    /// per-call cost beyond the existing model clone is one copy.
    fn extend_model_over_eliminated(&mut self) {
        let Some(recon) = &self.recon else { return };
        let vals = &mut self.recon_scratch;
        vals.clear();
        vals.extend(self.model.iter().map(|&b| b == LBool::True));
        recon.extend(vals);
        for v in recon.vars() {
            self.model[v.index()] = LBool::from_bool(vals[v.index()]);
        }
    }

    /// Picks the next decision literal. Under a domain, out-of-domain
    /// variables popped off the heap are parked in `dom_stash` (not
    /// re-inserted, so each is popped at most once per call) and the
    /// search is over once the heap holds no in-domain variable —
    /// every unassigned variable is always in the heap or the stash,
    /// so an empty pop means the domain is fully assigned.
    fn pick_branch(&mut self, domain: Option<&Domain>) -> Option<Lit> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()] != LBool::Undef {
                continue;
            }
            if let Some(d) = domain {
                if !d.contains(v) {
                    self.dom_stash.push(v);
                    self.stats.domain_skipped += 1;
                    continue;
                }
                self.stats.domain_decisions += 1;
            }
            return Some(Lit::new(v, self.phase[v.index()]));
        }
        None
    }

    /// Collects the subset of assumptions responsible for forcing `p`
    /// false (`p` itself is included).
    fn analyze_final(&mut self, p: Lit) {
        self.failed.clear();
        self.failed.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        let bound = self.trail_lim[0];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reasons[v.index()] {
                None => {
                    // A decision in the assumption prefix is an assumption.
                    if l != p {
                        self.failed.push(l);
                    }
                }
                Some(r) => {
                    for k in 0..self.cdb.size(r) {
                        let w = self.cdb.lit(r, k);
                        if self.levels[w.var().index()] > 0 {
                            self.seen[w.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// Solves the current formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(&[], Limits::default())
    }

    /// Solves under the given assumption literals.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, Limits::default())
    }

    /// Solves under assumptions with resource limits.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: Limits) -> SolveResult {
        self.solve_core(assumptions, limits, None)
    }

    /// Solves under assumptions and limits, restricting decisions to
    /// `domain` (see the crate docs' "Query scoping" section and the
    /// [`crate::domain`] module for the soundness contract). The call
    /// answers `Sat` as soon as every in-domain variable is assigned;
    /// out-of-domain variables may be left unassigned, in which case
    /// [`value`](Solver::value) returns `None` for them. Every
    /// assumption variable must be in the domain. `Unsat` answers and
    /// failed-assumption cores carry no extra conditions.
    pub fn solve_with_domain(
        &mut self,
        assumptions: &[Lit],
        limits: Limits,
        domain: &Domain,
    ) -> SolveResult {
        debug_assert!(
            assumptions.iter().all(|l| domain.contains(l.var())),
            "assumption variable outside the query domain"
        );
        let r = self.solve_core(assumptions, limits, Some(domain));
        // Single restore point covering every exit path of the core
        // (Sat, Unsat, limits, cancellation, injected faults): parked
        // variables re-enter the decision heap so later calls — with
        // another domain or none — see the full pool again. `insert`
        // is idempotent, so a parked variable that was propagated and
        // then re-inserted by the final backtrack is not duplicated.
        while let Some(v) = self.dom_stash.pop() {
            self.heap.insert(v, &self.activity);
        }
        r
    }

    fn solve_core(
        &mut self,
        assumptions: &[Lit],
        limits: Limits,
        domain: Option<&Domain>,
    ) -> SolveResult {
        debug_assert!(self.dom_stash.is_empty(), "stale domain stash");
        self.backtrack(0);
        self.sweep_leaked();
        self.model.clear();
        self.failed.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert!(
            assumptions.iter().all(|l| !self
                .elim_mask
                .get(l.var().index())
                .copied()
                .unwrap_or(false)),
            "assumption over a preprocessing-eliminated variable"
        );
        if let Some(confl) = self.propagate() {
            self.derive_empty_from(confl);
            self.ok = false;
            return SolveResult::Unsat;
        }
        if self.stats.learned >= self.next_inproc {
            self.next_inproc = self.stats.learned + Self::INPROC_INTERVAL;
            self.inprocess();
        }

        let limit_base = self.stats.conflicts;
        let mut restart_base = self.stats.conflicts;
        let mut restart_count = 0u64;
        let mut restart_budget = luby(restart_count) * 100;
        let chaos_at = limits.chaos.as_ref().map(|c| {
            self.chaos_epoch += 1;
            c.threshold(self.chaos_epoch)
        });

        loop {
            if limits.stop_requested() {
                self.backtrack(0);
                return SolveResult::Unknown(Interrupt::Cancelled);
            }
            if let Some(at) = chaos_at {
                if self.stats.conflicts - limit_base >= at {
                    self.stats.chaos_injected += 1;
                    self.backtrack(0);
                    return SolveResult::Unknown(Interrupt::Cancelled);
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.derive_empty_from(confl);
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                let pid = self
                    .proof
                    .as_ref()
                    .map_or(ClauseId(0), |p| ClauseId((p.len() - 1) as u32));
                // Chronological backtracking: when the asserting level
                // is far below the conflict level, the intervening
                // levels are usually still consistent with the learnt
                // clause — step back one level and keep them instead
                // of re-deriving the whole prefix. Unit learnt clauses
                // are exempt: they carry no second watch and must be
                // asserted at level 0, or the constraint would be
                // silently lost on the next backtrack.
                let jump = match self.chrono {
                    Some(t) if learnt.len() > 1 && self.decision_level() - bt > t => {
                        self.stats.chrono_backtracks += 1;
                        self.decision_level() - 1
                    }
                    _ => bt,
                };
                self.backtrack(jump);
                let asserting = learnt[0];
                let cref = self.learn(learnt, pid);
                debug_assert_eq!(self.lit_value(asserting), LBool::Undef);
                self.enqueue(asserting, Some(cref));
                self.var_inc /= 0.95;
                self.cla_inc *= 1.001;

                if self.reduce.enabled && self.stats.conflicts >= self.next_reduce {
                    self.reduce_db();
                    self.next_reduce = self.stats.conflicts + self.reduce.conflicts_inc;
                }
                if self.stats.conflicts - restart_base >= restart_budget {
                    restart_count += 1;
                    restart_budget = luby(restart_count) * 100;
                    restart_base = self.stats.conflicts;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                    self.sweep_leaked();
                }
                if let Some(mc) = limits.max_conflicts {
                    if self.stats.conflicts - limit_base >= mc {
                        self.backtrack(0);
                        return SolveResult::Unknown(Interrupt::ConflictLimit);
                    }
                }
                if let (Some(cap), Some(p)) = (self.proof_limit, &self.proof) {
                    if p.bytes() > cap {
                        self.backtrack(0);
                        return SolveResult::Unknown(Interrupt::ProofLimit);
                    }
                }
                if self.stats.conflicts.is_multiple_of(64) {
                    if let Some(d) = limits.deadline {
                        if Instant::now() >= d {
                            self.backtrack(0);
                            return SolveResult::Unknown(Interrupt::Timeout);
                        }
                    }
                }
            } else {
                // No conflict: place assumptions first, then decide.
                let next = loop {
                    let dl = self.decision_level() as usize;
                    if dl < assumptions.len() {
                        let a = assumptions[dl];
                        match self.lit_value(a) {
                            LBool::True => {
                                self.new_decision_level();
                                continue;
                            }
                            LBool::False => {
                                self.analyze_final(a);
                                self.backtrack(0);
                                return SolveResult::Unsat;
                            }
                            LBool::Undef => break Some(a),
                        }
                    }
                    break None;
                };
                let decision = match next {
                    Some(a) => Some(a),
                    None => {
                        self.stats.decisions += 1;
                        self.pick_branch(domain)
                    }
                };
                match decision {
                    None => {
                        // All (decidable) variables assigned: SAT.
                        self.model = self.assigns.clone();
                        self.extend_model_over_eliminated();
                        self.backtrack(0);
                        return SolveResult::Sat;
                    }
                    Some(l) => {
                        self.new_decision_level();
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Computes a Craig interpolant after an UNSAT answer of a
    /// proof-logging solver: a formula `I` over the variables shared by
    /// the `A`- and `B`-labelled clauses with `A ⇒ I` and `I ∧ B`
    /// unsatisfiable.
    ///
    /// Returns `None` if proof logging is off or no UNSAT answer has
    /// been derived. Interpolants are only meaningful for solves
    /// without assumptions.
    pub fn interpolant(&self) -> Option<crate::interp::Interpolant> {
        let proof = self.proof.as_ref()?;
        proof.empty_clause()?;
        Some(crate::interp::Interpolant::from_proof(proof))
    }

    /// Like [`interpolant`](Solver::interpolant), but re-partitions the
    /// original clauses by their tags: `is_a(tag)` assigns each tagged
    /// clause to the `A` side. Extracting interpolants for successive
    /// cuts of one unrolled refutation this way yields *sequence
    /// interpolants* satisfying `I_c ∧ T_c ⇒ I_{c+1}`.
    pub fn interpolant_with(
        &self,
        is_a: impl Fn(u32) -> bool,
    ) -> Option<crate::interp::Interpolant> {
        let proof = self.proof.as_ref()?;
        proof.empty_clause()?;
        Some(crate::interp::Interpolant::from_proof_with(proof, &is_a))
    }

    /// Independently re-checks the recorded proof with
    /// [`crate::proofcheck`]: replays every derivation chain
    /// (antecedent existence, resolution validity, tag consistency,
    /// deletion sanity, the final empty-clause chain if one was
    /// derived) and cross-checks every clause currently live in the
    /// clause database against the literal set its recorded derivation
    /// yields. Returns `None` when proof logging is off.
    ///
    /// This is the `paranoid`-mode entry point: a clean
    /// [`ProofReport`](crate::proofcheck::ProofReport) means the
    /// solver's UNSAT reasoning is backed by a machine-checked
    /// resolution proof, not just trusted.
    pub fn check_proof(&self) -> Option<crate::proofcheck::ProofReport> {
        let proof = self.proof.as_ref()?;
        let mut checker = crate::proofcheck::ProofChecker::new(proof);
        for &c in self.cdb.originals().iter().chain(self.cdb.learnts()) {
            checker.check_learnt(self.cdb.proof_id(c), self.cdb.lits(c));
        }
        Some(checker.finish())
    }

    /// Replays all recorded resolution chains and checks that each
    /// live clause matches its recorded derivation, and that the
    /// empty-clause chain actually derives the empty clause. Learned
    /// clauses deleted by reduction keep their derivations in the
    /// proof (the chains may be referenced by later derivations), so
    /// deletion never invalidates this check.
    ///
    /// Test-suite convenience over [`check_proof`](Solver::check_proof),
    /// reporting the first failure as an `Err`.
    #[doc(hidden)]
    pub fn debug_verify_proof(&self) -> Result<(), String> {
        match self.check_proof() {
            None => Ok(()),
            Some(r) => match r.first_failure() {
                None => Ok(()),
                Some(f) => Err(f),
            },
        }
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
fn luby(i: u64) -> u64 {
    // MiniSAT's formulation: find the finite subsequence containing
    // index i (0-based) and the position within it.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    fn lit(s: &mut Solver, i: usize, pos: bool) -> Lit {
        while s.num_vars() <= i {
            s.new_var();
        }
        Lit::new(Var::from_index(i), pos)
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        assert!(s.add_clause(&[a]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
        s.add_clause(&[!a]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        assert!(s.add_clause(&[a, !a]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn xor_chain_sat() {
        let mut s = Solver::new();
        let x: Vec<Lit> = (0..3).map(|i| lit(&mut s, i, true)).collect();
        // Odd parity of three variables.
        s.add_clause(&[x[0], x[1], x[2]]);
        s.add_clause(&[x[0], !x[1], !x[2]]);
        s.add_clause(&[!x[0], x[1], !x[2]]);
        s.add_clause(&[!x[0], !x[1], x[2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let ones = x.iter().filter(|&&l| s.value(l) == Some(true)).count();
        assert_eq!(ones % 2, 1);
    }

    /// Pigeonhole principle PHP(n+1, n): always UNSAT, forces real
    /// clause learning and restarts.
    pub(crate) fn pigeonhole(s: &mut Solver, holes: usize) {
        let pigeons = holes + 1;
        let var = |p: usize, h: usize| p * holes + h;
        while s.num_vars() < pigeons * holes {
            s.new_var();
        }
        for p in 0..pigeons {
            let c: Vec<Lit> = (0..holes)
                .map(|h| Lit::pos(Var::from_index(var(p, h))))
                .collect();
            s.add_clause(&c);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[
                        Lit::neg(Var::from_index(var(p1, h))),
                        Lit::neg(Var::from_index(var(p2, h))),
                    ]);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=6 {
            let mut s = Solver::new();
            pigeonhole(&mut s, holes);
            assert_eq!(
                s.solve(),
                SolveResult::Unsat,
                "PHP({},{})",
                holes + 1,
                holes
            );
        }
    }

    #[test]
    fn pigeonhole_proof_is_valid() {
        for holes in 2..=5 {
            let mut s = Solver::with_proof();
            pigeonhole(&mut s, holes);
            assert_eq!(s.solve(), SolveResult::Unsat);
            assert!(s.proof().expect("proof").empty_clause().is_some());
            s.debug_verify_proof().expect("proof replays correctly");
        }
    }

    #[test]
    fn sat_proof_mode_clauses_replay() {
        // Even in SAT instances, the recorded derivations of learned
        // clauses must replay exactly.
        let mut s = Solver::with_proof();
        let x: Vec<Lit> = (0..6).map(|i| lit(&mut s, i, true)).collect();
        for i in 0..4 {
            s.add_clause(&[x[i], x[i + 1], !x[(i + 2) % 6]]);
            s.add_clause(&[!x[i], !x[i + 1], x[(i + 3) % 6]]);
        }
        let _ = s.solve();
        s.debug_verify_proof().expect("derivations replay");
    }

    #[test]
    fn assumptions_and_core() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        let c = lit(&mut s, 2, true);
        s.add_clause(&[!a, !b]); // a & b inconsistent
        assert_eq!(s.solve_with(&[a, c, b]), SolveResult::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.iter().all(|l| [a, b, c].contains(l)));
        assert!(core.contains(&b) || core.contains(&a));
        // Without the conflicting pair it is satisfiable.
        assert_eq!(s.solve_with(&[a, c]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(false));
        // The solver stays usable without assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumption_conflicts_with_unit() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        s.add_clause(&[!a]);
        assert_eq!(s.solve_with(&[a]), SolveResult::Unsat);
        assert_eq!(s.failed_assumptions(), &[a]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn failed_assumption_core_is_unsat_core() {
        // chain: a -> b -> c, assume a and !c: core must contain both.
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        let c = lit(&mut s, 2, true);
        s.add_clause(&[!a, b]);
        s.add_clause(&[!b, c]);
        assert_eq!(s.solve_with(&[a, !c]), SolveResult::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&a) && core.contains(&!c), "core: {core:?}");
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 8);
        let r = s.solve_limited(
            &[],
            Limits {
                max_conflicts: Some(5),
                ..Limits::default()
            },
        );
        assert_eq!(r, SolveResult::Unknown(Interrupt::ConflictLimit));
        let r2 = s.solve_limited(&[], Limits::default());
        assert_eq!(r2, SolveResult::Unsat);
    }

    #[test]
    fn chaos_injects_cancellation_and_retry_recovers() {
        let chaos = Chaos {
            seed: 42,
            period: 4,
        };
        let mut s = Solver::new();
        pigeonhole(&mut s, 8);
        let limits = Limits {
            chaos: Some(chaos),
            ..Limits::default()
        };
        // Pigeonhole-8 needs far more than `period` conflicts, so every
        // chaos run must get cut down mid-solve.
        let mut injected = 0;
        loop {
            match s.solve_limited(&[], limits.clone()) {
                SolveResult::Unknown(Interrupt::Cancelled) => injected += 1,
                SolveResult::Unsat if injected > 0 => break,
                r => panic!("unexpected chaos-run answer {r:?} after {injected} faults"),
            }
            // Learned clauses accumulate across retries, so the solve
            // eventually finishes inside the injected budget.
            if injected > 10_000 {
                // Fall back to a clean run; chaos must not corrupt state.
                assert_eq!(s.solve_limited(&[], Limits::default()), SolveResult::Unsat);
                break;
            }
        }
        assert!(injected >= 1, "chaos never fired");
        assert_eq!(s.stats().chaos_injected, injected);

        // Same seed, fresh solver: the schedule replays identically.
        let mut a = Solver::new();
        let mut b = Solver::new();
        pigeonhole(&mut a, 7);
        pigeonhole(&mut b, 7);
        let ra = a.solve_limited(&[], limits.clone());
        let rb = b.solve_limited(&[], limits.clone());
        assert_eq!(ra, rb);
        assert_eq!(a.stats().conflicts, b.stats().conflicts);
    }

    #[test]
    fn stop_flag_cancels_promptly() {
        // A pre-raised stop flag must end the solve within one loop
        // iteration: no conflicts may be accumulated at all.
        let mut s = Solver::new();
        pigeonhole(&mut s, 9);
        let stop = Arc::new(AtomicBool::new(true));
        let before = s.stats().conflicts;
        let r = s.solve_limited(
            &[],
            Limits {
                stop: Some(stop.clone()),
                ..Limits::default()
            },
        );
        assert_eq!(r, SolveResult::Unknown(Interrupt::Cancelled));
        assert!(
            s.stats().conflicts - before <= 1,
            "cancelled solve must stop within one conflict-check interval"
        );

        // Raising the flag from another thread mid-solve also stops a
        // run that would otherwise grind for a long time.
        stop.store(false, Ordering::Relaxed);
        let flag = stop.clone();
        let t0 = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            flag.store(true, Ordering::Relaxed);
        });
        let r = s.solve_limited(
            &[],
            Limits {
                stop: Some(stop.clone()),
                ..Limits::default()
            },
        );
        handle.join().unwrap();
        if r == SolveResult::Unknown(Interrupt::Cancelled) {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(10),
                "cancellation must not be ignored"
            );
        } else {
            // The instance may occasionally finish before the flag is
            // raised; any definite answer is acceptable then.
            assert_ne!(r, SolveResult::Unknown(Interrupt::Timeout));
        }
        // The solver stays usable after a cancelled call.
        let r2 = s.solve_limited(
            &[],
            Limits {
                max_conflicts: Some(10),
                ..Limits::default()
            },
        );
        assert!(matches!(
            r2,
            SolveResult::Unsat | SolveResult::Unknown(Interrupt::ConflictLimit)
        ));
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(luby(i as u64), w, "luby({i})");
        }
    }

    #[test]
    fn reduction_kicks_in_on_hard_instances() {
        let mut s = Solver::new();
        s.set_reduce_config(ReduceConfig {
            enabled: true,
            first_conflicts: 100,
            conflicts_inc: 100,
            glue_keep: 2,
        });
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.reduces > 0, "expected reduction passes: {st:?}");
        assert!(st.deleted > 0, "expected deleted clauses: {st:?}");
        assert!(st.arena_peak_bytes > 0);
        s.debug_check_integrity().expect("intact after reduction");
    }

    #[test]
    fn reduction_with_proof_keeps_interpolation_sound() {
        let mut s = Solver::with_proof();
        s.set_reduce_config(ReduceConfig {
            enabled: true,
            first_conflicts: 50,
            conflicts_inc: 50,
            glue_keep: 1,
        });
        pigeonhole(&mut s, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().reduces > 0, "reduction must have run");
        s.debug_verify_proof().expect("proof survives reduction");
        assert!(s.interpolant().is_some());
    }

    /// The PR-4 backlog bugfix: an abandoned activation release must
    /// not leave its (level-0-satisfied) clauses in the arena forever.
    /// The next backtrack-to-level-0 sweep reclaims everything except
    /// the clause still serving as the level-0 reason of the guard.
    #[test]
    fn leaked_activation_groups_swept_after_restart() {
        let mut s = Solver::new();
        let y = lit(&mut s, 0, true);
        let z1 = lit(&mut s, 1, true);
        let z2 = lit(&mut s, 2, true);
        let act = s.new_activation();
        assert!(s.add_clause_activated(act, &[y]));
        assert!(s.add_clause_activated(act, &[z1, z2]));
        assert!(s.add_clause_activated(act, &[!z1, !z2]));
        // Force ¬y at level 0: the guarded clause [y, ¬act] becomes
        // unit and fixes the activation variable, so the release must
        // take the abandon path.
        assert!(s.add_clause(&[!y]));
        assert!(!s.release_activation(act), "release must be abandoned");
        assert_eq!(s.stats().act_leaked, 1);
        assert_eq!(s.stats().act_swept, 0);
        let before = s.num_clauses();
        // The next solve backtracks to level 0 and sweeps: the two
        // satisfied guarded clauses are reclaimed; the level-0 reason
        // of ¬act stays (it pins the assignment forever).
        assert_eq!(s.solve(), SolveResult::Sat);
        let st = s.stats();
        assert_eq!(st.act_swept, 2, "satisfied group clauses reclaimed");
        assert_eq!(s.num_clauses(), before - 2);
        s.debug_check_integrity().expect("intact after sweep");
        // A second sweep finds nothing new and the solver stays sound.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.stats().act_swept, 2);
        assert_eq!(s.value(y), Some(false));
    }

    /// Sweeping must also run inside reduction passes and survive
    /// compaction (leaked references are pruned/forwarded).
    #[test]
    fn leaked_groups_survive_reduce_and_gc() {
        let mut s = Solver::new();
        let base = s.num_vars();
        pigeonhole(&mut s, 6);
        let y = lit(&mut s, base + 50, true);
        let z1 = lit(&mut s, base + 51, true);
        let z2 = lit(&mut s, base + 52, true);
        let act = s.new_activation();
        assert!(s.add_clause_activated(act, &[y]));
        assert!(s.add_clause_activated(act, &[z1, z2]));
        assert!(s.add_clause(&[!y]));
        assert!(!s.release_activation(act));
        s.set_reduce_config(ReduceConfig {
            enabled: true,
            first_conflicts: 50,
            conflicts_inc: 50,
            glue_keep: 2,
        });
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.act_swept >= 1, "sweep reclaimed the satisfied clause");
        s.debug_force_gc();
        s.debug_check_integrity().expect("intact after sweep + GC");
    }

    #[test]
    fn preprocess_equisat_on_random_cnf() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x9E7A);
        for round in 0..120 {
            let nvars = rng.gen_range(2..=9usize);
            let nfrozen = rng.gen_range(1..=nvars);
            let mut raw = Solver::new();
            let mut pre = Solver::new();
            for _ in 0..nvars {
                raw.new_var();
                pre.new_var();
            }
            let mut cnf: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..rng.gen_range(1..=24usize) {
                let len = rng.gen_range(1..=3usize);
                let cl: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                    .collect();
                raw.add_clause(&cl);
                pre.add_clause(&cl);
                cnf.push(cl);
            }
            let frozen: Vec<Var> = (0..nfrozen).map(Var::from_index).collect();
            if !pre.preprocess(&frozen) {
                // Only a formula already refuted at add time declines.
                assert!(!pre.is_ok(), "round {round}: preprocess must run");
                assert_eq!(raw.solve(), SolveResult::Unsat);
                continue;
            }
            for _ in 0..5 {
                let assumptions: Vec<Lit> = (0..rng.gen_range(0..=nfrozen))
                    .map(|_| {
                        Lit::new(
                            Var::from_index(rng.gen_range(0..nfrozen)),
                            rng.gen_bool(0.5),
                        )
                    })
                    .collect();
                let want = raw.solve_with(&assumptions);
                let got = pre.solve_with(&assumptions);
                assert_eq!(
                    want, got,
                    "round {round}: cnf {cnf:?} under {assumptions:?}"
                );
                if got == SolveResult::Sat {
                    // The reconstructed model must satisfy every
                    // original clause, eliminated variables included.
                    for cl in &cnf {
                        assert!(
                            cl.iter().any(|&l| pre.value(l) == Some(true)),
                            "round {round}: model violates {cl:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn preprocess_rejects_unsupported_states() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        let _ = s.solve_limited(
            &[],
            Limits {
                max_conflicts: Some(20),
                ..Limits::default()
            },
        );
        assert!(!s.preprocess(&[]), "learned clauses block preprocessing");
        // A fresh solver accepts it, and the verdict is unchanged.
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        assert!(s.preprocess(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn preprocess_under_proof_logging_keeps_checkable_proofs() {
        // Proof logging no longer blocks preprocessing: the journal is
        // replayed into the proof and the refutation (found after
        // preprocessing) passes the independent checker.
        let mut s = Solver::with_proof();
        pigeonhole(&mut s, 5);
        assert!(s.preprocess(&[]), "proof-logged preprocessing declined");
        assert_eq!(s.solve(), SolveResult::Unsat);
        let report = s.check_proof().expect("proof logging on");
        assert!(report.ok(), "{}", report.first_failure().unwrap());
        assert!(report.has_refutation);
        // A second logged run is declined (derived clauses have no
        // stored part/tag), not mis-handled.
        let mut s2 = Solver::with_proof();
        pigeonhole(&mut s2, 4);
        assert!(s2.preprocess(&[]));
        if s2.stats().elim_vars > 0 || s2.stats().strengthened > 0 {
            assert!(!s2.preprocess(&[]), "repeat logged run must decline");
        }
    }

    #[test]
    fn preprocess_preserves_interpolants() {
        // A/B-partitioned UNSAT instance: preprocessing must keep the
        // interpolant contract (vars ⊆ shared, A ⇒ I, I ∧ B unsat).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBEEF5);
        let mut tested = 0;
        for _round in 0..300 {
            let nvars = rng.gen_range(2..=7usize);
            let gen_cnf = |rng: &mut StdRng, n: usize| {
                let m = rng.gen_range(1..=8usize);
                (0..m)
                    .map(|_| {
                        let len = rng.gen_range(1..=3usize);
                        (0..len)
                            .map(|_| {
                                Lit::new(Var::from_index(rng.gen_range(0..n)), rng.gen_bool(0.5))
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            };
            let a_cnf = gen_cnf(&mut rng, nvars);
            let b_cnf = gen_cnf(&mut rng, nvars);
            let holds = |cnf: &[Vec<Lit>], m: u32| {
                cnf.iter().all(|cl| {
                    cl.iter()
                        .any(|l| ((m >> l.var().index()) & 1 == 1) == l.is_positive())
                })
            };
            let joint_sat = (0u32..(1 << nvars)).any(|m| holds(&a_cnf, m) && holds(&b_cnf, m));
            if joint_sat {
                continue;
            }
            tested += 1;
            let mut s = Solver::with_proof();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &a_cnf {
                s.add_clause_in(cl, Part::A);
            }
            for cl in &b_cnf {
                s.add_clause_in(cl, Part::B);
            }
            // Declines only when clause addition already derived the
            // empty clause at level 0 (the instance is decided).
            let pre_ok = s.preprocess(&[]);
            assert!(pre_ok || !s.ok, "proof-logged preprocessing declined");
            assert_eq!(s.solve(), SolveResult::Unsat);
            let report = s.check_proof().expect("proof");
            assert!(report.ok(), "{}", report.first_failure().unwrap());
            let itp = s.interpolant().expect("interpolant");
            // Shared vocabulary from the *original* partitions.
            let mut in_a = std::collections::HashSet::new();
            let mut in_b = std::collections::HashSet::new();
            for cl in &a_cnf {
                for l in cl {
                    in_a.insert(l.var());
                }
            }
            for cl in &b_cnf {
                for l in cl {
                    in_b.insert(l.var());
                }
            }
            for v in itp.vars() {
                assert!(
                    in_a.contains(&v) && in_b.contains(&v),
                    "interpolant mentions non-shared {v} after preprocessing"
                );
            }
            for m in 0u32..(1 << nvars) {
                let iv = itp.eval(|v| (m >> v.index()) & 1 == 1);
                if holds(&a_cnf, m) {
                    assert!(iv, "A holds but interpolant is false under {m:b}");
                }
                if iv {
                    assert!(!holds(&b_cnf, m), "I ∧ B satisfiable under {m:b}");
                }
            }
        }
        assert!(tested > 20, "want enough unsat pairs, got {tested}");
    }

    #[test]
    fn proof_limit_interrupts_and_leaves_checkable_proof() {
        let mut s = Solver::with_proof();
        pigeonhole(&mut s, 7);
        s.set_proof_limit(Some(20_000));
        let r = s.solve_limited(&[], Limits::default());
        assert_eq!(r, SolveResult::Unknown(Interrupt::ProofLimit));
        let st = s.stats();
        assert!(st.proof_bytes > 20_000, "cap tripped: {st:?}");
        assert!(st.proof_chains > 0);
        // Everything recorded so far is still a valid derivation set.
        let report = s.check_proof().expect("proof logging on");
        assert!(report.ok(), "{}", report.first_failure().unwrap());
        // Raising the cap lets the solve finish.
        s.set_proof_limit(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.check_proof().expect("proof").ok());
    }

    #[test]
    fn new_vars_block_is_contiguous() {
        let mut s = Solver::new();
        let a = s.new_var();
        let first = s.new_vars(5);
        assert_eq!(first.index(), a.index() + 1);
        assert_eq!(s.num_vars(), 6);
        // The block is usable like individually created variables.
        s.add_clause(&[Lit::pos(first), Lit::pos(Var::from_index(5))]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn dynamic_lbd_rescoring_improves_reused_reasons() {
        // A hard instance reuses learned clauses as reasons across many
        // conflicts; some must re-score to a lower LBD. The verdict is
        // unaffected.
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(
            st.lbd_improved > 0,
            "expected LBD improvements on reused reasons: {st:?}"
        );
    }

    #[test]
    fn forced_gc_preserves_state() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        // Interleave solving (learning clauses) with forced reductions
        // and compactions, then re-solve.
        let r = s.solve_limited(
            &[],
            Limits {
                max_conflicts: Some(50),
                ..Limits::default()
            },
        );
        assert_eq!(r, SolveResult::Unknown(Interrupt::ConflictLimit));
        s.debug_force_reduce();
        s.debug_force_gc();
        s.debug_check_integrity().expect("intact after GC");
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn bulk_add_matches_incremental() {
        let cls: Vec<Vec<Lit>> = vec![
            vec![Lit::pos(Var(0)), Lit::pos(Var(1))],
            vec![Lit::neg(Var(0)), Lit::pos(Var(2))],
            vec![Lit::neg(Var(1)), Lit::neg(Var(2))],
        ];
        let mut a = Solver::new();
        let mut b = Solver::new();
        for _ in 0..3 {
            a.new_var();
            b.new_var();
        }
        for c in &cls {
            a.add_clause(c);
        }
        b.add_clauses(cls.iter().map(Vec::as_slice));
        assert_eq!(a.solve(), b.solve());
        assert_eq!(a.num_clauses(), b.num_clauses());
    }

    #[test]
    fn random_cnf_cross_check() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xDA7E2016);
        for round in 0..300 {
            let nvars = rng.gen_range(1..=8usize);
            let nclauses = rng.gen_range(1..=24usize);
            let mut cnf: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=3usize);
                let mut cl = Vec::new();
                for _ in 0..len {
                    let v = rng.gen_range(0..nvars);
                    cl.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
                }
                cnf.push(cl);
            }
            let mut brute_sat = false;
            'outer: for m in 0u32..(1 << nvars) {
                for cl in &cnf {
                    let ok = cl.iter().any(|l| {
                        let bit = (m >> l.var().index()) & 1 == 1;
                        bit == l.is_positive()
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = if round % 2 == 0 {
                Solver::new()
            } else {
                Solver::with_proof()
            };
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &cnf {
                s.add_clause(cl);
            }
            let got = s.solve();
            let want = if brute_sat {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(got, want, "round {round}, cnf {cnf:?}");
            if got == SolveResult::Sat {
                for cl in &cnf {
                    assert!(
                        cl.iter().any(|&l| s.value(l) == Some(true)),
                        "model violates clause {cl:?}"
                    );
                }
            }
            if s.proof_logging() {
                s.debug_verify_proof().expect("valid proof");
            }
        }
    }

    #[test]
    fn incremental_with_assumptions_cross_check() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let nvars = rng.gen_range(2..=7usize);
            let mut s = Solver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            let mut cnf: Vec<Vec<Lit>> = Vec::new();
            for _round in 0..4 {
                // Add a batch of clauses, then solve under random
                // assumptions, cross-checking against brute force.
                for _ in 0..rng.gen_range(1..=6usize) {
                    let len = rng.gen_range(1..=3usize);
                    let cl: Vec<Lit> = (0..len)
                        .map(|_| {
                            Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5))
                        })
                        .collect();
                    cnf.push(cl.clone());
                    s.add_clause(&cl);
                }
                let nassum = rng.gen_range(0..=2usize);
                let assumptions: Vec<Lit> = (0..nassum)
                    .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                    .collect();
                let mut brute_sat = false;
                'outer: for m in 0u32..(1 << nvars) {
                    let holds = |l: &Lit| ((m >> l.var().index()) & 1 == 1) == l.is_positive();
                    if !assumptions.iter().all(holds) {
                        continue;
                    }
                    for cl in &cnf {
                        if !cl.iter().any(holds) {
                            continue 'outer;
                        }
                    }
                    brute_sat = true;
                    break;
                }
                let got = s.solve_with(&assumptions);
                let want = if brute_sat {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                };
                assert_eq!(got, want, "cnf {cnf:?} assumptions {assumptions:?}");
            }
        }
    }

    /// Random AND-gate circuits: a solve restricted to the fanin cone
    /// of a probed signal must agree with the unrestricted solve on
    /// every verdict, keep failed-assumption cores inside the domain,
    /// and leave a partial model that extends functionally over the
    /// out-of-cone remainder.
    #[test]
    fn domain_restricted_agrees_on_random_circuits() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD0_2016);
        for round in 0..300 {
            let nleaves = rng.gen_range(2..=5usize);
            let ngates = rng.gen_range(1..=12usize);
            let mut s = Solver::new();
            let mut twin = Solver::new();
            for _ in 0..(nleaves + ngates) {
                s.new_var();
                twin.new_var();
            }
            // Gate g (variable nleaves + g) is the AND of two earlier
            // signals with random polarities, Tseitin-encoded.
            let mut fanins: Vec<(Lit, Lit)> = Vec::new();
            for g in 0..ngates {
                let mut pick = || {
                    let v = rng.gen_range(0..nleaves + g);
                    Lit::new(Var::from_index(v), rng.gen_bool(0.5))
                };
                let (a, b) = (pick(), pick());
                let o = Lit::pos(Var::from_index(nleaves + g));
                for solver in [&mut s, &mut twin] {
                    solver.add_clause(&[!o, a]);
                    solver.add_clause(&[!o, b]);
                    solver.add_clause(&[!a, !b, o]);
                }
                fanins.push((a, b));
            }
            // The domain is the fanin-closed cone of a random root.
            let root = rng.gen_range(0..nleaves + ngates);
            let mut dom = Domain::new();
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                if dom.contains(Var::from_index(v)) {
                    continue;
                }
                dom.insert(Var::from_index(v));
                if v >= nleaves {
                    let (a, b) = fanins[v - nleaves];
                    stack.push(a.var().index());
                    stack.push(b.var().index());
                }
            }
            let cone: Vec<Var> = dom.vars().to_vec();
            let assumptions: Vec<Lit> = (0..rng.gen_range(1..=3usize))
                .map(|_| {
                    let v = cone[rng.gen_range(0..cone.len())];
                    Lit::new(v, rng.gen_bool(0.5))
                })
                .collect();
            let rd = s.solve_with_domain(&assumptions, Limits::default(), &dom);
            let ru = twin.solve_with(&assumptions);
            assert_eq!(rd, ru, "round {round}");
            match rd {
                SolveResult::Sat => {
                    // Extend the partial model functionally (unassigned
                    // leaves default to false) and check it against the
                    // in-domain assignment and the assumptions.
                    let mut vals = vec![false; nleaves + ngates];
                    for (i, val) in vals.iter_mut().enumerate().take(nleaves) {
                        *val = s.value(Lit::pos(Var::from_index(i))) == Some(true);
                    }
                    for g in 0..ngates {
                        let (a, b) = fanins[g];
                        let hold = |l: Lit| vals[l.var().index()] == l.is_positive();
                        let f = hold(a) && hold(b);
                        let gv = Var::from_index(nleaves + g);
                        if dom.contains(gv) {
                            // In-domain gates are fanin-closed, so the
                            // partial model must already agree with the
                            // functional evaluation.
                            assert_eq!(s.value(Lit::pos(gv)), Some(f), "round {round} gate {g}");
                        }
                        vals[nleaves + g] = f;
                    }
                    for &a in &assumptions {
                        assert_eq!(vals[a.var().index()], a.is_positive(), "round {round}");
                    }
                    for &v in &cone {
                        assert!(s.value(Lit::pos(v)).is_some(), "in-domain var unassigned");
                    }
                }
                SolveResult::Unsat => {
                    let core = s.failed_assumptions();
                    assert!(
                        core.iter().all(|l| dom.contains(l.var())),
                        "round {round}: core escapes the domain"
                    );
                }
                SolveResult::Unknown(_) => unreachable!(),
            }
            // The solver stays usable unrestricted afterwards.
            assert_eq!(s.solve(), twin.solve(), "round {round} post-solve");
        }
    }

    #[test]
    fn chrono_backtracking_agrees_with_nonchrono() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC4040);
        let mut fired = 0u64;
        for round in 0..200 {
            let nvars = rng.gen_range(6..=12usize);
            let nclauses = rng.gen_range(15..=50usize);
            let mut a = if round % 2 == 0 {
                Solver::new()
            } else {
                Solver::with_proof()
            };
            // Threshold 0: every non-unit conflict backtracks one level.
            a.set_chrono(Some(0));
            let mut b = Solver::new();
            for _ in 0..nvars {
                a.new_var();
                b.new_var();
            }
            let mut cnf: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..nclauses {
                let len = rng.gen_range(2..=4usize);
                let cl: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                    .collect();
                a.add_clause(&cl);
                b.add_clause(&cl);
                cnf.push(cl);
            }
            for _ in 0..3 {
                let assumptions: Vec<Lit> = (0..rng.gen_range(0..=2usize))
                    .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                    .collect();
                let ra = a.solve_with(&assumptions);
                assert_eq!(ra, b.solve_with(&assumptions), "round {round}");
                if ra == SolveResult::Sat {
                    for cl in &cnf {
                        assert!(
                            cl.iter().any(|&l| a.value(l) == Some(true)),
                            "chrono model violates clause {cl:?}"
                        );
                    }
                }
            }
            if a.proof_logging() {
                a.debug_verify_proof().expect("valid proof under chrono");
            }
            fired += a.stats().chrono_backtracks;
        }
        assert!(fired > 0, "chronological backtracking never exercised");

        // A hard refutation with a moderate threshold: same verdict,
        // and the short backtracks actually happen.
        let mut s = Solver::with_proof();
        s.set_chrono(Some(2));
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().chrono_backtracks > 0);
        s.debug_verify_proof()
            .expect("pigeonhole proof under chrono");
    }

    #[test]
    fn chaos_mid_domain_solve_leaves_solver_clean() {
        // Phase A: pigeonhole PHP(9,8) (UNSAT, needs far more than
        // `period` conflicts) under a domain covering the pigeonhole
        // block, with out-of-domain ballast variables alongside. Every
        // injected cancellation must leave the stash drained and the
        // clause structures intact, and the retries must still refute.
        let chaos = Chaos { seed: 7, period: 4 };
        let mut s = Solver::new();
        pigeonhole(&mut s, 8);
        s.set_chrono(Some(4));
        let mut dom = Domain::new();
        dom.extend((0..s.num_vars()).map(Var::from_index));
        for _ in 0..16 {
            s.new_var(); // ballast the domain excludes
        }
        let limits = Limits {
            chaos: Some(chaos),
            ..Limits::default()
        };
        let mut injected = 0;
        loop {
            match s.solve_with_domain(&[], limits.clone(), &dom) {
                SolveResult::Unknown(Interrupt::Cancelled) => {
                    injected += 1;
                    assert!(s.dom_stash.is_empty(), "stash must drain on every exit");
                    s.debug_check_integrity()
                        .expect("intact after injected fault");
                }
                SolveResult::Unsat if injected > 0 => break,
                r => panic!("unexpected chaos-run answer {r:?} after {injected} faults"),
            }
            if injected > 10_000 {
                assert_eq!(
                    s.solve_with_domain(&[], Limits::default(), &dom),
                    SolveResult::Unsat
                );
                break;
            }
        }
        assert!(injected >= 1, "chaos never fired");
        assert!(s.dom_stash.is_empty());

        // Phase B: a satisfiable instance checks the Sat-side domain
        // semantics — in-domain variables assigned, unconstrained
        // ballast left unassigned but returned to the decision pool.
        let mut t = Solver::new();
        let x: Vec<Lit> = (0..3).map(|i| lit(&mut t, i, true)).collect();
        t.add_clause(&[x[0], x[1], x[2]]);
        t.add_clause(&[x[0], !x[1], !x[2]]);
        t.add_clause(&[!x[0], x[1], !x[2]]);
        t.add_clause(&[!x[0], !x[1], x[2]]);
        let mut tdom = Domain::new();
        tdom.extend((0..3).map(Var::from_index));
        let ballast: Vec<Var> = (0..16).map(|_| t.new_var()).collect();
        assert_eq!(
            t.solve_with_domain(&[], Limits::default(), &tdom),
            SolveResult::Sat
        );
        for v in tdom.vars() {
            assert!(t.value(Lit::pos(*v)).is_some());
        }
        for &v in &ballast {
            assert_eq!(t.value(Lit::pos(v)), None, "ballast must stay unassigned");
        }
        assert_eq!(t.solve(), SolveResult::Sat);
        for &v in &ballast {
            assert!(t.value(Lit::pos(v)).is_some(), "ballast lost from heap");
        }
        t.debug_check_integrity().expect("intact at the end");
    }

    #[test]
    fn inprocessing_promotes_subsuming_learnt() {
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        let c = lit(&mut s, 2, true);
        s.add_clause(&[a, b, c]);
        s.add_clause(&[!c, a, b]);
        // Assuming !a, !b propagates c from the first clause and
        // conflicts on the second; first-UIP learns (a | b), which
        // subsumes both originals.
        assert_eq!(s.solve_with(&[!a, !b]), SolveResult::Unsat);
        assert_eq!(s.stats().learned, 1);
        let before = s.num_clauses();
        s.debug_force_inprocess();
        assert_eq!(s.stats().inproc_subsumed, 2, "both originals subsumed");
        assert_eq!(s.num_clauses(), before - 2);
        s.debug_check_integrity()
            .expect("intact after inprocessing");
        // The subsuming learnt was promoted to original status, so
        // clause reduction may not delete it and verdicts hold.
        s.debug_force_reduce();
        assert_eq!(s.solve_with(&[!a]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.solve_with(&[!a, !b]), SolveResult::Unsat);
    }

    #[test]
    fn inprocessing_preserves_verdicts_on_random_cnf() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x1217);
        let mut subsumed = 0u64;
        for _ in 0..80 {
            let nvars = rng.gen_range(2..=7usize);
            let mut s = Solver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            let mut cnf: Vec<Vec<Lit>> = Vec::new();
            for _round in 0..4 {
                for _ in 0..rng.gen_range(1..=6usize) {
                    let len = rng.gen_range(1..=3usize);
                    let cl: Vec<Lit> = (0..len)
                        .map(|_| {
                            Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5))
                        })
                        .collect();
                    cnf.push(cl.clone());
                    s.add_clause(&cl);
                }
                let assumptions: Vec<Lit> = (0..rng.gen_range(0..=2usize))
                    .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                    .collect();
                let mut brute_sat = false;
                'outer: for m in 0u32..(1 << nvars) {
                    let holds = |l: &Lit| ((m >> l.var().index()) & 1 == 1) == l.is_positive();
                    if !assumptions.iter().all(holds) {
                        continue;
                    }
                    for cl in &cnf {
                        if !cl.iter().any(holds) {
                            continue 'outer;
                        }
                    }
                    brute_sat = true;
                    break;
                }
                let got = s.solve_with(&assumptions);
                let want = if brute_sat {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                };
                assert_eq!(got, want, "cnf {cnf:?} assumptions {assumptions:?}");
                // Inprocess between batches; verdicts must be stable.
                s.debug_force_inprocess();
                s.debug_check_integrity()
                    .expect("intact after inprocessing");
                assert_eq!(s.solve_with(&assumptions), want, "after inprocessing");
            }
            subsumed += s.stats().inproc_subsumed;
        }
        assert!(subsumed > 0, "inprocessing never subsumed anything");
    }
}
