//! Arena-backed clause database.
//!
//! Clauses live in one contiguous `Vec<u32>` arena instead of being
//! individually boxed: each clause is a fixed 4-word header (size +
//! flags, LBD, activity, proof id) followed by its literal codes, and
//! is addressed by a [`CRef`] — the word offset of its header. This
//! keeps unit propagation on a single allocation (cache-friendly, no
//! pointer chasing) and makes deletion O(1): a clause is freed by
//! setting a mark bit, and the arena is compacted by a copying
//! [`ClauseDb::collect`] pass once enough words are wasted. Compaction
//! leaves a forwarding pointer in each moved clause's header so the
//! solver can remap its watch lists and reason references.
//!
//! The layout mirrors MiniSat's `ClauseAllocator` and the flat
//! databases of modern IC3 solvers; see `SNIPPETS.md` for the idiom.

use crate::lit::Lit;
use crate::proof::ClauseId;

/// Reference to a clause: the word offset of its header in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CRef(pub(crate) u32);

impl CRef {
    /// Sentinel for "no clause".
    pub const UNDEF: CRef = CRef(u32::MAX);

    /// The raw arena offset.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Words of header preceding the literals of every clause.
const HEADER_WORDS: usize = 4;
/// Header flag: the clause was learned (eligible for reduction).
const FLAG_LEARNT: u32 = 1;
/// Header flag: the clause has been deleted (space is garbage).
const FLAG_DELETED: u32 = 1 << 1;
/// Header flag: the clause has been relocated during compaction; the
/// LBD word holds the forwarding offset.
const FLAG_RELOCED: u32 = 1 << 2;
/// First bit of the size field.
const SIZE_SHIFT: u32 = 3;

/// A flat clause arena with mark-and-compact garbage collection.
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    arena: Vec<u32>,
    /// Words occupied by deleted clauses (reclaimable by `collect`).
    wasted: usize,
    /// Live original clauses, in insertion order.
    originals: Vec<CRef>,
    /// Live learned clauses, in insertion order.
    learnts: Vec<CRef>,
    /// High-water mark of the arena, in bytes.
    peak_bytes: usize,
}

impl ClauseDb {
    /// Creates an empty database.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Pre-allocates room for `words` additional arena words.
    pub fn reserve_words(&mut self, words: usize) {
        self.arena.reserve(words);
    }

    /// Current arena footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.arena.len() * 4
    }

    /// High-water arena footprint in bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Words currently wasted on deleted clauses.
    pub fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Live original clauses in insertion order.
    pub fn originals(&self) -> &[CRef] {
        &self.originals
    }

    /// Live learned clauses in insertion order.
    pub fn learnts(&self) -> &[CRef] {
        &self.learnts
    }

    /// Number of live clauses (original + learned).
    pub fn len(&self) -> usize {
        self.originals.len() + self.learnts.len()
    }

    /// Whether no live clause is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocates a clause and returns its reference.
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool, proof_id: ClauseId) -> CRef {
        debug_assert!(!lits.is_empty(), "empty clauses are not stored");
        // Watchers pack a CRef into 31 bits; fail loudly (also in
        // release builds) instead of silently corrupting references.
        assert!(
            self.arena.len() + lits.len() < (u32::MAX / 2) as usize,
            "clause arena exceeds the 31-bit CRef range"
        );
        let cref = CRef(self.arena.len() as u32);
        let flags = if learnt { FLAG_LEARNT } else { 0 };
        self.arena.push(((lits.len() as u32) << SIZE_SHIFT) | flags);
        self.arena.push(0); // LBD
        self.arena.push(0f32.to_bits()); // activity
        self.arena.push(proof_id.0);
        self.arena.extend(lits.iter().map(|l| l.0));
        self.peak_bytes = self.peak_bytes.max(self.bytes());
        if learnt {
            self.learnts.push(cref);
        } else {
            self.originals.push(cref);
        }
        cref
    }

    /// Number of literals of the clause.
    #[inline]
    pub fn size(&self, c: CRef) -> usize {
        (self.arena[c.index()] >> SIZE_SHIFT) as usize
    }

    /// Whether the clause was learned.
    #[inline]
    pub fn is_learnt(&self, c: CRef) -> bool {
        self.arena[c.index()] & FLAG_LEARNT != 0
    }

    /// Whether the clause has been deleted.
    #[inline]
    pub fn is_deleted(&self, c: CRef) -> bool {
        self.arena[c.index()] & FLAG_DELETED != 0
    }

    /// The clause's literals.
    #[inline]
    pub fn lits(&self, c: CRef) -> &[Lit] {
        let start = c.index() + HEADER_WORDS;
        let len = self.size(c);
        // Lit is a transparent u32 wrapper; reinterpret the words.
        unsafe { std::slice::from_raw_parts(self.arena[start..start + len].as_ptr().cast(), len) }
    }

    /// One literal of the clause.
    #[inline]
    pub fn lit(&self, c: CRef, i: usize) -> Lit {
        debug_assert!(i < self.size(c));
        Lit(self.arena[c.index() + HEADER_WORDS + i])
    }

    /// Overwrites one literal of the clause.
    #[inline]
    pub fn set_lit(&mut self, c: CRef, i: usize, l: Lit) {
        debug_assert!(i < self.size(c));
        self.arena[c.index() + HEADER_WORDS + i] = l.0;
    }

    /// Swaps two literals of the clause.
    #[inline]
    pub fn swap_lits(&mut self, c: CRef, i: usize, j: usize) {
        let (a, b) = (self.lit(c, i), self.lit(c, j));
        self.set_lit(c, i, b);
        self.set_lit(c, j, a);
    }

    /// The clause's literal-block distance (glue), set for learned
    /// clauses at learn time.
    #[inline]
    pub fn lbd(&self, c: CRef) -> u32 {
        self.arena[c.index() + 1]
    }

    /// Updates the clause's LBD.
    #[inline]
    pub fn set_lbd(&mut self, c: CRef, lbd: u32) {
        self.arena[c.index() + 1] = lbd;
    }

    /// The clause's reduction activity.
    #[inline]
    pub fn activity(&self, c: CRef) -> f32 {
        f32::from_bits(self.arena[c.index() + 2])
    }

    /// Overwrites the clause's reduction activity.
    #[inline]
    pub fn set_activity(&mut self, c: CRef, a: f32) {
        self.arena[c.index() + 2] = a.to_bits();
    }

    /// The clause's proof id (meaningless when proof logging is off).
    #[inline]
    pub fn proof_id(&self, c: CRef) -> ClauseId {
        ClauseId(self.arena[c.index() + 3])
    }

    /// Marks the clause deleted. The registry entry is removed by the
    /// caller (reduction rebuilds the learnt registry wholesale); the
    /// arena words are reclaimed by the next [`collect`](Self::collect).
    pub fn free(&mut self, c: CRef) {
        debug_assert!(!self.is_deleted(c));
        self.arena[c.index()] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS + self.size(c);
    }

    /// Replaces the learnt registry after a reduction pass.
    pub(crate) fn set_learnts(&mut self, learnts: Vec<CRef>) {
        self.learnts = learnts;
    }

    /// Reclassifies a live learned clause as original: clears the
    /// learnt flag and moves the registry entry. Used by inprocessing
    /// when a learned clause subsumes an original — the subsuming
    /// clause must take over the original's non-deletable status, or a
    /// later reduction pass could silently drop the only copy of the
    /// constraint. Both registries are kept in ascending (allocation)
    /// order.
    pub(crate) fn promote_to_original(&mut self, c: CRef) {
        debug_assert!(self.is_learnt(c) && !self.is_deleted(c));
        self.arena[c.index()] &= !FLAG_LEARNT;
        if let Ok(i) = self.learnts.binary_search(&c) {
            self.learnts.remove(i);
        } else {
            debug_assert!(false, "promoted clause missing from learnt registry");
        }
        let at = self.originals.binary_search(&c).unwrap_or_else(|i| i);
        self.originals.insert(at, c);
    }

    /// Removes the given ascending `doomed` crefs from one registry
    /// (used by activation-group release, which frees individual
    /// clauses rather than rebuilding a registry wholesale). Both the
    /// registry and `doomed` are in allocation order, and released
    /// clauses were allocated recently, so the scan binary-searches to
    /// the first doomed entry and only rewrites the registry tail —
    /// near-O(1) for the hot per-query release path.
    pub(crate) fn remove_from_registry(&mut self, learnt: bool, doomed: &[CRef]) {
        debug_assert!(doomed.windows(2).all(|w| w[0] < w[1]));
        let registry = if learnt {
            &mut self.learnts
        } else {
            &mut self.originals
        };
        let Some(&first) = doomed.first() else { return };
        let start = registry.binary_search(&first).unwrap_or_else(|i| i);
        let mut w = start;
        let mut d = 0;
        for r in start..registry.len() {
            let c = registry[r];
            if d < doomed.len() && doomed[d] == c {
                d += 1;
                continue;
            }
            registry[w] = c;
            w += 1;
        }
        debug_assert_eq!(d, doomed.len(), "doomed cref missing from registry");
        registry.truncate(w);
    }

    /// Whether enough words are wasted that compaction pays off.
    pub fn should_collect(&self) -> bool {
        self.wasted * 5 > self.arena.len() && self.wasted > 1024
    }

    /// Copying compaction: moves all live clauses into a fresh arena
    /// and returns the relocation so the solver can remap watch lists
    /// and reason references. Clause order (and thus every registry
    /// index) is preserved.
    pub fn collect(&mut self) -> Relocation {
        let mut next = Vec::with_capacity(self.arena.len() - self.wasted);
        let mut originals = Vec::with_capacity(self.originals.len());
        let mut learnts = Vec::with_capacity(self.learnts.len());
        for (registry, out) in [
            (&self.originals, &mut originals),
            (&self.learnts, &mut learnts),
        ] {
            for &c in registry.iter() {
                debug_assert!(!self.is_deleted(c));
                let from = c.index();
                let words = HEADER_WORDS + self.size(c);
                let to = CRef(next.len() as u32);
                next.extend_from_slice(&self.arena[from..from + words]);
                // Forwarding pointer for watch/reason remapping.
                self.arena[from] |= FLAG_RELOCED;
                self.arena[from + 1] = to.0;
                out.push(to);
            }
        }
        let old = std::mem::replace(&mut self.arena, next);
        self.originals = originals;
        self.learnts = learnts;
        self.wasted = 0;
        Relocation { old }
    }
}

/// The old arena after a [`ClauseDb::collect`]; maps stale [`CRef`]s to
/// their new locations through the forwarding pointers left behind.
pub struct Relocation {
    old: Vec<u32>,
}

impl Relocation {
    /// The new location of a clause that was live at collection time.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `c` referred to a deleted clause:
    /// deleted clauses are not relocated and must not be reachable.
    #[inline]
    pub fn forward(&self, c: CRef) -> CRef {
        debug_assert!(
            self.old[c.index()] & FLAG_RELOCED != 0,
            "dangling CRef survived into compaction"
        );
        CRef(self.old[c.index() + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(codes: &[usize]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn alloc_and_accessors() {
        let mut db = ClauseDb::new();
        let c0 = db.alloc(&lits(&[0, 2, 5]), false, ClauseId(7));
        let c1 = db.alloc(&lits(&[1, 3]), true, ClauseId(8));
        assert_eq!(db.size(c0), 3);
        assert_eq!(db.size(c1), 2);
        assert!(!db.is_learnt(c0));
        assert!(db.is_learnt(c1));
        assert_eq!(db.lits(c0), lits(&[0, 2, 5]).as_slice());
        assert_eq!(db.proof_id(c0), ClauseId(7));
        assert_eq!(db.proof_id(c1), ClauseId(8));
        db.set_lbd(c1, 2);
        assert_eq!(db.lbd(c1), 2);
        db.set_activity(c1, 1.5);
        assert!((db.activity(c1) - 1.5).abs() < 1e-6);
        db.swap_lits(c0, 0, 2);
        assert_eq!(db.lits(c0), lits(&[5, 2, 0]).as_slice());
        assert_eq!(db.len(), 2);
        assert!(db.bytes() > 0 && db.peak_bytes() >= db.bytes());
    }

    #[test]
    fn free_and_collect_relocate() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[0, 2]), false, ClauseId(0));
        let b = db.alloc(&lits(&[4, 6, 8]), true, ClauseId(1));
        let c = db.alloc(&lits(&[1, 3]), true, ClauseId(2));
        db.free(b);
        db.set_learnts(vec![c]);
        assert_eq!(db.wasted_words(), HEADER_WORDS + 3);
        let reloc = db.collect();
        let a2 = reloc.forward(a);
        let c2 = reloc.forward(c);
        assert_eq!(db.lits(a2), lits(&[0, 2]).as_slice());
        assert_eq!(db.lits(c2), lits(&[1, 3]).as_slice());
        assert_eq!(db.proof_id(c2), ClauseId(2));
        assert!(db.is_learnt(c2) && !db.is_learnt(a2));
        assert_eq!(db.wasted_words(), 0);
        assert_eq!(db.originals(), &[a2]);
        assert_eq!(db.learnts(), &[c2]);
    }

    #[test]
    fn large_clause_roundtrip() {
        let mut db = ClauseDb::new();
        let many: Vec<Lit> = (0..500).map(Lit::from_code).collect();
        let c = db.alloc(&many, true, ClauseId(0));
        assert_eq!(db.size(c), 500);
        assert_eq!(db.lits(c), many.as_slice());
    }
}
