//! Resolution proof logging.
//!
//! When proof logging is enabled, the solver records, for every learned
//! clause, the chain of resolution steps that derived it (the conflict
//! clause resolved against the reason clauses of trail literals, in
//! order, plus the extra resolutions performed during clause
//! minimization). After an UNSAT answer, a final chain deriving the
//! empty clause is recorded. The interpolation module replays these
//! chains with McMillan's labelling.

use crate::lit::Var;

/// Identifier of a clause in the proof: original clauses and learned
/// clauses share one id space, in creation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseId(pub(crate) u32);

impl ClauseId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interpolation partition label of an original clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Part {
    /// The clause belongs to the `A` part (the interpolant
    /// over-approximates `A`'s consequences on shared variables).
    A,
    /// The clause belongs to the `B` part.
    B,
}

/// One resolution step: resolve the running clause with `other` on
/// `pivot` (the pivot occurs positively in one side, negatively in the
/// other).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResStep {
    /// The pivot variable eliminated by this resolution.
    pub pivot: Var,
    /// The clause resolved against.
    pub other: ClauseId,
}

/// How a proof clause came to be.
#[derive(Clone, Debug)]
pub enum ProofClause {
    /// An original clause added by the user, with its partition label
    /// and literals (literals are stored for interpolant base cases).
    Original {
        /// Partition label.
        part: Part,
        /// The clause's literals.
        lits: Vec<crate::lit::Lit>,
    },
    /// A clause derived by a resolution chain starting from `start`.
    Derived {
        /// The first clause of the chain.
        start: ClauseId,
        /// The resolution steps applied in order.
        steps: Vec<ResStep>,
    },
}

/// The recorded proof: a list of clauses in derivation order plus,
/// after UNSAT, the chain deriving the empty clause.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    pub(crate) clauses: Vec<ProofClause>,
    /// Caller-supplied tag per clause (originals only; derived clauses
    /// get `u32::MAX`). Tags let one refutation be re-partitioned for
    /// sequence interpolants.
    pub(crate) tags: Vec<u32>,
    /// Chain deriving the empty clause (set on UNSAT).
    pub(crate) empty: Option<(ClauseId, Vec<ResStep>)>,
}

impl Proof {
    /// Number of clauses recorded.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the proof is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The derivation of the empty clause, if UNSAT was derived.
    pub fn empty_clause(&self) -> Option<(ClauseId, &[ResStep])> {
        self.empty.as_ref().map(|(s, v)| (*s, v.as_slice()))
    }

    pub(crate) fn add_original(
        &mut self,
        part: Part,
        lits: Vec<crate::lit::Lit>,
        tag: u32,
    ) -> ClauseId {
        let id = ClauseId(self.clauses.len() as u32);
        self.clauses.push(ProofClause::Original { part, lits });
        self.tags.push(tag);
        id
    }

    pub(crate) fn add_derived(&mut self, start: ClauseId, steps: Vec<ResStep>) -> ClauseId {
        let id = ClauseId(self.clauses.len() as u32);
        self.clauses.push(ProofClause::Derived { start, steps });
        self.tags.push(u32::MAX);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Lit;

    #[test]
    fn proof_recording() {
        let mut p = Proof::default();
        let v = Var::from_index(0);
        let c0 = p.add_original(Part::A, vec![Lit::pos(v)], 0);
        let c1 = p.add_original(Part::B, vec![Lit::neg(v)], 0);
        assert_eq!(p.len(), 2);
        let steps = vec![ResStep {
            pivot: v,
            other: c1,
        }];
        p.empty = Some((c0, steps));
        let (start, chain) = p.empty_clause().expect("empty clause set");
        assert_eq!(start, c0);
        assert_eq!(chain.len(), 1);
    }
}
