//! Resolution proof logging.
//!
//! When proof logging is enabled, the solver records, for every learned
//! clause, the chain of resolution steps that derived it (the conflict
//! clause resolved against the reason clauses of trail literals, in
//! order, plus the extra resolutions performed during clause
//! minimization). After an UNSAT answer, a final chain deriving the
//! empty clause is recorded. The interpolation module replays these
//! chains with McMillan's labelling, and [`crate::proofcheck`] replays
//! them as an independent validity check.
//!
//! The proof also records **deletions**: when preprocessing or clause
//! management removes a clause from the solver, the clause's id is
//! appended to a deletion list. Deleted clauses stay in the arena (ids
//! are never reused, so every recorded chain stays replayable); the
//! list exists so a checker can verify that no *deleted* clause is the
//! start of the final empty-clause derivation.
//!
//! Memory is accounted incrementally: [`Proof::bytes`] approximates the
//! heap footprint of the recorded derivations and the solver can cap it
//! ([`crate::Solver::set_proof_limit`]) through the typed-interrupt
//! path.

use crate::lit::Var;

/// Identifier of a clause in the proof: original clauses and learned
/// clauses share one id space, in creation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseId(pub(crate) u32);

impl ClauseId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interpolation partition label of an original clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Part {
    /// The clause belongs to the `A` part (the interpolant
    /// over-approximates `A`'s consequences on shared variables).
    A,
    /// The clause belongs to the `B` part.
    B,
}

/// One resolution step: resolve the running clause with `other` on
/// `pivot` (the pivot occurs positively in one side, negatively in the
/// other).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResStep {
    /// The pivot variable eliminated by this resolution.
    pub pivot: Var,
    /// The clause resolved against.
    pub other: ClauseId,
}

/// How a proof clause came to be.
#[derive(Clone, Debug)]
pub enum ProofClause {
    /// An original clause added by the user, with its partition label
    /// and literals (literals are stored for interpolant base cases).
    Original {
        /// Partition label.
        part: Part,
        /// The clause's literals.
        lits: Vec<crate::lit::Lit>,
    },
    /// A clause derived by a resolution chain starting from `start`.
    Derived {
        /// The first clause of the chain.
        start: ClauseId,
        /// The resolution steps applied in order.
        steps: Vec<ResStep>,
    },
}

/// The recorded proof: a list of clauses in derivation order plus,
/// after UNSAT, the chain deriving the empty clause.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    pub(crate) clauses: Vec<ProofClause>,
    /// Caller-supplied tag per clause (originals only; derived clauses
    /// get `u32::MAX`). Tags let one refutation be re-partitioned for
    /// sequence interpolants.
    pub(crate) tags: Vec<u32>,
    /// Chain deriving the empty clause (set on UNSAT).
    pub(crate) empty: Option<(ClauseId, Vec<ResStep>)>,
    /// Ids of clauses deleted by preprocessing / clause management, in
    /// deletion order. Deleted clauses remain replayable antecedents.
    pub(crate) deleted: Vec<ClauseId>,
    /// Approximate heap bytes held by the recorded derivations,
    /// maintained incrementally on every add.
    pub(crate) bytes: u64,
    /// Number of derivation chains recorded (derived clauses plus the
    /// final empty-clause chain if present).
    pub(crate) chains: u64,
}

impl Proof {
    /// Number of clauses recorded.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the proof is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The derivation of the empty clause, if UNSAT was derived.
    pub fn empty_clause(&self) -> Option<(ClauseId, &[ResStep])> {
        self.empty.as_ref().map(|(s, v)| (*s, v.as_slice()))
    }

    /// All recorded proof clauses, in derivation order. Index `i`
    /// holds the clause with [`ClauseId`] `i`.
    pub fn clauses(&self) -> &[ProofClause] {
        &self.clauses
    }

    /// The caller-supplied tag of a clause (`u32::MAX` for derived
    /// clauses).
    pub fn tag_of(&self, id: ClauseId) -> u32 {
        self.tags[id.index()]
    }

    /// Ids of clauses deleted from the solver, in deletion order.
    pub fn deletions(&self) -> &[ClauseId] {
        &self.deleted
    }

    /// Approximate heap bytes held by the recorded derivations.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of derivation chains recorded (derived clauses plus the
    /// final empty-clause chain if present).
    pub fn chains(&self) -> u64 {
        self.chains
    }

    pub(crate) fn add_original(
        &mut self,
        part: Part,
        lits: Vec<crate::lit::Lit>,
        tag: u32,
    ) -> ClauseId {
        let id = ClauseId(self.clauses.len() as u32);
        self.bytes +=
            Self::clause_overhead() + (lits.len() * std::mem::size_of::<crate::lit::Lit>()) as u64;
        self.clauses.push(ProofClause::Original { part, lits });
        self.tags.push(tag);
        id
    }

    pub(crate) fn add_derived(&mut self, start: ClauseId, steps: Vec<ResStep>) -> ClauseId {
        let id = ClauseId(self.clauses.len() as u32);
        self.bytes +=
            Self::clause_overhead() + (steps.len() * std::mem::size_of::<ResStep>()) as u64;
        self.chains += 1;
        self.clauses.push(ProofClause::Derived { start, steps });
        self.tags.push(u32::MAX);
        id
    }

    /// Record the final empty-clause derivation. Counts as one chain.
    pub(crate) fn set_empty(&mut self, start: ClauseId, steps: Vec<ResStep>) {
        if self.empty.is_none() {
            self.bytes += (steps.len() * std::mem::size_of::<ResStep>()) as u64;
            self.chains += 1;
        }
        self.empty = Some((start, steps));
    }

    /// Record that a clause was deleted from the solver (subsumption,
    /// strengthening-replacement, or variable elimination).
    pub(crate) fn record_deletion(&mut self, id: ClauseId) {
        self.bytes += std::mem::size_of::<ClauseId>() as u64;
        self.deleted.push(id);
    }

    /// Fixed per-clause bookkeeping cost (enum + tag slot).
    fn clause_overhead() -> u64 {
        (std::mem::size_of::<ProofClause>() + std::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Lit;

    #[test]
    fn proof_recording() {
        let mut p = Proof::default();
        let v = Var::from_index(0);
        let c0 = p.add_original(Part::A, vec![Lit::pos(v)], 0);
        let c1 = p.add_original(Part::B, vec![Lit::neg(v)], 0);
        assert_eq!(p.len(), 2);
        let steps = vec![ResStep {
            pivot: v,
            other: c1,
        }];
        p.set_empty(c0, steps);
        let (start, chain) = p.empty_clause().expect("empty clause set");
        assert_eq!(start, c0);
        assert_eq!(chain.len(), 1);
        assert_eq!(p.chains(), 1);
        assert!(p.bytes() > 0);
    }

    #[test]
    fn deletion_and_byte_accounting() {
        let mut p = Proof::default();
        let v = Var::from_index(0);
        let c0 = p.add_original(Part::A, vec![Lit::pos(v), Lit::neg(v)], 0);
        let before = p.bytes();
        let c1 = p.add_derived(
            c0,
            vec![ResStep {
                pivot: v,
                other: c0,
            }],
        );
        assert!(p.bytes() > before);
        assert_eq!(p.chains(), 1);
        p.record_deletion(c0);
        assert_eq!(p.deletions(), &[c0]);
        assert_eq!(p.tag_of(c1), u32::MAX);
    }
}
