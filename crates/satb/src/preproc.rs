//! SatELite-style CNF preprocessing: subsumption, self-subsuming
//! resolution and bounded variable elimination.
//!
//! The engines in this workspace burn almost all of their time in the
//! arena solver, and every one of them solves formulas built from the
//! *same* clause image (the `aig` transition template) over and over —
//! once per frame per engine per portfolio seat. Simplifying that image
//! once therefore pays out everywhere, which is exactly the trade
//! SatELite (Eén & Biere 2005) and the preprocessors inside modern
//! software analyzers (CPAchecker's CNF simplification, CBMC's
//! pre-solving passes) make.
//!
//! [`Preprocessor`] implements the three classical rules over an
//! occurrence-list clause set:
//!
//! * **Subsumption** — a clause `C ⊆ D` deletes `D`.
//! * **Self-subsuming resolution (strengthening)** — if `C \ {l}` is
//!   contained in `D \ {¬l}`, the resolvent of `C` and `D` on `l`
//!   subsumes `D`, so `¬l` is removed from `D` in place.
//! * **Bounded variable elimination** — a variable `v` is eliminated by
//!   replacing the clauses containing it with all non-tautological
//!   resolvents on `v`, but only when that does not grow the clause
//!   set (the SatELite bound). The replaced clauses are pushed onto a
//!   [`ReconStack`] so models of the simplified formula can be
//!   extended back over the eliminated variables.
//!
//! # Soundness invariants (freeze / Part / reconstruction)
//!
//! The simplified set is **equisatisfiable with the original and
//! equivalent over the non-eliminated variables**: for every
//! assignment of the surviving variables, the original formula is
//! satisfiable iff the simplified one is (variable elimination is
//! existential projection; subsumption and strengthening preserve
//! equivalence outright). Three invariants make this usable:
//!
//! 1. **Freeze set.** Every variable the consumer will read from a
//!    model, assume, bind, or mention in later-added clauses must be
//!    [frozen](Preprocessor::freeze) — frozen variables are never
//!    eliminated (occurrences of them may still be strengthened away,
//!    which is an equivalence-preserving deletion). Activation-style
//!    guard variables are assumption interface by definition and must
//!    always be frozen.
//! 2. **Parts and tags.** Resolution never crosses an interpolation
//!    partition: strengthening requires the two clauses to carry the
//!    same [`Part`] and tag, and a variable occurring in clauses of
//!    differing part/tag is never eliminated. Every derived clause
//!    therefore belongs wholly to one part, so an A/B labelling of the
//!    simplified set still yields valid Craig interpolants (deleting a
//!    subsumed clause is sound across parts: removing clauses from a
//!    partition only weakens it, and the interpolant of the weakened
//!    pair still separates the original one).
//! 3. **Reconstruction.** A model of the simplified formula is
//!    extended to the eliminated variables by replaying the
//!    [`ReconStack`] in reverse elimination order
//!    ([`ReconStack::extend`]); each eliminated variable is set to
//!    satisfy its saved clauses, which is always possible because the
//!    model satisfies every resolvent.
//!
//! The empty clause may be derived (`[PreprocResult::unsat]`), in which
//! case the clause set is unsatisfiable outright.
//!
//! # Proof logging
//!
//! Preprocessing is resolution: every strengthening step and every
//! BVE resolvent is one (chain of) resolution(s) over input clauses,
//! and subsumption/elimination only *delete* clauses. When the caller
//! identifies each input clause with its proof [`ClauseId`]
//! ([`Preprocessor::add_clause_logged`]), the run records a
//! [`PreprocProof`] journal — a `Derive` event per strengthening step
//! and kept resolvent, a `Delete` event per removed clause — which
//! [`PreprocProof::replay`] appends to a [`Proof`] as ordinary
//! [`ProofClause::Derived`](crate::proof::ProofClause::Derived)
//! chains. This is what lets [`Solver::preprocess`](crate::Solver::preprocess)
//! run under proof logging: the simplified image's clauses all carry
//! derivations rooted in the original clauses, so interpolation and
//! the independent checker ([`crate::proofcheck`]) work across
//! preprocessing unchanged.

use crate::lit::{Lit, Var};
use crate::proof::{ClauseId, Part, Proof, ResStep};

/// A clause of the simplified output, with its partition labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreprocClause {
    /// Sorted, duplicate-free literals.
    pub lits: Vec<Lit>,
    /// Interpolation partition the clause belongs to.
    pub part: Part,
    /// Caller tag (sequence-interpolant re-partitioning key).
    pub tag: u32,
}

/// Tuning knobs for one preprocessing run.
#[derive(Clone, Copy, Debug)]
pub struct PreprocConfig {
    /// Master switch for bounded variable elimination (subsumption and
    /// strengthening always run).
    pub var_elim: bool,
    /// Variables occurring more often than this in either polarity are
    /// never eliminated (the SatELite "don't touch hubs" heuristic).
    pub max_occ: usize,
    /// Extra clauses an elimination may add beyond the number it
    /// removes (SatELite uses 0: never grow).
    pub max_growth: isize,
    /// Abort an elimination if any resolvent would exceed this many
    /// literals.
    pub max_resolvent_len: usize,
}

impl Default for PreprocConfig {
    fn default() -> PreprocConfig {
        PreprocConfig {
            var_elim: true,
            max_occ: 30,
            max_growth: 0,
            max_resolvent_len: 24,
        }
    }
}

/// Counters of one preprocessing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocStats {
    /// Variables eliminated by bounded variable elimination.
    pub elim_vars: u64,
    /// Clauses deleted because another clause subsumed them.
    pub subsumed: u64,
    /// Literals removed by self-subsuming resolution.
    pub strengthened: u64,
}

/// The saved-clause stack that extends models of the simplified
/// formula over the eliminated variables.
///
/// Entry `i` holds one eliminated variable together with **all**
/// clauses that contained it at elimination time. Entries are in
/// elimination order; [`extend`](ReconStack::extend) replays them in
/// reverse, so each entry's saved clauses only mention surviving
/// variables and variables whose value was already reconstructed.
#[derive(Clone, Debug, Default)]
pub struct ReconStack {
    entries: Vec<(Var, Vec<Vec<Lit>>)>,
}

impl ReconStack {
    /// Number of eliminated variables recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no variable was eliminated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded eliminated variables, in elimination order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.entries.iter().map(|(v, _)| *v)
    }

    /// Extends `vals` (indexed by original variable, with every
    /// surviving variable already set) over the eliminated variables:
    /// each one is assigned the polarity that satisfies all of its
    /// saved clauses. Such a polarity always exists for any assignment
    /// satisfying the simplified formula.
    pub fn extend(&self, vals: &mut [bool]) {
        for (v, saved) in self.entries.iter().rev() {
            // Default false; flip if a clause needs the positive
            // literal (then every ¬v clause is satisfied elsewhere,
            // because the model satisfies all resolvents).
            let pos = Lit::pos(*v);
            let needs_pos = saved.iter().any(|cl| {
                cl.contains(&pos)
                    && !cl
                        .iter()
                        .any(|&l| l.var() != *v && (vals[l.var().index()] == l.is_positive()))
            });
            vals[v.index()] = needs_pos;
        }
    }
}

/// Result of [`Preprocessor::run`].
#[derive(Clone, Debug)]
pub struct PreprocResult {
    /// The simplified clause set (sorted, duplicate-free literals).
    pub clauses: Vec<PreprocClause>,
    /// What the run did.
    pub stats: PreprocStats,
    /// Saved clauses for model reconstruction.
    pub recon: ReconStack,
    /// Per-variable flag: `true` if the variable was eliminated.
    pub eliminated: Vec<bool>,
    /// The empty clause was derived: the input set is unsatisfiable.
    pub unsat: bool,
    /// Derivation journal (only when the clauses were added with
    /// [`Preprocessor::add_clause_logged`]); replay it into a
    /// [`Proof`] with [`PreprocProof::replay`].
    pub provenance: Option<PreprocProof>,
}

/// Provenance of one clause during preprocessing: an input clause
/// (identified by the proof id the caller supplied) or the result of
/// the `k`-th derivation the run performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PRef {
    /// An input clause, by its id in the caller's [`Proof`].
    Input(ClauseId),
    /// The `k`-th clause derived during this run.
    Derived(usize),
}

/// One entry of the preprocessing derivation journal.
#[derive(Clone, Debug)]
enum ProofEvent {
    /// A resolution chain producing the next derived clause: `start`
    /// resolved against each `(pivot, other)` in order. Produced by
    /// self-subsuming resolution (one step) and by BVE resolvents
    /// (one step each).
    Derive {
        start: PRef,
        steps: Vec<(Var, PRef)>,
    },
    /// A clause was removed from the set (subsumed, replaced by its
    /// strengthened form, or eliminated with its variable).
    Delete(PRef),
}

/// The derivation journal of one logged preprocessing run.
///
/// Events are chronological; replaying them into the [`Proof`] that
/// contains the input clauses yields one
/// [`ProofClause::Derived`](crate::proof::ProofClause::Derived) entry
/// per derivation and one deletion record per removed clause.
#[derive(Clone, Debug, Default)]
pub struct PreprocProof {
    journal: Vec<ProofEvent>,
    /// Provenance of each output clause, parallel to
    /// [`PreprocResult::clauses`].
    clause_refs: Vec<PRef>,
    /// Provenance of the empty clause when the run derived UNSAT.
    unsat: Option<PRef>,
}

/// Proof ids assigned by [`PreprocProof::replay`].
#[derive(Clone, Debug)]
pub struct ReplayedIds {
    /// Proof id of each output clause, parallel to
    /// [`PreprocResult::clauses`].
    pub clause_ids: Vec<ClauseId>,
    /// Proof id of the derived empty clause, when the run proved the
    /// set unsatisfiable.
    pub unsat: Option<ClauseId>,
}

impl PreprocProof {
    /// Appends the journal to `proof` — every derivation becomes a
    /// `Derived` chain, every removal a deletion record — and returns
    /// the proof id of each output clause (and of the empty clause on
    /// UNSAT). `proof` must be the one holding the input clauses the
    /// run was fed (ids are resolved against it).
    pub fn replay(&self, proof: &mut Proof) -> ReplayedIds {
        let mut derived: Vec<ClauseId> = Vec::new();
        let resolve_ref = |derived: &[ClauseId], r: PRef| match r {
            PRef::Input(id) => id,
            PRef::Derived(k) => derived[k],
        };
        for ev in &self.journal {
            match ev {
                ProofEvent::Derive { start, steps } => {
                    let s = resolve_ref(&derived, *start);
                    let chain: Vec<ResStep> = steps
                        .iter()
                        .map(|&(pivot, other)| ResStep {
                            pivot,
                            other: resolve_ref(&derived, other),
                        })
                        .collect();
                    let id = proof.add_derived(s, chain);
                    derived.push(id);
                }
                ProofEvent::Delete(r) => {
                    let id = resolve_ref(&derived, *r);
                    proof.record_deletion(id);
                }
            }
        }
        ReplayedIds {
            clause_ids: self
                .clause_refs
                .iter()
                .map(|&r| resolve_ref(&derived, r))
                .collect(),
            unsat: self.unsat.map(|r| {
                let id = resolve_ref(&derived, r);
                proof.set_empty(id, Vec::new());
                id
            }),
        }
    }
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    part: Part,
    tag: u32,
    /// Variable-set signature for fast subset rejection.
    sig: u64,
    deleted: bool,
}

fn sig_of(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64))
}

/// Answer of the combined subsumption / self-subsumption check.
enum SubsumeKind {
    No,
    /// Every literal of the small clause occurs in the big one.
    Exact,
    /// All but one literal occur; that one occurs negated in the big
    /// clause (the payload is the big clause's literal to remove).
    Strengthen(Lit),
}

/// Checks whether `small` subsumes `big` outright, or subsumes it
/// after flipping exactly one literal (self-subsuming resolution).
/// Both slices must be sorted.
fn subsume_check(small: &[Lit], big: &[Lit]) -> SubsumeKind {
    if small.len() > big.len() {
        return SubsumeKind::No;
    }
    let mut flip: Option<Lit> = None;
    let mut j = 0;
    'outer: for &l in small {
        while j < big.len() {
            let b = big[j];
            j += 1;
            if b == l {
                continue 'outer;
            }
            if b == !l {
                if flip.is_some() {
                    return SubsumeKind::No;
                }
                flip = Some(b);
                continue 'outer;
            }
            if b > l && b.var() != l.var() {
                return SubsumeKind::No;
            }
        }
        return SubsumeKind::No;
    }
    match flip {
        None => SubsumeKind::Exact,
        Some(b) => SubsumeKind::Strengthen(b),
    }
}

/// An occurrence-list CNF simplifier; see the [module docs](self).
///
/// Usage: create with the variable count, [`freeze`](Self::freeze) the
/// interface, [`add_clause`](Self::add_clause) the set, then
/// [`run`](Self::run).
#[derive(Clone, Debug)]
pub struct Preprocessor {
    num_vars: usize,
    frozen: Vec<bool>,
    eliminated: Vec<bool>,
    clauses: Vec<Clause>,
    /// Literal code → indices of clauses that *may* contain it (stale
    /// entries are skipped on read and pruned on rebuild).
    occ: Vec<Vec<u32>>,
    /// Live occurrences per literal code.
    n_occ: Vec<u32>,
    /// Variables whose occurrence lists changed since they were last
    /// considered for elimination.
    touched: Vec<bool>,
    recon: ReconStack,
    stats: PreprocStats,
    unsat: bool,
    /// Provenance per clause, parallel to `clauses` (meaningful only
    /// when `logging`).
    prov: Vec<PRef>,
    /// Chronological derivation journal (only when `logging`).
    journal: Vec<ProofEvent>,
    /// Number of `Derive` events recorded so far (next derived index).
    n_derived: usize,
    /// Whether derivations are being journalled (set by the first
    /// [`add_clause_logged`](Preprocessor::add_clause_logged)).
    logging: bool,
    /// Provenance of the derived empty clause, when `unsat`.
    unsat_ref: Option<PRef>,
}

impl Preprocessor {
    /// Creates an empty preprocessor over `num_vars` variables.
    pub fn new(num_vars: usize) -> Preprocessor {
        Preprocessor {
            num_vars,
            frozen: vec![false; num_vars],
            eliminated: vec![false; num_vars],
            clauses: Vec::new(),
            occ: vec![Vec::new(); 2 * num_vars],
            n_occ: vec![0; 2 * num_vars],
            touched: vec![false; num_vars],
            recon: ReconStack::default(),
            stats: PreprocStats::default(),
            unsat: false,
            prov: Vec::new(),
            journal: Vec::new(),
            n_derived: 0,
            logging: false,
            unsat_ref: None,
        }
    }

    /// Marks `v` as interface: it will never be eliminated. Freeze
    /// every variable that is read from models, assumed, bound to
    /// other frames, or mentioned by clauses added after preprocessing.
    pub fn freeze(&mut self, v: Var) {
        self.frozen[v.index()] = true;
    }

    /// Whether `v` is frozen.
    pub fn is_frozen(&self, v: Var) -> bool {
        self.frozen[v.index()]
    }

    /// Adds a clause. Literals are normalized (sorted, deduplicated);
    /// tautologies are dropped; an empty clause marks the set
    /// unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit], part: Part, tag: u32) {
        self.add_with_prov(lits, part, tag, PRef::Input(ClauseId(u32::MAX)));
    }

    /// Like [`add_clause`](Preprocessor::add_clause), identifying the
    /// clause with its id in the caller's [`Proof`] and turning on
    /// derivation journalling for the run
    /// ([`PreprocResult::provenance`]). All clauses of a logged run
    /// must go through this method.
    pub fn add_clause_logged(&mut self, lits: &[Lit], part: Part, tag: u32, id: ClauseId) {
        self.logging = true;
        self.add_with_prov(lits, part, tag, PRef::Input(id));
    }

    fn add_with_prov(&mut self, lits: &[Lit], part: Part, tag: u32, prov: PRef) {
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        for w in ls.windows(2) {
            if w[0].var() == w[1].var() {
                return; // tautology
            }
        }
        if ls.is_empty() {
            self.unsat = true;
            if self.unsat_ref.is_none() {
                self.unsat_ref = Some(prov);
            }
            return;
        }
        self.push_clause(ls, part, tag, prov);
    }

    fn push_clause(&mut self, lits: Vec<Lit>, part: Part, tag: u32, prov: PRef) -> u32 {
        let idx = self.clauses.len() as u32;
        let sig = sig_of(&lits);
        for &l in &lits {
            self.occ[l.code()].push(idx);
            self.n_occ[l.code()] += 1;
            self.touched[l.var().index()] = true;
        }
        self.clauses.push(Clause {
            lits,
            part,
            tag,
            sig,
            deleted: false,
        });
        self.prov.push(prov);
        idx
    }

    /// Journals a derivation and returns the new clause's provenance.
    fn log_derive(&mut self, start: PRef, steps: Vec<(Var, PRef)>) -> PRef {
        debug_assert!(self.logging);
        self.journal.push(ProofEvent::Derive { start, steps });
        let r = PRef::Derived(self.n_derived);
        self.n_derived += 1;
        r
    }

    /// Journals the removal of clause `ci` (after any derivation that
    /// replaces it, so replay order stays chronological).
    fn log_delete(&mut self, ci: u32) {
        if self.logging {
            let r = self.prov[ci as usize];
            self.journal.push(ProofEvent::Delete(r));
        }
    }

    fn delete_clause(&mut self, ci: u32) {
        debug_assert!(!self.clauses[ci as usize].deleted);
        self.clauses[ci as usize].deleted = true;
        let n = self.clauses[ci as usize].lits.len();
        for i in 0..n {
            let l = self.clauses[ci as usize].lits[i];
            self.n_occ[l.code()] -= 1;
            self.touched[l.var().index()] = true;
        }
    }

    /// Live clause indices containing `l`: prunes stale occurrence
    /// entries in place, then hands back one owned copy (callers
    /// mutate the clause set while iterating).
    fn occ_of(&mut self, l: Lit) -> Vec<u32> {
        let mut list = std::mem::take(&mut self.occ[l.code()]);
        let clauses = &self.clauses;
        list.retain(|&ci| {
            let c = &clauses[ci as usize];
            !c.deleted && c.lits.contains(&l)
        });
        self.occ[l.code()] = list;
        self.occ[l.code()].clone()
    }

    /// Backward subsumption and strengthening from a work queue until
    /// fixpoint. Every clause index pushed on `queue` is used as the
    /// *subsuming* side against the clauses sharing its rarest
    /// variable.
    fn subsume_fixpoint(&mut self, queue: &mut Vec<u32>) {
        while let Some(ci) = queue.pop() {
            if self.unsat || self.clauses[ci as usize].deleted {
                continue;
            }
            // Pick the variable with the fewest occurrences to bound
            // the candidate scan.
            let lits = self.clauses[ci as usize].lits.clone();
            let best = lits
                .iter()
                .min_by_key(|l| self.n_occ[l.code()] + self.n_occ[(!**l).code()])
                .copied()
                .expect("clauses are nonempty");
            let mut cands = self.occ_of(best);
            cands.extend(self.occ_of(!best));
            let (sig, part, tag) = {
                let c = &self.clauses[ci as usize];
                (c.sig, c.part, c.tag)
            };
            for di in cands {
                if di == ci || self.clauses[di as usize].deleted {
                    continue;
                }
                let d = &self.clauses[di as usize];
                if sig & !d.sig != 0 || d.lits.len() < lits.len() {
                    continue;
                }
                match subsume_check(&lits, &d.lits) {
                    SubsumeKind::No => {}
                    SubsumeKind::Exact => {
                        // Deleting a subsumed clause is sound across
                        // parts (see module docs).
                        self.log_delete(di);
                        self.delete_clause(di);
                        self.stats.subsumed += 1;
                    }
                    SubsumeKind::Strengthen(rem) => {
                        // Strengthening is resolution: same part and
                        // tag only.
                        let d = &self.clauses[di as usize];
                        if d.part != part || d.tag != tag {
                            continue;
                        }
                        if self.logging {
                            // D′ = resolve(D, C) on rem: C ∖ {¬rem} ⊆
                            // D ∖ {rem} makes the resolvent exactly
                            // the strengthened clause. The old D is
                            // replaced, so journal its deletion.
                            let d_ref = self.prov[di as usize];
                            let c_ref = self.prov[ci as usize];
                            let nr = self.log_derive(d_ref, vec![(rem.var(), c_ref)]);
                            self.journal.push(ProofEvent::Delete(d_ref));
                            self.prov[di as usize] = nr;
                        }
                        let d = &mut self.clauses[di as usize];
                        let p = d.lits.iter().position(|&l| l == rem).expect("present");
                        d.lits.remove(p);
                        d.sig = sig_of(&d.lits);
                        self.n_occ[rem.code()] -= 1;
                        self.stats.strengthened += 1;
                        // The clause shrank: every remaining variable's
                        // elimination prospects changed too.
                        self.touched[rem.var().index()] = true;
                        let n = self.clauses[di as usize].lits.len();
                        for i in 0..n {
                            let w = self.clauses[di as usize].lits[i].var();
                            self.touched[w.index()] = true;
                        }
                        if self.clauses[di as usize].lits.is_empty() {
                            self.unsat = true;
                            if self.unsat_ref.is_none() {
                                self.unsat_ref = Some(self.prov[di as usize]);
                            }
                            return;
                        }
                        queue.push(di);
                    }
                }
            }
        }
    }

    /// Tries to eliminate `v`; returns `true` (and queues the
    /// resolvents for subsumption) on success.
    fn try_eliminate(&mut self, v: Var, cfg: &PreprocConfig, queue: &mut Vec<u32>) -> bool {
        if self.frozen[v.index()] || self.eliminated[v.index()] {
            return false;
        }
        let pos = self.occ_of(Lit::pos(v));
        let neg = self.occ_of(Lit::neg(v));
        if pos.is_empty() && neg.is_empty() {
            return false;
        }
        if pos.len() > cfg.max_occ || neg.len() > cfg.max_occ {
            return false;
        }
        // Resolution must stay inside one part/tag (see module docs).
        let (part, tag) = {
            let c = &self.clauses[*pos.first().or(neg.first()).expect("nonempty") as usize];
            (c.part, c.tag)
        };
        if pos.iter().chain(&neg).any(|&ci| {
            self.clauses[ci as usize].part != part || self.clauses[ci as usize].tag != tag
        }) {
            return false;
        }
        // Build all non-tautological resolvents (remembering which
        // positive/negative clause pair produced each, for the proof
        // journal), bailing out when the bound is exceeded.
        let budget = pos.len() as isize + neg.len() as isize + cfg.max_growth;
        let mut resolvents: Vec<(Vec<Lit>, u32, u32)> = Vec::new();
        for &pi in &pos {
            for &ni in &neg {
                let r = resolve(
                    &self.clauses[pi as usize].lits,
                    &self.clauses[ni as usize].lits,
                    v,
                );
                if let Some(r) = r {
                    if r.len() > cfg.max_resolvent_len {
                        return false;
                    }
                    resolvents.push((r, pi, ni));
                    if resolvents.len() as isize > budget {
                        return false;
                    }
                }
            }
        }
        // Commit: save originals for reconstruction, delete them, add
        // the resolvents. Each kept resolvent is journalled as a
        // one-step chain `pos ⊗_v neg`; the replaced clauses stay
        // valid antecedents, so deleting them first is harmless.
        let mut saved: Vec<Vec<Lit>> = Vec::with_capacity(pos.len() + neg.len());
        for &ci in pos.iter().chain(&neg) {
            saved.push(self.clauses[ci as usize].lits.clone());
            self.log_delete(ci);
            self.delete_clause(ci);
        }
        self.recon.entries.push((v, saved));
        self.eliminated[v.index()] = true;
        self.stats.elim_vars += 1;
        for (r, pi, ni) in resolvents {
            let prov = if self.logging {
                let p_ref = self.prov[pi as usize];
                let n_ref = self.prov[ni as usize];
                self.log_derive(p_ref, vec![(v, n_ref)])
            } else {
                PRef::Input(ClauseId(u32::MAX))
            };
            if r.is_empty() {
                self.unsat = true;
                if self.unsat_ref.is_none() {
                    self.unsat_ref = Some(prov);
                }
                return true;
            }
            let idx = self.push_clause(r, part, tag, prov);
            queue.push(idx);
        }
        true
    }

    /// Runs subsumption, strengthening and (optionally) bounded
    /// variable elimination to fixpoint and returns the simplified set.
    pub fn run(mut self, cfg: &PreprocConfig) -> PreprocResult {
        let mut queue: Vec<u32> = (0..self.clauses.len() as u32).collect();
        self.subsume_fixpoint(&mut queue);
        if cfg.var_elim {
            // Touched-variable worklist: the first round considers
            // every variable; later rounds only the ones whose
            // occurrence lists changed since.
            loop {
                if self.unsat {
                    break;
                }
                let mut order: Vec<Var> = (0..self.num_vars)
                    .map(Var::from_index)
                    .filter(|v| {
                        self.touched[v.index()]
                            && !self.frozen[v.index()]
                            && !self.eliminated[v.index()]
                    })
                    .collect();
                for v in &order {
                    self.touched[v.index()] = false;
                }
                if order.is_empty() {
                    break;
                }
                // Cheapest variables first: elimination of a
                // low-occurrence variable shrinks the set and may
                // enable further eliminations.
                order.sort_by_key(|v| {
                    self.n_occ[Lit::pos(*v).code()] + self.n_occ[Lit::neg(*v).code()]
                });
                for v in order {
                    if self.unsat {
                        break;
                    }
                    if self.try_eliminate(v, cfg, &mut queue) {
                        self.subsume_fixpoint(&mut queue);
                    }
                }
            }
        }
        let mut clauses = Vec::new();
        let mut clause_refs = Vec::new();
        for (i, c) in self.clauses.into_iter().enumerate() {
            if c.deleted {
                continue;
            }
            clauses.push(PreprocClause {
                lits: c.lits,
                part: c.part,
                tag: c.tag,
            });
            clause_refs.push(self.prov[i]);
        }
        let provenance = self.logging.then_some(PreprocProof {
            journal: self.journal,
            clause_refs,
            unsat: self.unsat_ref,
        });
        PreprocResult {
            clauses,
            stats: self.stats,
            recon: self.recon,
            eliminated: self.eliminated,
            unsat: self.unsat,
            provenance,
        }
    }
}

/// The resolvent of two sorted clauses on `pivot`; `None` for
/// tautologies. The result is sorted and duplicate-free.
fn resolve(pos: &[Lit], neg: &[Lit], pivot: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(pos.len() + neg.len() - 2);
    let mut i = 0;
    let mut j = 0;
    loop {
        let a = pos.get(i).copied().filter(|l| l.var() != pivot);
        let b = neg.get(j).copied().filter(|l| l.var() != pivot);
        // Skip pivot literals.
        if a.is_none() && i < pos.len() {
            i += 1;
            continue;
        }
        if b.is_none() && j < neg.len() {
            j += 1;
            continue;
        }
        match (a, b) {
            (None, None) => break,
            (Some(x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(y)) => {
                out.push(y);
                j += 1;
            }
            (Some(x), Some(y)) => {
                if x == y {
                    out.push(x);
                    i += 1;
                    j += 1;
                } else if x.var() == y.var() {
                    return None; // tautology
                } else if x < y {
                    out.push(x);
                    i += 1;
                } else {
                    out.push(y);
                    j += 1;
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::new(Var::from_index(v), pos)
    }

    fn sat_of(clauses: &[Vec<Lit>], nvars: usize, assumptions: &[Lit]) -> SolveResult {
        let mut s = Solver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(c);
        }
        s.solve_with(assumptions)
    }

    #[test]
    fn subsumption_deletes_supersets() {
        let mut p = Preprocessor::new(3);
        p.add_clause(&[lit(0, true)], Part::A, 0);
        p.add_clause(&[lit(0, true), lit(1, true)], Part::A, 0);
        p.add_clause(&[lit(0, true), lit(1, false), lit(2, true)], Part::A, 0);
        for v in 0..3 {
            p.freeze(Var::from_index(v));
        }
        let r = p.run(&PreprocConfig::default());
        assert!(!r.unsat);
        assert_eq!(r.stats.subsumed, 2);
        assert_eq!(r.clauses.len(), 1);
        assert_eq!(r.clauses[0].lits, vec![lit(0, true)]);
    }

    #[test]
    fn strengthening_removes_negated_literal() {
        // (a) and (!a | b): the unit strengthens the second to (b).
        let mut p = Preprocessor::new(2);
        p.add_clause(&[lit(0, true)], Part::A, 0);
        p.add_clause(&[lit(0, false), lit(1, true)], Part::A, 0);
        p.freeze(Var::from_index(0));
        p.freeze(Var::from_index(1));
        let r = p.run(&PreprocConfig::default());
        assert!(r.stats.strengthened >= 1);
        assert!(r.clauses.iter().any(|c| c.lits == vec![lit(1, true)]));
        assert!(!r.clauses.iter().any(|c| c.lits.len() == 2));
    }

    #[test]
    fn contradictory_units_derive_empty_clause() {
        let mut p = Preprocessor::new(1);
        p.add_clause(&[lit(0, true)], Part::A, 0);
        p.add_clause(&[lit(0, false)], Part::A, 0);
        let r = p.run(&PreprocConfig::default());
        assert!(r.unsat);
    }

    #[test]
    fn eliminates_tseitin_and_gate() {
        // g <-> a & b over frozen a, b: g's three clauses resolve to
        // nothing (all resolvents tautological), so g is eliminated
        // and the output is empty.
        let (a, b, g) = (0, 1, 2);
        let mut p = Preprocessor::new(3);
        p.add_clause(&[lit(g, false), lit(a, true)], Part::A, 0);
        p.add_clause(&[lit(g, false), lit(b, true)], Part::A, 0);
        p.add_clause(&[lit(a, false), lit(b, false), lit(g, true)], Part::A, 0);
        p.freeze(Var::from_index(a));
        p.freeze(Var::from_index(b));
        let r = p.run(&PreprocConfig::default());
        assert_eq!(r.stats.elim_vars, 1);
        assert!(r.clauses.is_empty());
        // Reconstruction: any frozen assignment extends to g = a & b.
        for m in 0..4u8 {
            let mut vals = vec![m & 1 != 0, m & 2 != 0, false];
            r.recon.extend(&mut vals);
            assert_eq!(vals[g], vals[a] && vals[b], "model {m:#b}");
        }
    }

    #[test]
    fn frozen_variables_survive() {
        let mut p = Preprocessor::new(3);
        p.add_clause(&[lit(2, false), lit(0, true)], Part::A, 0);
        p.add_clause(&[lit(2, true), lit(1, true)], Part::A, 0);
        for v in 0..3 {
            p.freeze(Var::from_index(v));
        }
        let r = p.run(&PreprocConfig::default());
        assert_eq!(r.stats.elim_vars, 0);
        assert_eq!(r.clauses.len(), 2);
    }

    #[test]
    fn parts_block_cross_partition_resolution() {
        // v occurs in an A clause and a B clause: it must survive, and
        // no strengthening may mix the parts.
        let (a, b, v) = (0, 1, 2);
        let mut p = Preprocessor::new(3);
        p.add_clause(&[lit(v, true), lit(a, true)], Part::A, 0);
        p.add_clause(&[lit(v, false), lit(b, true)], Part::B, 0);
        p.freeze(Var::from_index(a));
        p.freeze(Var::from_index(b));
        let r = p.run(&PreprocConfig::default());
        assert_eq!(r.stats.elim_vars, 0, "cross-part variable eliminated");
        assert_eq!(r.clauses.len(), 2);
        // Same shape within one part: eliminated.
        let mut p = Preprocessor::new(3);
        p.add_clause(&[lit(v, true), lit(a, true)], Part::A, 0);
        p.add_clause(&[lit(v, false), lit(b, true)], Part::A, 0);
        p.freeze(Var::from_index(a));
        p.freeze(Var::from_index(b));
        let r = p.run(&PreprocConfig::default());
        assert_eq!(r.stats.elim_vars, 1);
        assert_eq!(r.clauses.len(), 1);
        assert_eq!(r.clauses[0].lits, vec![lit(a, true), lit(b, true)]);
    }

    #[test]
    fn tags_block_resolution_like_parts() {
        let (a, b, v) = (0, 1, 2);
        let mut p = Preprocessor::new(3);
        p.add_clause(&[lit(v, true), lit(a, true)], Part::A, 1);
        p.add_clause(&[lit(v, false), lit(b, true)], Part::A, 2);
        p.freeze(Var::from_index(a));
        p.freeze(Var::from_index(b));
        let r = p.run(&PreprocConfig::default());
        assert_eq!(r.stats.elim_vars, 0, "cross-tag variable eliminated");
    }

    /// The core contract on random CNF: equisatisfiable under every
    /// assumption set over frozen variables, and reconstructed models
    /// satisfy the original clauses.
    #[test]
    fn random_cnf_equisat_and_reconstruction() {
        let mut rng = StdRng::seed_from_u64(0x5A7E117E);
        for round in 0..200 {
            let nvars = rng.gen_range(2..=10usize);
            let nclauses = rng.gen_range(1..=30usize);
            let nfrozen = rng.gen_range(1..=nvars);
            let mut cnf: Vec<Vec<Lit>> = Vec::new();
            let mut p = Preprocessor::new(nvars);
            for v in 0..nfrozen {
                p.freeze(Var::from_index(v));
            }
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=4usize);
                let cl: Vec<Lit> = (0..len)
                    .map(|_| lit(rng.gen_range(0..nvars), rng.gen_bool(0.5)))
                    .collect();
                p.add_clause(&cl, Part::A, 0);
                cnf.push(cl);
            }
            let r = p.clone().run(&PreprocConfig::default());
            let simp: Vec<Vec<Lit>> = r.clauses.iter().map(|c| c.lits.clone()).collect();
            if r.unsat {
                assert_eq!(
                    sat_of(&cnf, nvars, &[]),
                    SolveResult::Unsat,
                    "round {round}: preproc-unsat formula was SAT"
                );
                continue;
            }
            for _ in 0..6 {
                let assumptions: Vec<Lit> = (0..rng.gen_range(0..=nfrozen))
                    .map(|_| lit(rng.gen_range(0..nfrozen), rng.gen_bool(0.5)))
                    .collect();
                let want = sat_of(&cnf, nvars, &assumptions);
                let got = sat_of(&simp, nvars, &assumptions);
                assert_eq!(
                    want, got,
                    "round {round}: cnf {cnf:?} simp {simp:?} assumptions {assumptions:?}"
                );
            }
            // Reconstruction: solve the simplified set, extend the
            // model, check every original clause.
            let mut s = Solver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for c in &simp {
                s.add_clause(c);
            }
            if s.solve() == SolveResult::Sat {
                let mut vals: Vec<bool> = (0..nvars)
                    .map(|v| s.value(lit(v, true)).unwrap_or(false))
                    .collect();
                r.recon.extend(&mut vals);
                for cl in &cnf {
                    assert!(
                        cl.iter().any(|&l| vals[l.var().index()] == l.is_positive()),
                        "round {round}: reconstructed model violates {cl:?}"
                    );
                }
            }
        }
    }

    /// Logged runs journal every derivation and deletion; replaying
    /// the journal into the proof that holds the inputs yields chains
    /// the independent checker accepts, with output-clause ids whose
    /// replayed literal sets match the output clauses.
    #[test]
    fn logged_provenance_replays_into_checkable_proof() {
        let mut rng = StdRng::seed_from_u64(0x10C4ED);
        for round in 0..200 {
            let nvars = rng.gen_range(2..=9usize);
            let nclauses = rng.gen_range(1..=24usize);
            let nfrozen = rng.gen_range(1..=nvars);
            let mut proof = Proof::default();
            let mut p = Preprocessor::new(nvars);
            for v in 0..nfrozen {
                p.freeze(Var::from_index(v));
            }
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=4usize);
                let cl: Vec<Lit> = (0..len)
                    .map(|_| lit(rng.gen_range(0..nvars), rng.gen_bool(0.5)))
                    .collect();
                let part = if rng.gen_bool(0.5) { Part::A } else { Part::B };
                let id = proof.add_original(part, cl.clone(), 0);
                p.add_clause_logged(&cl, part, 0, id);
            }
            let r = p.run(&PreprocConfig::default());
            let prov = r.provenance.as_ref().expect("logged run");
            let ids = prov.replay(&mut proof);
            let mut checker = crate::proofcheck::ProofChecker::new(&proof);
            for (c, &id) in r.clauses.iter().zip(&ids.clause_ids) {
                checker.check_learnt(id, &c.lits);
            }
            let report = checker.finish();
            assert!(
                report.ok(),
                "round {round}: {}",
                report.first_failure().unwrap()
            );
            assert_eq!(r.unsat, ids.unsat.is_some());
            assert_eq!(r.unsat, proof.empty_clause().is_some());
        }
    }

    #[test]
    fn resolve_merges_and_detects_tautologies() {
        let pos = vec![lit(0, true), lit(1, true)];
        let neg = vec![lit(0, false), lit(2, true)];
        assert_eq!(
            resolve(&pos, &neg, Var::from_index(0)),
            Some(vec![lit(1, true), lit(2, true)])
        );
        let neg2 = vec![lit(0, false), lit(1, false)];
        assert_eq!(resolve(&pos, &neg2, Var::from_index(0)), None);
        // Shared literal is deduplicated.
        let neg3 = vec![lit(0, false), lit(1, true)];
        assert_eq!(
            resolve(&pos, &neg3, Var::from_index(0)),
            Some(vec![lit(1, true)])
        );
    }
}
