//! Independent checker for recorded resolution proofs.
//!
//! # The proof format
//!
//! A [`Proof`] is a list of clauses in derivation order, each either
//!
//! * [`ProofClause::Original`] — added by the caller with a [`Part`]
//!   label (interpolation partition) and its literal list, or
//! * [`ProofClause::Derived`] — defined by a resolution chain: a
//!   `start` clause id plus an ordered list of [`ResStep`]s, each
//!   naming a pivot variable and the antecedent clause resolved
//!   against.
//!
//! On UNSAT the proof additionally stores one final chain deriving the
//! empty clause ([`Proof::empty_clause`]). Clause ids are never
//! reused; deletions ([`Proof::deletions`]) only mark clauses removed
//! from the *solver*, the arena entry stays replayable as an
//! antecedent of already-recorded chains.
//!
//! # Checker obligations
//!
//! [`check`] replays every derivation from scratch, independently of
//! the solver that produced it, and verifies:
//!
//! 1. **Antecedent existence** — `start` and every step's `other`
//!    refer to clauses recorded *earlier* (ids strictly below the
//!    derived clause's own id; the final empty chain may reference any
//!    recorded clause). Violation: [`FailureKind::MissingAntecedent`].
//! 2. **Resolution validity** — each step's pivot occurs with one
//!    polarity in the running clause and the opposite polarity in the
//!    antecedent; the step removes both pivot literals and unions the
//!    rest. Violation: [`FailureKind::InvalidResolution`].
//! 3. **Empty-clause chain** — on UNSAT, replaying the final chain
//!    must leave no literals. Violation: [`FailureKind::NonEmptyFinal`].
//! 4. **Tag consistency** — original clauses carry a caller tag,
//!    derived clauses carry the reserved `u32::MAX`; a mismatch means
//!    the partition bookkeeping interpolation relies on is corrupt.
//!    Violation: [`FailureKind::TagMismatch`].
//! 5. **Deletion sanity** — every recorded deletion names an existing
//!    clause, at most once. Violation: [`FailureKind::BadDeletion`].
//!
//! Two further obligations need outside context and have their own
//! entry points:
//!
//! * **Learnt cross-check** ([`ProofChecker::check_learnt`], used by
//!   [`Solver::check_proof`](crate::Solver::check_proof)) — the
//!   literal set a chain derives must equal the clause the solver
//!   actually stored under that proof id. Violation:
//!   [`FailureKind::LearntMismatch`].
//! * **Interpolation side-condition**
//!   ([`ProofChecker::check_interpolant`]) — a partial interpolant
//!   extracted from this proof may only mention variables in the
//!   shared(A, B) vocabulary induced by the Part labels. A flipped
//!   label shrinks or shifts that vocabulary, so an interpolant
//!   computed before the flip fails this check. Violation:
//!   [`FailureKind::UnsharedVariable`].
//!
//! The result is a structured [`ProofReport`]: chains checked, maximum
//! derivation depth, proof arena bytes, and the list of failures with
//! the offending [`ClauseId`]s. The checker never panics on corrupt
//! input — every malformed construct becomes a report entry.

use crate::interp::Interpolant;
use crate::lit::{Lit, Var};
use crate::proof::{ClauseId, Part, Proof, ProofClause};
use std::collections::HashSet;

/// The class of a proof-check violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A chain references a clause id at or beyond its own position
    /// (or beyond the proof entirely).
    MissingAntecedent,
    /// A resolution step's pivot does not occur with opposite
    /// polarities in the two clauses being resolved.
    InvalidResolution,
    /// A replayed chain's literal set differs from the clause the
    /// solver stored under that derivation.
    LearntMismatch,
    /// The final chain does not derive the empty clause.
    NonEmptyFinal,
    /// An original clause carries the reserved derived-tag, or a
    /// derived clause carries a caller tag.
    TagMismatch,
    /// An interpolant extracted from this proof mentions a variable
    /// outside the shared(A, B) vocabulary.
    UnsharedVariable,
    /// A recorded deletion names a clause that does not exist, or
    /// names the same clause twice.
    BadDeletion,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::MissingAntecedent => "missing antecedent",
            FailureKind::InvalidResolution => "invalid resolution",
            FailureKind::LearntMismatch => "learnt/derivation mismatch",
            FailureKind::NonEmptyFinal => "final chain not empty",
            FailureKind::TagMismatch => "tag/kind mismatch",
            FailureKind::UnsharedVariable => "interpolant variable not shared",
            FailureKind::BadDeletion => "bad deletion record",
        };
        f.write_str(s)
    }
}

/// One proof-check violation: what went wrong and where.
#[derive(Clone, Debug)]
pub struct ProofFailure {
    /// The violation class.
    pub kind: FailureKind,
    /// The offending clause (the derived clause being replayed, the
    /// learnt being cross-checked, or the deletion target). For
    /// failures in the final empty-clause chain this is its `start`.
    pub clause: ClauseId,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for ProofFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at clause {}: {}",
            self.kind,
            self.clause.index(),
            self.detail
        )
    }
}

/// The outcome of a proof check.
#[derive(Clone, Debug, Default)]
pub struct ProofReport {
    /// Clauses recorded in the proof (originals + derived).
    pub clauses: usize,
    /// Derivation chains replayed (derived clauses plus the final
    /// empty-clause chain if present).
    pub chains_checked: u64,
    /// Resolution steps replayed across all chains.
    pub steps_checked: u64,
    /// Maximum derivation depth (an original has depth 0; a derived
    /// clause is one deeper than its deepest antecedent).
    pub max_depth: usize,
    /// Approximate proof arena bytes ([`Proof::bytes`]).
    pub proof_bytes: u64,
    /// Whether the proof contains a final empty-clause chain.
    pub has_refutation: bool,
    /// All violations found, in discovery order.
    pub failures: Vec<ProofFailure>,
}

impl ProofReport {
    /// Whether the proof passed every check.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// A one-line summary of the first failure, if any.
    pub fn first_failure(&self) -> Option<String> {
        self.failures.first().map(ToString::to_string)
    }
}

/// Replays a recorded proof and accumulates a [`ProofReport`].
///
/// Construction ([`ProofChecker::new`]) performs the full structural
/// replay (obligations 1–5 in the module docs); the optional
/// [`check_learnt`](ProofChecker::check_learnt) and
/// [`check_interpolant`](ProofChecker::check_interpolant) passes add
/// context-dependent obligations, and [`finish`](ProofChecker::finish)
/// yields the report.
pub struct ProofChecker<'a> {
    proof: &'a Proof,
    /// Literal set each proof clause denotes, by id (best-effort for
    /// clauses whose chain failed).
    sets: Vec<HashSet<Lit>>,
    report: ProofReport,
}

impl<'a> ProofChecker<'a> {
    /// Replays every recorded chain of `proof`, checking antecedent
    /// existence, resolution validity, the final empty-clause chain,
    /// tag consistency and deletion sanity.
    pub fn new(proof: &'a Proof) -> ProofChecker<'a> {
        let mut report = ProofReport {
            clauses: proof.len(),
            proof_bytes: proof.bytes(),
            has_refutation: proof.empty_clause().is_some(),
            ..ProofReport::default()
        };
        let n = proof.len();
        let mut sets: Vec<HashSet<Lit>> = Vec::with_capacity(n);
        let mut depth: Vec<usize> = Vec::with_capacity(n);
        for (i, pc) in proof.clauses().iter().enumerate() {
            let id = ClauseId(i as u32);
            let tag = proof.tag_of(id);
            match pc {
                ProofClause::Original { lits, .. } => {
                    if tag == u32::MAX {
                        report.failures.push(ProofFailure {
                            kind: FailureKind::TagMismatch,
                            clause: id,
                            detail: "original clause carries the reserved derived-tag".into(),
                        });
                    }
                    sets.push(lits.iter().copied().collect());
                    depth.push(0);
                }
                ProofClause::Derived { start, steps } => {
                    if tag != u32::MAX {
                        report.failures.push(ProofFailure {
                            kind: FailureKind::TagMismatch,
                            clause: id,
                            detail: format!("derived clause carries caller tag {tag}"),
                        });
                    }
                    report.chains_checked += 1;
                    let mut d = 0usize;
                    let mut cur: HashSet<Lit> = if start.index() < i {
                        d = d.max(depth[start.index()] + 1);
                        sets[start.index()].clone()
                    } else {
                        report.failures.push(ProofFailure {
                            kind: FailureKind::MissingAntecedent,
                            clause: id,
                            detail: format!("chain starts at future clause {}", start.index()),
                        });
                        HashSet::new()
                    };
                    for st in steps {
                        report.steps_checked += 1;
                        if st.other.index() >= i {
                            report.failures.push(ProofFailure {
                                kind: FailureKind::MissingAntecedent,
                                clause: id,
                                detail: format!(
                                    "step resolves against future clause {}",
                                    st.other.index()
                                ),
                            });
                            continue;
                        }
                        d = d.max(depth[st.other.index()] + 1);
                        if let Err(detail) =
                            resolve_into(&mut cur, &sets[st.other.index()], st.pivot)
                        {
                            report.failures.push(ProofFailure {
                                kind: FailureKind::InvalidResolution,
                                clause: id,
                                detail,
                            });
                        }
                    }
                    report.max_depth = report.max_depth.max(d);
                    sets.push(cur);
                    depth.push(d);
                }
            }
        }

        // The final empty-clause chain, if recorded.
        if let Some((start, steps)) = proof.empty_clause() {
            report.chains_checked += 1;
            let mut cur: HashSet<Lit> = if start.index() < n {
                sets[start.index()].clone()
            } else {
                report.failures.push(ProofFailure {
                    kind: FailureKind::MissingAntecedent,
                    clause: start,
                    detail: "empty-clause chain starts at a nonexistent clause".into(),
                });
                HashSet::new()
            };
            let mut d = if start.index() < n {
                depth[start.index()] + 1
            } else {
                0
            };
            for st in steps {
                report.steps_checked += 1;
                if st.other.index() >= n {
                    report.failures.push(ProofFailure {
                        kind: FailureKind::MissingAntecedent,
                        clause: start,
                        detail: format!(
                            "empty-clause step resolves against nonexistent clause {}",
                            st.other.index()
                        ),
                    });
                    continue;
                }
                d = d.max(depth[st.other.index()] + 1);
                if let Err(detail) = resolve_into(&mut cur, &sets[st.other.index()], st.pivot) {
                    report.failures.push(ProofFailure {
                        kind: FailureKind::InvalidResolution,
                        clause: start,
                        detail,
                    });
                }
            }
            report.max_depth = report.max_depth.max(d);
            if !cur.is_empty() {
                let mut ls: Vec<String> = cur.iter().map(ToString::to_string).collect();
                ls.sort();
                report.failures.push(ProofFailure {
                    kind: FailureKind::NonEmptyFinal,
                    clause: start,
                    detail: format!("final chain left literals [{}]", ls.join(", ")),
                });
            }
        }

        // Deletion sanity: in range, no duplicates.
        let mut seen: HashSet<ClauseId> = HashSet::new();
        for &d in proof.deletions() {
            if d.index() >= n {
                report.failures.push(ProofFailure {
                    kind: FailureKind::BadDeletion,
                    clause: d,
                    detail: "deletion of a nonexistent clause".into(),
                });
            } else if !seen.insert(d) {
                report.failures.push(ProofFailure {
                    kind: FailureKind::BadDeletion,
                    clause: d,
                    detail: "clause deleted twice".into(),
                });
            }
        }

        ProofChecker {
            proof,
            sets,
            report,
        }
    }

    /// Cross-checks a stored clause against its recorded derivation:
    /// the replayed literal set of proof clause `id` must equal
    /// `lits`. Used by [`Solver::check_proof`](crate::Solver::check_proof)
    /// for every clause live in the clause database.
    pub fn check_learnt(&mut self, id: ClauseId, lits: &[Lit]) {
        if id.index() >= self.sets.len() {
            self.report.failures.push(ProofFailure {
                kind: FailureKind::LearntMismatch,
                clause: id,
                detail: "stored clause points at a nonexistent derivation".into(),
            });
            return;
        }
        let want: HashSet<Lit> = lits.iter().copied().collect();
        if self.sets[id.index()] != want {
            let mut got: Vec<String> = self.sets[id.index()]
                .iter()
                .map(ToString::to_string)
                .collect();
            got.sort();
            let mut exp: Vec<String> = want.iter().map(ToString::to_string).collect();
            exp.sort();
            self.report.failures.push(ProofFailure {
                kind: FailureKind::LearntMismatch,
                clause: id,
                detail: format!(
                    "derivation yields [{}], stored clause is [{}]",
                    got.join(", "),
                    exp.join(", ")
                ),
            });
        }
    }

    /// Checks the interpolation side-condition: every variable `itp`
    /// mentions must be in the shared(A, B) vocabulary induced by the
    /// proof's Part labels (mirroring the labelling
    /// [`Solver::interpolant`](crate::Solver::interpolant) uses). A
    /// flipped Part label changes that vocabulary, so an interpolant
    /// computed under the uncorrupted labels fails here.
    pub fn check_interpolant(&mut self, itp: &Interpolant) {
        let shared = self.shared_vars();
        for v in itp.vars() {
            if !shared.contains(&v) {
                self.report.failures.push(ProofFailure {
                    kind: FailureKind::UnsharedVariable,
                    clause: ClauseId(0),
                    detail: format!("interpolant mentions {v}, not shared between A and B"),
                });
            }
        }
    }

    /// The shared(A, B) vocabulary under the default labelling (the
    /// one [`Solver::interpolant`](crate::Solver::interpolant) uses:
    /// stored Part for tag 0 and untagged clauses, `A` for other
    /// caller tags).
    fn shared_vars(&self) -> HashSet<Var> {
        let mut in_a: HashSet<Var> = HashSet::new();
        let mut in_b: HashSet<Var> = HashSet::new();
        for (i, pc) in self.proof.clauses().iter().enumerate() {
            if let ProofClause::Original { part, lits } = pc {
                let tag = self.proof.tag_of(ClauseId(i as u32));
                let eff = if tag == u32::MAX || tag == 0 {
                    *part
                } else {
                    Part::A
                };
                let set = match eff {
                    Part::A => &mut in_a,
                    Part::B => &mut in_b,
                };
                for l in lits {
                    set.insert(l.var());
                }
            }
        }
        in_a.intersection(&in_b).copied().collect()
    }

    /// Consumes the checker and yields the accumulated report.
    pub fn finish(self) -> ProofReport {
        self.report
    }
}

/// Replays every chain of `proof` and reports the structural
/// obligations (antecedents, resolutions, final chain, tags,
/// deletions). Convenience wrapper over [`ProofChecker`].
pub fn check(proof: &Proof) -> ProofReport {
    ProofChecker::new(proof).finish()
}

/// Like [`check`], additionally verifying the interpolation
/// side-condition for an interpolant extracted from this proof.
pub fn check_with_interpolant(proof: &Proof, itp: &Interpolant) -> ProofReport {
    let mut c = ProofChecker::new(proof);
    c.check_interpolant(itp);
    c.finish()
}

/// One resolution step on `pivot`: `cur := (cur \ {pivot, !pivot}) ∪
/// (other \ {pivot, !pivot})`, valid only when the pivot occurs with
/// opposite polarities in the two sides.
fn resolve_into(cur: &mut HashSet<Lit>, other: &HashSet<Lit>, pivot: Var) -> Result<(), String> {
    let pos = Lit::pos(pivot);
    let neg = Lit::neg(pivot);
    let in_cur = (cur.contains(&pos), cur.contains(&neg));
    let in_other = (other.contains(&pos), other.contains(&neg));
    let ok = (in_cur.0 && in_other.1) || (in_cur.1 && in_other.0);
    if !ok {
        return Err(format!(
            "pivot {pivot} occurs as (pos, neg) = {in_cur:?} in the running clause and {in_other:?} in the antecedent"
        ));
    }
    cur.remove(&pos);
    cur.remove(&neg);
    for &l in other {
        if l.var() != pivot {
            cur.insert(l);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::ResStep;
    use crate::solver::{SolveResult, Solver};

    fn refuting_proof() -> Proof {
        // A: {x}, {!x, y}   B: {!y}  — UNSAT.
        let mut p = Proof::default();
        let x = Var::from_index(0);
        let y = Var::from_index(1);
        let c0 = p.add_original(Part::A, vec![Lit::pos(x)], 0);
        let c1 = p.add_original(Part::A, vec![Lit::neg(x), Lit::pos(y)], 0);
        let c2 = p.add_original(Part::B, vec![Lit::neg(y)], 0);
        // {y} by resolving c1 with c0 on x.
        let c3 = p.add_derived(
            c1,
            vec![ResStep {
                pivot: x,
                other: c0,
            }],
        );
        // Empty clause: resolve {y} with {!y} on y.
        p.set_empty(
            c3,
            vec![ResStep {
                pivot: y,
                other: c2,
            }],
        );
        p
    }

    #[test]
    fn valid_proof_passes() {
        let p = refuting_proof();
        let r = check(&p);
        assert!(r.ok(), "{:?}", r.failures);
        assert_eq!(r.clauses, 4);
        assert_eq!(r.chains_checked, 2);
        assert_eq!(r.steps_checked, 2);
        assert_eq!(r.max_depth, 2);
        assert!(r.has_refutation);
        assert!(r.proof_bytes > 0);
    }

    #[test]
    fn swapped_pivot_is_invalid_resolution() {
        let mut p = refuting_proof();
        // Corrupt: the c3 chain's pivot becomes y (absent with opposite
        // polarities in c1/c0).
        if let ProofClause::Derived { steps, .. } = &mut p.clauses[3] {
            steps[0].pivot = Var::from_index(1);
        }
        let r = check(&p);
        assert!(!r.ok());
        assert!(r
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::InvalidResolution));
    }

    #[test]
    fn dropped_final_step_is_nonempty_final() {
        let mut p = refuting_proof();
        if let Some((_, steps)) = &mut p.empty {
            steps.clear();
        }
        let r = check(&p);
        assert!(r
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::NonEmptyFinal));
    }

    #[test]
    fn future_antecedent_is_missing() {
        let mut p = refuting_proof();
        if let ProofClause::Derived { steps, .. } = &mut p.clauses[3] {
            steps[0].other = ClauseId(99);
        }
        let r = check(&p);
        assert!(r
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::MissingAntecedent));
    }

    #[test]
    fn self_reference_is_missing_antecedent() {
        let mut p = refuting_proof();
        if let ProofClause::Derived { steps, .. } = &mut p.clauses[3] {
            steps[0].other = ClauseId(3); // itself
        }
        let r = check(&p);
        assert!(r
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::MissingAntecedent));
    }

    #[test]
    fn corrupted_tag_is_tag_mismatch() {
        let mut p = refuting_proof();
        p.tags[3] = 7; // derived clause must carry u32::MAX
        let r = check(&p);
        assert!(r
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::TagMismatch));
        let mut p = refuting_proof();
        p.tags[0] = u32::MAX; // original must not
        let r = check(&p);
        assert!(r
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::TagMismatch));
    }

    #[test]
    fn flipped_part_label_fails_interpolant_vocabulary() {
        // A: {x}, B: {!x, y}, {!y}. Shared = {x}; interpolant is `x`.
        let mut s = Solver::with_proof();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause_in(&[Lit::pos(x)], Part::A);
        s.add_clause_in(&[Lit::neg(x), Lit::pos(y)], Part::B);
        s.add_clause_in(&[Lit::neg(y)], Part::B);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let itp = s.interpolant().expect("interpolant");
        let proof = s.proof().expect("proof recorded").clone();
        assert!(check_with_interpolant(&proof, &itp).ok());
        // Flip the only A clause to B: nothing is shared any more, so
        // the interpolant's mention of x is out of vocabulary.
        let mut bad = proof;
        if let ProofClause::Original { part, .. } = &mut bad.clauses[0] {
            *part = Part::B;
        }
        let r = check_with_interpolant(&bad, &itp);
        assert!(r
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::UnsharedVariable));
    }

    #[test]
    fn bad_deletions_are_reported() {
        let mut p = refuting_proof();
        p.record_deletion(ClauseId(1));
        assert!(check(&p).ok(), "in-range single deletion is fine");
        p.record_deletion(ClauseId(1));
        assert!(check(&p)
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::BadDeletion));
        let mut p = refuting_proof();
        p.record_deletion(ClauseId(77));
        assert!(check(&p)
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::BadDeletion));
    }

    #[test]
    fn learnt_mismatch_detected() {
        let p = refuting_proof();
        let mut c = ProofChecker::new(&p);
        c.check_learnt(ClauseId(3), &[Lit::pos(Var::from_index(1))]);
        assert!(c.finish().ok(), "derivation 3 yields {{y}}");
        let mut c = ProofChecker::new(&p);
        c.check_learnt(ClauseId(3), &[Lit::neg(Var::from_index(1))]);
        let r = c.finish();
        assert!(r
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::LearntMismatch));
    }

    /// Random mutation sweep: corrupt a random element of a real
    /// solver-produced proof and assert the checker notices. Every
    /// corruption class the ISSUE names is exercised by the dedicated
    /// tests above; this adds randomized coverage on nontrivial
    /// pigeonhole refutations.
    #[test]
    fn random_corruptions_are_rejected() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut s = Solver::with_proof();
        crate::solver::tests::pigeonhole(&mut s, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("proof").clone();
        assert!(check(&proof).ok());
        let derived: Vec<usize> = proof
            .clauses()
            .iter()
            .enumerate()
            .filter(|(_, pc)| matches!(pc, ProofClause::Derived { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(!derived.is_empty());
        let fresh = Var::from_index(10_000); // occurs in no clause
        let mut rejected = 0;
        for round in 0..200 {
            let mut p = proof.clone();
            let &target = &derived[rng.gen_range(0..derived.len())];
            let kind = round % 4;
            match kind {
                0 => {
                    // Swap a pivot to a variable absent from the chain.
                    if let ProofClause::Derived { steps, .. } = &mut p.clauses[target] {
                        if steps.is_empty() {
                            continue;
                        }
                        let k = rng.gen_range(0..steps.len());
                        steps[k].pivot = fresh;
                    }
                }
                1 => {
                    // Point a step at a future/self antecedent.
                    let future = ClauseId(p.clauses.len() as u32 + 7);
                    if let ProofClause::Derived { steps, .. } = &mut p.clauses[target] {
                        if steps.is_empty() {
                            continue;
                        }
                        let k = rng.gen_range(0..steps.len());
                        steps[k].other = future;
                    }
                }
                2 => {
                    // Drop the last step of the final chain.
                    let Some((_, steps)) = &mut p.empty else {
                        continue;
                    };
                    if steps.is_empty() {
                        continue;
                    }
                    steps.pop();
                }
                _ => {
                    // Corrupt a tag.
                    p.tags[target] = rng.gen_range(0..1000);
                }
            }
            let r = check(&p);
            assert!(
                !r.ok(),
                "corruption kind {kind} on clause {target} went undetected"
            );
            rejected += 1;
        }
        assert!(rejected >= 150, "too few effective mutations: {rejected}");
    }

    /// Property: every UNSAT answer on random CNFs yields a proof the
    /// independent checker accepts (with the live-clause cross-check).
    #[test]
    fn random_unsat_proofs_are_checkable() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xFACADE);
        let mut unsat_seen = 0;
        for _ in 0..300 {
            let nvars = rng.gen_range(3..=8usize);
            let nclauses = rng.gen_range(6..=26usize);
            let mut s = Solver::with_proof();
            for _ in 0..nvars {
                s.new_var();
            }
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=3usize);
                let cl: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                    .collect();
                let part = if rng.gen_bool(0.5) { Part::A } else { Part::B };
                s.add_clause_in(&cl, part);
            }
            if s.solve() != SolveResult::Unsat {
                continue;
            }
            unsat_seen += 1;
            let report = s.check_proof().expect("proof logging on");
            assert!(report.ok(), "{}", report.first_failure().unwrap());
            assert!(report.has_refutation);
            let itp = s.interpolant().expect("interpolant");
            let mut c = ProofChecker::new(s.proof().expect("proof"));
            c.check_interpolant(&itp);
            assert!(c.finish().ok());
        }
        assert!(unsat_seen > 30, "want enough unsat instances: {unsat_seen}");
    }
}
