//! A CDCL SAT solver with proof logging and Craig interpolation.
//!
//! This crate stands in for the MiniSAT-class back-ends inside the tools
//! the DATE 2016 paper compares (ABC, EBMC, CBMC, IMPARA, …). It
//! provides:
//!
//! * a [`Solver`] with two-literal watching over a flat clause arena
//!   ([`cdb::ClauseDb`]) with inline binary-clause watchers, VSIDS
//!   decision heuristics, first-UIP clause learning with minimization,
//!   LBD-based learned-clause reduction with arena compaction
//!   ([`ReduceConfig`]), phase saving and Luby restarts;
//! * incremental solving under **assumptions** with failed-assumption
//!   cores ([`Solver::failed_assumptions`]), the workhorse of the
//!   IC3/PDR and k-induction engines;
//! * optional **resolution proof logging** and McMillan **interpolant**
//!   extraction ([`Solver::interpolant`]), used by the interpolation-
//!   based model checker and the IMPACT-style software analyzer;
//! * per-call resource [`Limits`] — conflict budget, wall-clock
//!   deadline, and a shared [`Limits::stop`] flag for cooperative
//!   cross-thread cancellation — with the tripped limit reported as a
//!   typed [`Interrupt`] in [`SolveResult::Unknown`], plus a
//!   deterministic [`Chaos`] fault-injection hook that exercises the
//!   cancellation path for robustness testing;
//! * SatELite-style **CNF preprocessing** ([`preproc`]) — subsumption,
//!   self-subsuming resolution and bounded variable elimination with a
//!   freeze-set API, partition-aware resolution restrictions and model
//!   reconstruction — available standalone (the `aig` transition
//!   template simplifies its clause image once per design) and
//!   in-solver via [`Solver::preprocess`], plus **lightweight
//!   inprocessing** between solve calls (backward subsumption of the
//!   original image by learned clauses, [`Stats::inproc_subsumed`]).
//!   Preprocessing is **proof-aware**: under proof logging every
//!   strengthening step and kept resolvent is recorded as a derived
//!   chain and every removal as a deletion, so interpolation works on
//!   the simplified formula;
//! * an independent **resolution-proof checker** ([`proofcheck`]):
//!   replays every recorded chain from scratch (antecedent existence,
//!   pivot polarity, learnt-clause cross-check, the final
//!   empty-clause derivation, interpolation side-conditions) and
//!   returns a structured [`ProofReport`] — the `paranoid` trust
//!   layer behind [`Solver::check_proof`]. Proof memory is accounted
//!   ([`Stats::proof_bytes`]) and can be capped
//!   ([`Solver::set_proof_limit`], [`Interrupt::ProofLimit`]).
//!
//! # Query scoping
//!
//! Model-checking engines issue dense sequences of queries that each
//! touch a small cone of one large incremental formula. Two features
//! target exactly that shape:
//!
//! * **Local domains** ([`Domain`],
//!   [`Solver::solve_with_domain`]): the caller restricts *decisions*
//!   to the query's cone of influence, so VSIDS never branches on a
//!   variable the query cannot observe. The solve answers `Sat` once
//!   every in-domain variable is assigned; out-of-domain variables
//!   stay unassigned ([`Solver::value`] returns `None` for them), and
//!   the [`domain`] module docs state the structural conditions under
//!   which such a partial model is extendable. `Unsat` answers (and
//!   failed-assumption cores) are unconditionally sound.
//! * **Chronological backtracking** ([`Solver::set_chrono`]): when a
//!   conflict's asserting level is far below the conflict level, the
//!   solver steps back a single level instead of long-jumping,
//!   keeping the in-domain assignment prefix alive across the dense
//!   per-query conflicts. [`Stats::chrono_backtracks`] counts the
//!   short backtracks for A/B comparison.
//!
//! # Example
//!
//! ```
//! use satb::{Lit, SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(Lit::pos(b)), Some(true));
//! s.add_clause(&[Lit::neg(b)]);
//! assert_eq!(s.solve(), SolveResult::Unsat);
//! ```

#![warn(missing_docs)]

pub mod cdb;
pub mod domain;
pub mod interp;
pub mod lit;
pub mod preproc;
pub mod proof;
pub mod proofcheck;
pub mod solver;

pub use cdb::{CRef, ClauseDb};
pub use domain::Domain;
pub use interp::Interpolant;
pub use lit::{Lit, Var};
pub use preproc::{
    PreprocConfig, PreprocProof, PreprocResult, PreprocStats, Preprocessor, ReconStack,
};
pub use proof::{ClauseId, Part, Proof};
pub use proofcheck::{FailureKind, ProofChecker, ProofFailure, ProofReport};
pub use solver::{
    solver_count, Chaos, Interrupt, Limits, ReduceConfig, SolveResult, Solver, Stats,
};
