//! A CDCL SAT solver with proof logging and Craig interpolation.
//!
//! This crate stands in for the MiniSAT-class back-ends inside the tools
//! the DATE 2016 paper compares (ABC, EBMC, CBMC, IMPARA, …). It
//! provides:
//!
//! * a [`Solver`] with two-literal watching over a flat clause arena
//!   ([`cdb::ClauseDb`]) with inline binary-clause watchers, VSIDS
//!   decision heuristics, first-UIP clause learning with minimization,
//!   LBD-based learned-clause reduction with arena compaction
//!   ([`ReduceConfig`]), phase saving and Luby restarts;
//! * incremental solving under **assumptions** with failed-assumption
//!   cores ([`Solver::failed_assumptions`]), the workhorse of the
//!   IC3/PDR and k-induction engines;
//! * optional **resolution proof logging** and McMillan **interpolant**
//!   extraction ([`Solver::interpolant`]), used by the interpolation-
//!   based model checker and the IMPACT-style software analyzer;
//! * per-call resource [`Limits`] — conflict budget, wall-clock
//!   deadline, and a shared [`Limits::stop`] flag for cooperative
//!   cross-thread cancellation — with the tripped limit reported as a
//!   typed [`Interrupt`] in [`SolveResult::Unknown`], plus a
//!   deterministic [`Chaos`] fault-injection hook that exercises the
//!   cancellation path for robustness testing;
//! * SatELite-style **CNF preprocessing** ([`preproc`]) — subsumption,
//!   self-subsuming resolution and bounded variable elimination with a
//!   freeze-set API, partition-aware resolution restrictions and model
//!   reconstruction — available standalone (the `aig` transition
//!   template simplifies its clause image once per design) and
//!   in-solver via [`Solver::preprocess`].
//!
//! # Example
//!
//! ```
//! use satb::{Lit, SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(Lit::pos(b)), Some(true));
//! s.add_clause(&[Lit::neg(b)]);
//! assert_eq!(s.solve(), SolveResult::Unsat);
//! ```

pub mod cdb;
pub mod interp;
pub mod lit;
pub mod preproc;
pub mod proof;
pub mod solver;

pub use cdb::{CRef, ClauseDb};
pub use interp::Interpolant;
pub use lit::{Lit, Var};
pub use preproc::{PreprocConfig, PreprocResult, PreprocStats, Preprocessor, ReconStack};
pub use proof::{ClauseId, Part};
pub use solver::{
    solver_count, Chaos, Interrupt, Limits, ReduceConfig, SolveResult, Solver, Stats,
};
