//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The raw index, for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs a variable from a raw index.
    pub fn from_index(i: usize) -> Var {
        Var(i as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` with `sign == 1` meaning *negated*,
/// the MiniSAT convention. `repr(transparent)` is load-bearing: the
/// clause arena ([`crate::cdb::ClauseDb`]) stores literals as raw
/// `u32` words and reinterprets them as `Lit` slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }
    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }
    /// A literal of `v` with the given polarity (`true` = positive).
    pub fn new(v: Var, positive: bool) -> Lit {
        Lit(v.0 << 1 | (!positive as u32))
    }
    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }
    /// Whether this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }
    /// The raw code (`var*2 + sign`), for dense watch tables.
    pub fn code(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs a literal from its raw code.
    pub fn from_code(c: usize) -> Lit {
        Lit(c as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Ternary assignment value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        let v = Var::from_index(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_code(p.code()), p);
        assert_eq!(Lit::new(v, false), n);
    }

    #[test]
    fn display() {
        let v = Var::from_index(3);
        assert_eq!(Lit::pos(v).to_string(), "x3");
        assert_eq!(Lit::neg(v).to_string(), "!x3");
    }
}
