//! Per-query decision domains ("query scoping").
//!
//! A bounded-model-checking or IC3/PDR query touches only the cone of
//! influence of the cube it assumes, yet an unrestricted CDCL search
//! happily decides variables the query's constraints cannot see: VSIDS
//! picks whatever is globally active, and every such decision drags
//! propagation through clauses that are irrelevant to the answer. A
//! [`Domain`] is the antidote — the set of variables one
//! [`solve_with_domain`](crate::Solver::solve_with_domain) call is
//! allowed to *decide*. Out-of-domain variables may still be assigned
//! by unit propagation (their clauses stay attached, so no soundness
//! is lost on the UNSAT side), but the search never branches on them,
//! and the call answers `Sat` as soon as every in-domain variable is
//! assigned, leaving the rest unassigned in the model.
//!
//! # Soundness contract
//!
//! The caller picks the domain, and `Sat` answers are only meaningful
//! when the partial assignment is guaranteed extendable to a full
//! model. The structural conditions engines rely on (see the `aig`
//! crate's cone maps):
//!
//! * the domain is **fanin-closed** over the gate structure: every
//!   in-domain Tseitin output has its fanin variables in the domain,
//!   so in-domain gate values are functionally consistent and the
//!   out-of-domain remainder can be evaluated topologically;
//! * every clause the solver holds that is *not* part of the gate
//!   structure (blocked-cube lemmas, initial-state units, constraint
//!   units) has all its variables in the domain;
//! * every assumption variable is in the domain (guard/activation
//!   variables of assumed groups included).
//!
//! `Unsat` answers need no conditions: restricting decisions can only
//! prune models, never invent refutations.
//!
//! # Representation
//!
//! Membership is a generation-stamped array — [`clear`](Domain::clear)
//! is O(1), so one `Domain` can be refilled for every query of a dense
//! query sequence (PDR issues thousands) without touching the stamp
//! vector. The insertion-ordered variable list is kept alongside for
//! iteration and sizing.

use crate::lit::Var;

/// The set of variables one solve call may branch on.
///
/// See the [module docs](self) for semantics and the soundness
/// contract. Build once, [`clear`](Domain::clear) and refill per
/// query:
///
/// ```
/// use satb::{Domain, Limits, Lit, SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
///
/// let mut dom = Domain::new();
/// dom.insert(a);
/// dom.insert(b);
/// assert_eq!(
///     s.solve_with_domain(&[Lit::neg(a)], Limits::default(), &dom),
///     SolveResult::Sat
/// );
/// assert_eq!(s.value(Lit::pos(b)), Some(true));
/// ```
#[derive(Clone, Debug)]
pub struct Domain {
    /// Generation stamp per variable index: `v` is a member iff
    /// `stamp[v] == gen`.
    stamp: Vec<u32>,
    gen: u32,
    /// Members in insertion order.
    vars: Vec<Var>,
}

impl Default for Domain {
    fn default() -> Domain {
        Domain::new()
    }
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Domain {
        Domain {
            stamp: Vec::new(),
            gen: 1,
            vars: Vec::new(),
        }
    }

    /// Empties the domain in O(1) (bumps the generation; the stamp
    /// array is reused, so refilling per query never reallocates).
    pub fn clear(&mut self) {
        self.vars.clear();
        if self.gen == u32::MAX {
            // One full wrap every 2^32 - 1 clears: reset the stamps so
            // stale generations can never read as current again.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Adds a variable (idempotent).
    pub fn insert(&mut self, v: Var) {
        let i = v.index();
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
        }
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.vars.push(v);
        }
    }

    /// Adds every variable of an iterator.
    pub fn extend(&mut self, vars: impl IntoIterator<Item = Var>) {
        for v in vars {
            self.insert(v);
        }
    }

    /// Whether `v` is in the domain. Variables beyond the largest ever
    /// inserted are simply absent, so a domain built for a prefix of
    /// the solver's variables keeps working as the solver grows.
    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.stamp.get(v.index()).copied() == Some(self.gen)
    }

    /// Number of member variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The member variables, in insertion order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut d = Domain::new();
        assert!(d.is_empty());
        let v3 = Var::from_index(3);
        let v7 = Var::from_index(7);
        d.insert(v3);
        d.insert(v7);
        d.insert(v3); // idempotent
        assert_eq!(d.len(), 2);
        assert!(d.contains(v3) && d.contains(v7));
        assert!(!d.contains(Var::from_index(0)));
        assert!(!d.contains(Var::from_index(100))); // beyond stamp
        assert_eq!(d.vars(), &[v3, v7]);
        d.clear();
        assert!(d.is_empty());
        assert!(!d.contains(v3) && !d.contains(v7));
        d.insert(v7);
        assert!(d.contains(v7) && !d.contains(v3));
    }

    #[test]
    fn generation_wrap_resets_stamps() {
        let mut d = Domain::new();
        d.insert(Var::from_index(1));
        d.gen = u32::MAX; // simulate 2^32 clears
        d.clear();
        assert_eq!(d.gen, 1);
        assert!(!d.contains(Var::from_index(1)));
        d.insert(Var::from_index(2));
        assert!(d.contains(Var::from_index(2)));
    }
}
