//! Craig interpolation from resolution proofs (McMillan's system).
//!
//! Given a refutation of `A ∧ B`, McMillan's labelling computes, per
//! proof clause, a *partial interpolant*:
//!
//! * original clause in `A`: the disjunction of its literals over
//!   variables shared with `B`;
//! * original clause in `B`: `true`;
//! * resolution on pivot `v`: `or` of the partial interpolants when `v`
//!   is local to `A`, `and` otherwise.
//!
//! The partial interpolant of the empty clause is a Craig interpolant:
//! `A ⇒ I`, `I ∧ B` unsatisfiable, and `I` only mentions shared
//! variables. Interpolation is what powers the interpolation-based
//! model checker (McMillan 2003) and IMPACT-style analyzers the paper
//! evaluates.

use crate::lit::{Lit, Var};
use crate::proof::{Part, Proof, ProofClause};
use std::collections::{HashMap, HashSet};

/// A node of an interpolant formula DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ItpNode {
    /// Constant true/false.
    Const(bool),
    /// A literal over a shared variable.
    Lit(Lit),
    /// Conjunction of two nodes.
    And(u32, u32),
    /// Disjunction of two nodes.
    Or(u32, u32),
}

/// An interpolant: a boolean formula DAG over SAT variables shared
/// between the `A` and `B` clause partitions.
///
/// # Example
///
/// ```
/// use satb::{Lit, Part, SolveResult, Solver};
///
/// let mut s = Solver::with_proof();
/// let x = s.new_var();
/// let y = s.new_var();
/// // A: x, x -> y     B: !y
/// s.add_clause_in(&[Lit::pos(x)], Part::A);
/// s.add_clause_in(&[Lit::neg(x), Lit::pos(y)], Part::A);
/// s.add_clause_in(&[Lit::neg(y)], Part::B);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// let itp = s.interpolant().expect("unsat with proof");
/// // The interpolant speaks only about y (the shared variable) and is
/// // implied by A while contradicting B — here it is simply `y`.
/// assert!(itp.eval(|v| v == y));
/// assert!(!itp.eval(|_| false));
/// ```
#[derive(Clone, Debug)]
pub struct Interpolant {
    nodes: Vec<ItpNode>,
    root: u32,
}

impl Interpolant {
    /// Computes the interpolant of a recorded refutation.
    ///
    /// # Panics
    ///
    /// Panics if the proof has no empty-clause derivation (callers go
    /// through [`Solver::interpolant`](crate::Solver::interpolant),
    /// which checks this).
    pub fn from_proof(proof: &Proof) -> Interpolant {
        Interpolant::from_proof_with(proof, &|_| true)
    }

    /// Like [`from_proof`](Interpolant::from_proof) but overrides each
    /// original clause's partition by its tag: clauses whose tag maps
    /// to `true` keep/are assigned [`Part::A`]; others [`Part::B`].
    /// Untagged semantics: the stored part is used only when the tag
    /// function assigns `A`; callers using tags should tag everything.
    pub fn from_proof_with(proof: &Proof, is_a: &impl Fn(u32) -> bool) -> Interpolant {
        let mut b = ItpBuilder::default();

        let part_of = |i: usize, stored: Part| -> Part {
            let tag = proof.tags.get(i).copied().unwrap_or(u32::MAX);
            if tag == u32::MAX {
                stored
            } else if is_a(tag) {
                // Tag decides; clauses added through the untagged API
                // carry tag 0 and their stored label.
                if tag == 0 {
                    stored
                } else {
                    Part::A
                }
            } else {
                Part::B
            }
        };

        // Classify variables by occurrence in original clauses.
        let mut in_a: HashSet<Var> = HashSet::new();
        let mut in_b: HashSet<Var> = HashSet::new();
        for (i, pc) in proof.clauses.iter().enumerate() {
            if let ProofClause::Original { part, lits } = pc {
                let set = match part_of(i, *part) {
                    Part::A => &mut in_a,
                    Part::B => &mut in_b,
                };
                for l in lits {
                    set.insert(l.var());
                }
            }
        }
        let is_global = |v: Var| in_a.contains(&v) && in_b.contains(&v);
        let a_local = |v: Var| in_a.contains(&v) && !in_b.contains(&v);

        // Partial interpolants per proof clause, in derivation order.
        let mut partial: Vec<u32> = Vec::with_capacity(proof.clauses.len());
        for (i, pc) in proof.clauses.iter().enumerate() {
            let node = match pc {
                ProofClause::Original { part, lits } if part_of(i, *part) == Part::A => {
                    let mut acc = b.constant(false);
                    for &l in lits {
                        if is_global(l.var()) {
                            let ln = b.literal(l);
                            acc = b.or(acc, ln);
                        }
                    }
                    acc
                }
                ProofClause::Original { .. } => b.constant(true),
                ProofClause::Derived { start, steps } => {
                    let mut cur = partial[start.index()];
                    for st in steps {
                        let other = partial[st.other.index()];
                        cur = if a_local(st.pivot) {
                            b.or(cur, other)
                        } else {
                            b.and(cur, other)
                        };
                    }
                    cur
                }
            };
            partial.push(node);
        }

        let (start, steps) = proof
            .empty_clause()
            .expect("interpolation requires a refutation");
        let mut root = partial[start.index()];
        for st in steps {
            let other = partial[st.other.index()];
            root = if a_local(st.pivot) {
                b.or(root, other)
            } else {
                b.and(root, other)
            };
        }
        Interpolant {
            nodes: b.nodes,
            root,
        }
    }

    /// Evaluates the interpolant under a variable assignment.
    pub fn eval(&self, assign: impl Fn(Var) -> bool) -> bool {
        let mut vals: Vec<bool> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let v = match *n {
                ItpNode::Const(c) => c,
                ItpNode::Lit(l) => assign(l.var()) == l.is_positive(),
                ItpNode::And(a, b) => vals[a as usize] && vals[b as usize],
                ItpNode::Or(a, b) => vals[a as usize] || vals[b as usize],
            };
            vals.push(v);
        }
        vals[self.root as usize]
    }

    /// The set of variables the interpolant mentions.
    pub fn vars(&self) -> HashSet<Var> {
        let mut out = HashSet::new();
        for n in &self.nodes {
            if let ItpNode::Lit(l) = n {
                out.insert(l.var());
            }
        }
        out
    }

    /// Whether the interpolant is the constant `true`.
    pub fn is_true(&self) -> bool {
        matches!(self.nodes[self.root as usize], ItpNode::Const(true))
    }

    /// Whether the interpolant is the constant `false`.
    pub fn is_false(&self) -> bool {
        matches!(self.nodes[self.root as usize], ItpNode::Const(false))
    }

    /// The nodes of the formula DAG in topological order (children
    /// before parents); used to convert interpolants into other circuit
    /// representations (e.g. AIGs).
    pub fn nodes(&self) -> &[ItpNode] {
        &self.nodes
    }

    /// Index of the root node in [`nodes`](Interpolant::nodes).
    pub fn root(&self) -> usize {
        self.root as usize
    }
}

#[derive(Default)]
struct ItpBuilder {
    nodes: Vec<ItpNode>,
    dedup: HashMap<ItpNode, u32>,
}

impl ItpBuilder {
    fn intern(&mut self, n: ItpNode) -> u32 {
        if let Some(&i) = self.dedup.get(&n) {
            return i;
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(n);
        self.dedup.insert(n, i);
        i
    }
    fn constant(&mut self, c: bool) -> u32 {
        self.intern(ItpNode::Const(c))
    }
    fn literal(&mut self, l: Lit) -> u32 {
        self.intern(ItpNode::Lit(l))
    }
    fn and(&mut self, a: u32, b: u32) -> u32 {
        match (self.nodes[a as usize], self.nodes[b as usize]) {
            (ItpNode::Const(false), _) | (_, ItpNode::Const(false)) => self.constant(false),
            (ItpNode::Const(true), _) => b,
            (_, ItpNode::Const(true)) => a,
            _ if a == b => a,
            _ => self.intern(ItpNode::And(a.min(b), a.max(b))),
        }
    }
    fn or(&mut self, a: u32, b: u32) -> u32 {
        match (self.nodes[a as usize], self.nodes[b as usize]) {
            (ItpNode::Const(true), _) | (_, ItpNode::Const(true)) => self.constant(true),
            (ItpNode::Const(false), _) => b,
            (_, ItpNode::Const(false)) => a,
            _ if a == b => a,
            _ => self.intern(ItpNode::Or(a.min(b), a.max(b))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    #[test]
    fn unit_contradiction() {
        let mut s = Solver::with_proof();
        let x = s.new_var();
        s.add_clause_in(&[Lit::pos(x)], Part::A);
        s.add_clause_in(&[Lit::neg(x)], Part::B);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let itp = s.interpolant().expect("interpolant");
        // x is shared; A implies x, so the interpolant is x.
        assert!(itp.eval(|_| true));
        assert!(!itp.eval(|_| false));
        assert!(itp.vars().contains(&x));
    }

    #[test]
    fn a_inconsistent_alone_gives_false() {
        let mut s = Solver::with_proof();
        let x = s.new_var();
        s.add_clause_in(&[Lit::pos(x)], Part::A);
        s.add_clause_in(&[Lit::neg(x)], Part::A);
        // B is empty; refutation uses only A.
        assert_eq!(s.solve(), SolveResult::Unsat);
        let itp = s.interpolant().expect("interpolant");
        assert!(itp.is_false(), "A alone is unsat, interpolant is false");
    }

    #[test]
    fn b_inconsistent_alone_gives_true() {
        let mut s = Solver::with_proof();
        let x = s.new_var();
        s.add_clause_in(&[Lit::pos(x)], Part::B);
        s.add_clause_in(&[Lit::neg(x)], Part::B);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let itp = s.interpolant().expect("interpolant");
        assert!(itp.is_true(), "B alone is unsat, interpolant is true");
    }

    /// Exhaustively validates the interpolant contract on random
    /// partitioned CNFs: A ⇒ I, I ∧ B unsat, vars(I) ⊆ shared.
    #[test]
    fn random_interpolants_satisfy_contract() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x17E9);
        let mut tested = 0;
        for _round in 0..400 {
            let nvars = rng.gen_range(2..=7usize);
            let gen_cnf = |rng: &mut StdRng, n: usize| {
                let m = rng.gen_range(1..=8usize);
                (0..m)
                    .map(|_| {
                        let len = rng.gen_range(1..=3usize);
                        (0..len)
                            .map(|_| {
                                Lit::new(Var::from_index(rng.gen_range(0..n)), rng.gen_bool(0.5))
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            };
            let a_cnf = gen_cnf(&mut rng, nvars);
            let b_cnf = gen_cnf(&mut rng, nvars);
            let holds = |cnf: &[Vec<Lit>], m: u32| {
                cnf.iter().all(|cl| {
                    cl.iter()
                        .any(|l| ((m >> l.var().index()) & 1 == 1) == l.is_positive())
                })
            };
            // Only keep pairs where A ∧ B is unsat but each side alone
            // may be anything.
            let joint_sat = (0u32..(1 << nvars)).any(|m| holds(&a_cnf, m) && holds(&b_cnf, m));
            if joint_sat {
                continue;
            }
            tested += 1;
            let mut s = Solver::with_proof();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &a_cnf {
                s.add_clause_in(cl, Part::A);
            }
            for cl in &b_cnf {
                s.add_clause_in(cl, Part::B);
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
            s.debug_verify_proof().expect("valid proof");
            let itp = s.interpolant().expect("interpolant");

            // vars(I) ⊆ shared(A, B).
            let mut in_a = HashSet::new();
            let mut in_b = HashSet::new();
            for cl in &a_cnf {
                for l in cl {
                    in_a.insert(l.var());
                }
            }
            for cl in &b_cnf {
                for l in cl {
                    in_b.insert(l.var());
                }
            }
            for v in itp.vars() {
                assert!(
                    in_a.contains(&v) && in_b.contains(&v),
                    "interpolant mentions non-shared {v}"
                );
            }
            // A ⇒ I and I ∧ B unsat, over all assignments.
            for m in 0u32..(1 << nvars) {
                let iv = itp.eval(|v| (m >> v.index()) & 1 == 1);
                if holds(&a_cnf, m) {
                    assert!(iv, "A holds but interpolant is false under {m:b}");
                }
                if iv {
                    assert!(!holds(&b_cnf, m), "I ∧ B satisfiable under {m:b}");
                }
            }
        }
        assert!(tested > 20, "want enough unsat pairs, got {tested}");
    }
}
