//! Activation-literal clause groups: release, recycling, and the
//! no-resurrection guarantee.

use satb::{Limits, Lit, SolveResult, Solver, Var};

fn lit(s: &mut Solver, i: usize, pos: bool) -> Lit {
    while s.num_vars() <= i {
        s.new_var();
    }
    Lit::new(Var::from_index(i), pos)
}

/// The solve-after-release probe: a released clause must stop
/// constraining the solver, and the recycled guard variable must not
/// resurrect it.
#[test]
fn released_clause_does_not_constrain() {
    let mut s = Solver::new();
    let a = lit(&mut s, 0, true);
    let act = s.new_activation();
    // (a ∨ ¬act): under the guard, a is forced.
    assert!(s.add_clause_activated(act, &[a]));
    assert_eq!(s.solve_with(&[act, !a]), SolveResult::Unsat);
    s.release_activation(act);
    // Guard variable comes back from the free-list...
    let act2 = s.new_activation();
    assert_eq!(act2, act, "released activation var must be recycled");
    assert_eq!(s.stats().act_recycled, 1);
    // ...and the released clause must not constrain the reused guard.
    assert_eq!(s.solve_with(&[act2, !a]), SolveResult::Sat);
    s.debug_check_integrity().expect("intact after release");
}

/// Learned clauses derived from a guarded group mention the activation
/// variable and must be swept by the release, restoring satisfiability
/// without poisoning later queries on the recycled variable.
#[test]
fn release_sweeps_contaminated_learned_clauses() {
    let mut s = Solver::new();
    // A guarded pigeonhole instance with an escape literal `e` on one
    // clause: the database alone never implies ¬act (setting e
    // satisfies it), so the group is refutable only under the
    // assumptions [act, ¬e] — like a PDR blocking query, where the
    // temporary ¬cube clause conflicts with the next-state assumptions.
    let holes = 5;
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| p * holes + h;
    while s.num_vars() < pigeons * holes {
        s.new_var();
    }
    let e = Lit::pos(s.new_var());
    let act = s.new_activation();
    for p in 0..pigeons {
        let mut c: Vec<Lit> = (0..holes)
            .map(|h| Lit::pos(Var::from_index(var(p, h))))
            .collect();
        if p == 0 {
            c.push(e);
        }
        assert!(s.add_clause_activated(act, &c));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                assert!(s.add_clause_activated(
                    act,
                    &[
                        Lit::neg(Var::from_index(var(p1, h))),
                        Lit::neg(Var::from_index(var(p2, h))),
                    ]
                ));
            }
        }
    }
    assert_eq!(s.solve_with(&[act, !e]), SolveResult::Unsat);
    assert!(s.stats().learned > 0, "the instance forces real learning");
    let live_before = s.num_clauses();
    s.release_activation(act);
    let st = s.stats();
    assert_eq!(st.act_leaked, 0, "nothing pins the group: {st:?}");
    assert!(
        st.act_released as usize >= live_before,
        "release must free the group and its learned clauses: {st:?}"
    );
    assert_eq!(s.num_clauses(), 0, "nothing outlives the release");
    s.debug_check_integrity().expect("intact after sweep");
    // The same (recycled) guard now protects a satisfiable group.
    let act2 = s.new_activation();
    assert_eq!(act2, act);
    let x = Lit::pos(Var::from_index(0));
    assert!(s.add_clause_activated(act2, &[x]));
    assert_eq!(s.solve_with(&[act2, !e]), SolveResult::Sat);
    assert_eq!(s.value(x), Some(true));
}

/// The prenormalized fast path behaves exactly like the general one:
/// the clause constrains only under the guard, is registered under the
/// group, and the release frees it.
#[test]
fn prenormalized_activated_clause_is_grouped_and_released() {
    let mut s = Solver::new();
    let a = lit(&mut s, 0, true);
    let b = lit(&mut s, 1, true);
    let act = s.new_activation();
    // (a ∨ b ∨ ¬act): sorted, distinct — eligible for the fast path.
    assert!(s.add_clause_activated_prenormalized(act, &[a, b]));
    assert_eq!(s.solve_with(&[act, !a, !b]), SolveResult::Unsat);
    assert_eq!(s.solve_with(&[!a, !b]), SolveResult::Sat, "guard off");
    let live_before = s.num_clauses();
    assert!(live_before >= 1);
    s.release_activation(act);
    assert_eq!(s.num_clauses(), 0, "fast-path clause must be registered");
    assert_eq!(
        s.solve_with(&[Lit::pos(act.var()), !a, !b]),
        SolveResult::Sat
    );
    s.debug_check_integrity().expect("intact after release");
}

/// Randomized cross-check: interleaves permanent clauses, activated
/// groups, releases and recycled reuse, comparing every query against
/// a fresh solver built from exactly the live clauses. Catches both
/// resurrection (released clause still pruning models) and
/// over-deletion (live clause lost).
#[test]
fn random_groups_match_rebuilt_reference() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xAC71);
    for round in 0..40 {
        let nvars = rng.gen_range(3..=7usize);
        let mut s = Solver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        let mut permanent: Vec<Vec<Lit>> = Vec::new();
        // Live groups: (guard literal, clauses without the guard).
        let mut groups: Vec<(Lit, Vec<Vec<Lit>>)> = Vec::new();
        let rand_clause = |rng: &mut StdRng| -> Vec<Lit> {
            let len = rng.gen_range(1..=3usize);
            (0..len)
                .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                .collect()
        };
        for _op in 0..24 {
            match rng.gen_range(0..4) {
                0 => {
                    let c = rand_clause(&mut rng);
                    s.add_clause(&c);
                    permanent.push(c);
                }
                1 => {
                    let act = s.new_activation();
                    let mut cls = Vec::new();
                    for _ in 0..rng.gen_range(1..=3usize) {
                        let c = rand_clause(&mut rng);
                        s.add_clause_activated(act, &c);
                        cls.push(c);
                    }
                    groups.push((act, cls));
                }
                2 if !groups.is_empty() => {
                    let i = rng.gen_range(0..groups.len());
                    let (act, _) = groups.swap_remove(i);
                    s.release_activation(act);
                }
                _ => {
                    // Query: random assumptions plus every live guard.
                    let mut assumptions: Vec<Lit> = groups.iter().map(|(a, _)| *a).collect();
                    for _ in 0..rng.gen_range(0..=2usize) {
                        assumptions.push(Lit::new(
                            Var::from_index(rng.gen_range(0..nvars)),
                            rng.gen_bool(0.5),
                        ));
                    }
                    let got = s.solve_limited(&assumptions, Limits::default());
                    // Reference: fresh solver over the live clauses
                    // only (guards asserted as units).
                    let mut r = Solver::new();
                    for _ in 0..s.num_vars() {
                        r.new_var();
                    }
                    for c in &permanent {
                        r.add_clause(c);
                    }
                    for (act, cls) in &groups {
                        r.add_clause(&[*act]);
                        for c in cls {
                            let mut g = c.clone();
                            g.push(!*act);
                            r.add_clause(&g);
                        }
                    }
                    let want = r.solve_with(&assumptions);
                    assert_eq!(got, want, "round {round}: {permanent:?} {groups:?}");
                }
            }
            s.debug_check_integrity().expect("intact");
        }
    }
}
