//! Learned-clause reduction must never change an answer.
//!
//! These tests run the solver with reduction disabled and with an
//! aggressively reducing configuration side by side on random CNFs —
//! including under assumptions and across incremental
//! `add_clause`/`solve_with` cycles — and assert the verdicts are
//! identical. A separate test solves, reduces, compacts and re-solves
//! to catch dangling `CRef` / watcher bugs after garbage collection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use satb::{Lit, ReduceConfig, SolveResult, Solver, Var};

fn aggressive() -> ReduceConfig {
    ReduceConfig {
        enabled: true,
        first_conflicts: 10,
        conflicts_inc: 10,
        glue_keep: 1,
    }
}

fn random_cnf(rng: &mut StdRng, nvars: usize, nclauses: usize) -> Vec<Vec<Lit>> {
    (0..nclauses)
        .map(|_| {
            let len = rng.gen_range(1..=3usize);
            (0..len)
                .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

fn pigeonhole(s: &mut Solver, holes: usize) {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| p * holes + h;
    while s.num_vars() < pigeons * holes {
        s.new_var();
    }
    for p in 0..pigeons {
        let c: Vec<Lit> = (0..holes)
            .map(|h| Lit::pos(Var::from_index(var(p, h))))
            .collect();
        s.add_clause(&c);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause(&[
                    Lit::neg(Var::from_index(var(p1, h))),
                    Lit::neg(Var::from_index(var(p2, h))),
                ]);
            }
        }
    }
}

/// Random CNFs: reduction on vs. off gives identical verdicts, and the
/// reducing solver's models still satisfy the formula.
#[test]
fn fuzz_reduction_on_off_verdicts_agree() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for round in 0..200 {
        let nvars = rng.gen_range(5..=25usize);
        let nclauses = rng.gen_range(10..=(nvars * 5));
        let cnf = random_cnf(&mut rng, nvars, nclauses);

        let mut plain = Solver::new();
        plain.set_reduce_enabled(false);
        let mut reducing = if round % 3 == 0 {
            Solver::with_proof()
        } else {
            Solver::new()
        };
        reducing.set_reduce_config(aggressive());
        for s in [&mut plain, &mut reducing] {
            for _ in 0..nvars {
                s.new_var();
            }
            for c in &cnf {
                s.add_clause(c);
            }
        }
        let (a, b) = (plain.solve(), reducing.solve());
        assert_eq!(a, b, "round {round}: verdict differs, cnf {cnf:?}");
        if b == SolveResult::Sat {
            for c in &cnf {
                assert!(
                    c.iter().any(|&l| reducing.value(l) == Some(true)),
                    "round {round}: reducing solver's model violates {c:?}"
                );
            }
        }
        reducing
            .debug_check_integrity()
            .expect("clause database intact");
        if reducing.proof_logging() {
            reducing.debug_verify_proof().expect("proof replays");
        }
    }
}

/// Incremental rounds with assumptions: the verdict of every
/// `solve_with` cycle agrees between reduction on and off.
#[test]
fn fuzz_incremental_assumption_cycles_agree() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for round in 0..80 {
        let nvars = rng.gen_range(4..=16usize);
        let mut plain = Solver::new();
        plain.set_reduce_enabled(false);
        let mut reducing = Solver::new();
        reducing.set_reduce_config(aggressive());
        for s in [&mut plain, &mut reducing] {
            for _ in 0..nvars {
                s.new_var();
            }
        }
        for cycle in 0..6 {
            let batch_n = rng.gen_range(1..=8usize);
            let batch = random_cnf(&mut rng, nvars, batch_n);
            for c in &batch {
                plain.add_clause(c);
                reducing.add_clause(c);
            }
            let nassum = rng.gen_range(0..=3usize);
            let assumptions: Vec<Lit> = (0..nassum)
                .map(|_| Lit::new(Var::from_index(rng.gen_range(0..nvars)), rng.gen_bool(0.5)))
                .collect();
            let a = plain.solve_with(&assumptions);
            let b = reducing.solve_with(&assumptions);
            assert_eq!(
                a, b,
                "round {round} cycle {cycle}: verdicts differ under {assumptions:?}"
            );
            reducing.debug_check_integrity().expect("intact");
            if a == SolveResult::Unsat && !assumptions.is_empty() {
                // Failed assumptions must themselves be a sufficient
                // reason: re-solving under just the failed subset (as
                // assumptions) must still be UNSAT — on both solvers.
                let core = reducing.failed_assumptions().to_vec();
                assert!(core.iter().all(|l| assumptions.contains(l)));
                assert_eq!(reducing.solve_with(&core), SolveResult::Unsat);
            }
            if !plain.is_ok() {
                break; // formula is unconditionally UNSAT now
            }
        }
    }
}

/// Solve → reduce → compact → re-solve: the verdict must be stable and
/// the clause database referentially intact after every compaction.
#[test]
fn gc_compaction_between_solves() {
    for holes in 4..=6 {
        let mut s = Solver::new();
        s.set_reduce_config(aggressive());
        pigeonhole(&mut s, holes);
        // Partial solve to populate the learnt database (small
        // instances may finish within the conflict budget; the forced
        // reduce/GC cycles below still exercise compaction).
        let r = s.solve_limited(
            &[],
            satb::Limits {
                max_conflicts: Some(40),
                ..satb::Limits::default()
            },
        );
        assert_ne!(r, SolveResult::Sat, "pigeonhole is UNSAT");
        for _ in 0..3 {
            s.debug_force_reduce();
            s.debug_force_gc();
            s.debug_check_integrity().expect("intact after GC");
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "PHP({},{holes})", holes + 1);
        let st = s.stats();
        assert!(st.gcs >= 3, "forced GCs must be counted: {st:?}");
        assert!(st.arena_peak_bytes >= st.arena_bytes);
    }
}

/// Reduction with proof logging: the refutation and its interpolants
/// stay valid even when most learned clauses are deleted.
#[test]
fn reduction_preserves_proofs_and_interpolants() {
    use satb::Part;
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    let mut checked = 0;
    for _ in 0..120 {
        let nvars = rng.gen_range(3..=7usize);
        let a_n = rng.gen_range(2..=8usize);
        let a_cnf = random_cnf(&mut rng, nvars, a_n);
        let b_n = rng.gen_range(2..=8usize);
        let b_cnf = random_cnf(&mut rng, nvars, b_n);
        let holds = |cnf: &[Vec<Lit>], m: u32| {
            cnf.iter().all(|cl| {
                cl.iter()
                    .any(|l| ((m >> l.var().index()) & 1 == 1) == l.is_positive())
            })
        };
        let joint_sat = (0u32..(1 << nvars)).any(|m| holds(&a_cnf, m) && holds(&b_cnf, m));
        if joint_sat {
            continue;
        }
        checked += 1;
        let mut s = Solver::with_proof();
        s.set_reduce_config(aggressive());
        for _ in 0..nvars {
            s.new_var();
        }
        for c in &a_cnf {
            s.add_clause_in(c, Part::A);
        }
        for c in &b_cnf {
            s.add_clause_in(c, Part::B);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.debug_verify_proof().expect("valid proof after reduction");
        let itp = s.interpolant().expect("interpolant");
        for m in 0u32..(1 << nvars) {
            let iv = itp.eval(|v| (m >> v.index()) & 1 == 1);
            if holds(&a_cnf, m) {
                assert!(iv, "A ⇒ I violated");
            }
            if iv {
                assert!(!holds(&b_cnf, m), "I ∧ B satisfiable");
            }
        }
    }
    assert!(checked > 10, "need enough unsat pairs, got {checked}");
}
