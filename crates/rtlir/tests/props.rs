//! Property-based tests for the rtlir expression language.
//!
//! Strategy: generate random expression trees over a small set of
//! variables, then check that (a) constant folding in the pool agrees
//! with the evaluator, and (b) algebraic identities hold under the
//! evaluator for random assignments.

use proptest::prelude::*;
use rtlir::{eval, ExprId, ExprPool, Sort, Value, VarId};
use std::collections::HashMap;

const WIDTH: u32 = 8;

/// A recipe for building an expression; interpreted against a pool.
#[derive(Clone, Debug)]
enum Recipe {
    Var(usize),
    Const(u64),
    Not(Box<Recipe>),
    Neg(Box<Recipe>),
    And(Box<Recipe>, Box<Recipe>),
    Or(Box<Recipe>, Box<Recipe>),
    Xor(Box<Recipe>, Box<Recipe>),
    Add(Box<Recipe>, Box<Recipe>),
    Sub(Box<Recipe>, Box<Recipe>),
    Mul(Box<Recipe>, Box<Recipe>),
    Shl(Box<Recipe>, Box<Recipe>),
    Lshr(Box<Recipe>, Box<Recipe>),
    Ite(Box<Recipe>, Box<Recipe>, Box<Recipe>),
}

fn recipe() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(Recipe::Var),
        (0u64..256).prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Recipe::Not(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Neg(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Recipe::Lshr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Recipe::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn build(pool: &mut ExprPool, vars: &[VarId], r: &Recipe) -> ExprId {
    match r {
        Recipe::Var(i) => pool.var(vars[i % vars.len()]),
        Recipe::Const(c) => pool.constv(WIDTH, *c),
        Recipe::Not(a) => {
            let e = build(pool, vars, a);
            pool.not(e)
        }
        Recipe::Neg(a) => {
            let e = build(pool, vars, a);
            pool.neg(e)
        }
        Recipe::And(a, b) => {
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.and(x, y)
        }
        Recipe::Or(a, b) => {
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.or(x, y)
        }
        Recipe::Xor(a, b) => {
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.xor(x, y)
        }
        Recipe::Add(a, b) => {
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.add(x, y)
        }
        Recipe::Sub(a, b) => {
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.sub(x, y)
        }
        Recipe::Mul(a, b) => {
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.mul(x, y)
        }
        Recipe::Shl(a, b) => {
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.shl(x, y)
        }
        Recipe::Lshr(a, b) => {
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.lshr(x, y)
        }
        Recipe::Ite(c, a, b) => {
            let cv = build(pool, vars, c);
            let cb = pool.redor(cv); // make a 1-bit condition
            let (x, y) = (build(pool, vars, a), build(pool, vars, b));
            pool.ite(cb, x, y)
        }
    }
}

/// Reference interpretation of a recipe directly on u64s, independent of
/// the pool (no hash-consing, no simplification).
fn interp(r: &Recipe, vals: &[u64; 3]) -> u64 {
    let m = (1u64 << WIDTH) - 1;
    match r {
        Recipe::Var(i) => vals[i % 3],
        Recipe::Const(c) => c & m,
        Recipe::Not(a) => !interp(a, vals) & m,
        Recipe::Neg(a) => interp(a, vals).wrapping_neg() & m,
        Recipe::And(a, b) => interp(a, vals) & interp(b, vals),
        Recipe::Or(a, b) => interp(a, vals) | interp(b, vals),
        Recipe::Xor(a, b) => interp(a, vals) ^ interp(b, vals),
        Recipe::Add(a, b) => interp(a, vals).wrapping_add(interp(b, vals)) & m,
        Recipe::Sub(a, b) => interp(a, vals).wrapping_sub(interp(b, vals)) & m,
        Recipe::Mul(a, b) => interp(a, vals).wrapping_mul(interp(b, vals)) & m,
        Recipe::Shl(a, b) => {
            let sh = interp(b, vals);
            if sh >= WIDTH as u64 {
                0
            } else {
                (interp(a, vals) << sh) & m
            }
        }
        Recipe::Lshr(a, b) => {
            let sh = interp(b, vals);
            if sh >= WIDTH as u64 {
                0
            } else {
                interp(a, vals) >> sh
            }
        }
        Recipe::Ite(c, a, b) => {
            if interp(c, vals) != 0 {
                interp(a, vals)
            } else {
                interp(b, vals)
            }
        }
    }
}

proptest! {
    /// The pool's smart constructors (with folding and normalization)
    /// never change the meaning of an expression.
    #[test]
    fn folding_preserves_semantics(r in recipe(), v0 in 0u64..256, v1 in 0u64..256, v2 in 0u64..256) {
        let mut pool = ExprPool::new();
        let vars: Vec<VarId> = (0..3)
            .map(|i| pool.new_var(format!("x{i}"), Sort::Bv(WIDTH)))
            .collect();
        let e = build(&mut pool, &vars, &r);
        let mut env = HashMap::new();
        env.insert(vars[0], Value::bv(WIDTH, v0));
        env.insert(vars[1], Value::bv(WIDTH, v1));
        env.insert(vars[2], Value::bv(WIDTH, v2));
        let got = eval(&pool, e, &env).bits();
        let want = interp(&r, &[v0, v1, v2]);
        prop_assert_eq!(got, want);
    }

    /// Hash-consing: building the same recipe twice yields the same id.
    #[test]
    fn hash_consing_is_deterministic(r in recipe()) {
        let mut pool = ExprPool::new();
        let vars: Vec<VarId> = (0..3)
            .map(|i| pool.new_var(format!("x{i}"), Sort::Bv(WIDTH)))
            .collect();
        let e1 = build(&mut pool, &vars, &r);
        let e2 = build(&mut pool, &vars, &r);
        prop_assert_eq!(e1, e2);
    }

    /// Extract/concat roundtrip: concat(hi, lo) then extracting both
    /// halves returns the originals.
    #[test]
    fn concat_extract_roundtrip(a in 0u64..256, b in 0u64..256) {
        let mut pool = ExprPool::new();
        let x = pool.new_var("x", Sort::Bv(WIDTH));
        let y = pool.new_var("y", Sort::Bv(WIDTH));
        let (xe, ye) = (pool.var(x), pool.var(y));
        let c = pool.concat(xe, ye);
        let hi = pool.extract(c, 15, 8);
        let lo = pool.extract(c, 7, 0);
        let mut env = HashMap::new();
        env.insert(x, Value::bv(WIDTH, a));
        env.insert(y, Value::bv(WIDTH, b));
        prop_assert_eq!(eval(&pool, hi, &env).bits(), a);
        prop_assert_eq!(eval(&pool, lo, &env).bits(), b);
    }

    /// Unsigned comparisons agree with Rust integer comparisons.
    #[test]
    fn comparison_semantics(a in 0u64..256, b in 0u64..256) {
        let mut pool = ExprPool::new();
        let x = pool.new_var("x", Sort::Bv(WIDTH));
        let y = pool.new_var("y", Sort::Bv(WIDTH));
        let (xe, ye) = (pool.var(x), pool.var(y));
        let lt = pool.ult(xe, ye);
        let le = pool.ule(xe, ye);
        let gt = pool.ugt(xe, ye);
        let eq = pool.eq(xe, ye);
        let mut env = HashMap::new();
        env.insert(x, Value::bv(WIDTH, a));
        env.insert(y, Value::bv(WIDTH, b));
        prop_assert_eq!(eval(&pool, lt, &env).as_bool(), a < b);
        prop_assert_eq!(eval(&pool, le, &env).as_bool(), a <= b);
        prop_assert_eq!(eval(&pool, gt, &env).as_bool(), a > b);
        prop_assert_eq!(eval(&pool, eq, &env).as_bool(), a == b);
    }

    /// Array writes then reads behave like a store.
    #[test]
    fn array_store_semantics(writes in prop::collection::vec((0u64..16, 0u64..256), 0..12), probe in 0u64..16) {
        let mut pool = ExprPool::new();
        let mem = pool.new_var("mem", Sort::array(4, 8));
        let mut arr = pool.var(mem);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (i, v) in &writes {
            let ie = pool.constv(4, *i);
            let ve = pool.constv(8, *v);
            arr = pool.write(arr, ie, ve);
            model.insert(*i, *v);
        }
        let pe = pool.constv(4, probe);
        let red = pool.read(arr, pe);
        let mut env = HashMap::new();
        env.insert(mem, Value::Array(rtlir::ArrayValue::filled(4, 8, 0)));
        let got = eval(&pool, red, &env).bits();
        let want = model.get(&probe).copied().unwrap_or(0);
        prop_assert_eq!(got, want);
    }
}
