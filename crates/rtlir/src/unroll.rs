//! Time-frame expansion (unrolling) of transition systems at the word
//! level.
//!
//! The unroller is shared by the word-level k-induction engine (the
//! paper's "EBMC-kind" configuration) and by the software analyzers,
//! which unwind the software-netlist's top-level loop — the same
//! operation at the program level.

use crate::expr::{ExprId, Node, VarId};
use crate::pool::ExprPool;
use crate::ts::TransitionSystem;
use std::collections::HashMap;

/// Controls how frame 0 of an unrolling is constrained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitMode {
    /// Frame 0 uses the system's initial-state expressions
    /// (uninitialized states become free variables). Used by BMC and
    /// the base case of k-induction.
    Initialized,
    /// Frame 0 states are all free variables. Used by the inductive
    /// step of k-induction and by image computations.
    Free,
}

/// Word-level time-frame expansion of a [`TransitionSystem`].
///
/// Frames are materialized lazily into a private formula pool: frame
/// `k+1`'s state expressions are the next-state functions with frame
/// `k`'s state expressions and fresh frame-`k` input variables
/// substituted in.
///
/// # Example
///
/// ```
/// use rtlir::{ExprPool, Sort, TransitionSystem};
/// use rtlir::unroll::{InitMode, Unroller};
///
/// let mut ts = TransitionSystem::new("c");
/// let s = ts.add_state("count", Sort::Bv(4));
/// let sv = ts.pool_mut().var(s);
/// let one = ts.pool_mut().constv(4, 1);
/// let next = ts.pool_mut().add(sv, one);
/// let zero = ts.pool_mut().constv(4, 0);
/// ts.set_init(s, zero);
/// ts.set_next(s, next);
///
/// let mut u = Unroller::new(&ts, InitMode::Initialized);
/// let s3 = u.state(3, 0);
/// // count after 3 steps from 0 folds to the constant 3.
/// assert_eq!(u.pool().const_bits(s3), Some(3));
/// ```
#[derive(Debug)]
pub struct Unroller<'a> {
    ts: &'a TransitionSystem,
    pool: ExprPool,
    mode: InitMode,
    /// `state_exprs[k][i]`: expression of state `i` at frame `k`.
    state_exprs: Vec<Vec<ExprId>>,
    /// `input_exprs[k][i]`: fresh variable of input `i` at frame `k`.
    input_exprs: Vec<Vec<ExprId>>,
    /// Memoized translation (frame, ts-expr) -> formula-expr.
    memo: HashMap<(u32, ExprId), ExprId>,
}

impl<'a> Unroller<'a> {
    /// Creates an unroller with frame 0 materialized according to `mode`.
    pub fn new(ts: &'a TransitionSystem, mode: InitMode) -> Unroller<'a> {
        let mut u = Unroller {
            ts,
            pool: ExprPool::new(),
            mode,
            state_exprs: Vec::new(),
            input_exprs: Vec::new(),
            memo: HashMap::new(),
        };
        u.push_frame0();
        u
    }

    /// The formula pool the unrolling lives in.
    pub fn pool(&self) -> &ExprPool {
        &self.pool
    }

    /// Mutable access to the formula pool, for combining frame formulas
    /// into verification conditions.
    pub fn pool_mut(&mut self) -> &mut ExprPool {
        &mut self.pool
    }

    /// The underlying transition system.
    pub fn ts(&self) -> &TransitionSystem {
        self.ts
    }

    /// Number of frames currently materialized.
    pub fn num_frames(&self) -> usize {
        self.state_exprs.len()
    }

    fn push_frame0(&mut self) {
        let mut frame = Vec::new();
        for (i, s) in self.ts.states().iter().enumerate() {
            let sort = self.ts.pool().var_sort(s.var);
            let name = &self.ts.pool().var_decl(s.var).name;
            let e = match (self.mode, s.init) {
                (InitMode::Initialized, Some(init)) => self.translate(0, init),
                _ => {
                    let v = self.pool.new_var(format!("{name}@0"), sort);
                    let _ = i;
                    self.pool.var(v)
                }
            };
            frame.push(e);
        }
        self.state_exprs.push(frame);
        self.push_inputs(0);
    }

    fn push_inputs(&mut self, k: usize) {
        let mut ins = Vec::new();
        for &iv in self.ts.inputs() {
            let sort = self.ts.pool().var_sort(iv);
            let name = &self.ts.pool().var_decl(iv).name;
            let v = self.pool.new_var(format!("{name}@{k}"), sort);
            ins.push(self.pool.var(v));
        }
        self.input_exprs.push(ins);
    }

    /// Ensures frames `0..=k` exist.
    pub fn ensure_frame(&mut self, k: usize) {
        while self.state_exprs.len() <= k {
            let cur = self.state_exprs.len() - 1;
            let mut next_frame = Vec::new();
            for (i, s) in self.ts.states().iter().enumerate() {
                let e = match s.next {
                    Some(next) => self.translate(cur as u32, next),
                    None => self.state_exprs[cur][i],
                };
                next_frame.push(e);
            }
            self.state_exprs.push(next_frame);
            let new_k = self.state_exprs.len() - 1;
            self.push_inputs(new_k);
        }
    }

    /// The expression of state `i` (declaration order) at frame `k`.
    pub fn state(&mut self, k: usize, i: usize) -> ExprId {
        self.ensure_frame(k);
        self.state_exprs[k][i]
    }

    /// The fresh variable expression of input `i` at frame `k`.
    pub fn input(&mut self, k: usize, i: usize) -> ExprId {
        self.ensure_frame(k);
        self.input_exprs[k][i]
    }

    /// Disjunction of all bad properties evaluated at frame `k`.
    pub fn bad(&mut self, k: usize) -> ExprId {
        self.ensure_frame(k);
        let bads: Vec<ExprId> = self
            .ts
            .bads()
            .iter()
            .map(|b| b.expr)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|e| self.translate(k as u32, e))
            .collect();
        self.pool.or_all(&bads)
    }

    /// A specific bad property evaluated at frame `k`.
    pub fn bad_at(&mut self, k: usize, bad_index: usize) -> ExprId {
        self.ensure_frame(k);
        let e = self.ts.bads()[bad_index].expr;
        self.translate(k as u32, e)
    }

    /// Conjunction of all environment constraints at frame `k`.
    pub fn constraint(&mut self, k: usize) -> ExprId {
        self.ensure_frame(k);
        let cs: Vec<ExprId> = self
            .ts
            .constraints()
            .to_vec()
            .into_iter()
            .map(|e| self.translate(k as u32, e))
            .collect();
        self.pool.and_all(&cs)
    }

    /// Single-bit expression stating that the bit-vector state parts of
    /// frames `i` and `j` differ (array states are ignored). Used for
    /// simple-path constraints in k-induction.
    pub fn frames_distinct(&mut self, i: usize, j: usize) -> ExprId {
        self.ensure_frame(i.max(j));
        let mut diffs = Vec::new();
        for (s_idx, s) in self.ts.states().iter().enumerate() {
            if self.ts.pool().var_sort(s.var).is_array() {
                continue;
            }
            let a = self.state_exprs[i][s_idx];
            let b = self.state_exprs[j][s_idx];
            let ne = self.pool.ne(a, b);
            diffs.push(ne);
        }
        self.pool.or_all(&diffs)
    }

    /// Translates a transition-system expression into the formula pool,
    /// substituting frame-`k` state expressions and input variables.
    pub fn translate(&mut self, k: u32, e: ExprId) -> ExprId {
        if let Some(&t) = self.memo.get(&(k, e)) {
            return t;
        }
        // Iterative post-order translation over the TS pool DAG.
        let mut order: Vec<ExprId> = Vec::new();
        let mut stack: Vec<(ExprId, bool)> = vec![(e, false)];
        while let Some((x, expanded)) = stack.pop() {
            if self.memo.contains_key(&(k, x)) {
                continue;
            }
            if expanded {
                order.push(x);
                continue;
            }
            stack.push((x, true));
            match self.ts.pool().node(x) {
                Node::Const { .. } | Node::Var(_) | Node::ConstArray { .. } => {}
                Node::Un(_, a) | Node::Extract { arg: a, .. } => stack.push((*a, false)),
                Node::Zext { arg, .. } | Node::Sext { arg, .. } => stack.push((*arg, false)),
                Node::Bin(_, a, b) => {
                    stack.push((*a, false));
                    stack.push((*b, false));
                }
                Node::Ite(c, t, f) => {
                    stack.push((*c, false));
                    stack.push((*t, false));
                    stack.push((*f, false));
                }
                Node::Read { array, index } => {
                    stack.push((*array, false));
                    stack.push((*index, false));
                }
                Node::Write {
                    array,
                    index,
                    value,
                } => {
                    stack.push((*array, false));
                    stack.push((*index, false));
                    stack.push((*value, false));
                }
            }
        }
        for x in order {
            let node = self.ts.pool().node(x).clone();
            let t = match node {
                Node::Const { width, bits } => self.pool.constv(width, bits),
                Node::ConstArray {
                    index_width,
                    elem_width,
                    bits,
                } => self.pool.const_array(index_width, elem_width, bits),
                Node::Var(v) => self.frame_var(k, v),
                Node::Un(op, a) => {
                    let ta = self.memo[&(k, a)];
                    match op {
                        crate::expr::UnOp::Not => self.pool.not(ta),
                        crate::expr::UnOp::Neg => self.pool.neg(ta),
                        crate::expr::UnOp::RedAnd => self.pool.redand(ta),
                        crate::expr::UnOp::RedOr => self.pool.redor(ta),
                        crate::expr::UnOp::RedXor => self.pool.redxor(ta),
                    }
                }
                Node::Bin(op, a, b) => {
                    let (ta, tb) = (self.memo[&(k, a)], self.memo[&(k, b)]);
                    use crate::expr::BinOp as B;
                    match op {
                        B::And => self.pool.and(ta, tb),
                        B::Or => self.pool.or(ta, tb),
                        B::Xor => self.pool.xor(ta, tb),
                        B::Add => self.pool.add(ta, tb),
                        B::Sub => self.pool.sub(ta, tb),
                        B::Mul => self.pool.mul(ta, tb),
                        B::Udiv => self.pool.udiv(ta, tb),
                        B::Urem => self.pool.urem(ta, tb),
                        B::Shl => self.pool.shl(ta, tb),
                        B::Lshr => self.pool.lshr(ta, tb),
                        B::Ashr => self.pool.ashr(ta, tb),
                        B::Eq => self.pool.eq(ta, tb),
                        B::Ult => self.pool.ult(ta, tb),
                        B::Ule => self.pool.ule(ta, tb),
                        B::Slt => self.pool.slt(ta, tb),
                        B::Sle => self.pool.sle(ta, tb),
                        B::Concat => self.pool.concat(ta, tb),
                    }
                }
                Node::Ite(c, tt, ff) => {
                    let (tc, t1, t0) =
                        (self.memo[&(k, c)], self.memo[&(k, tt)], self.memo[&(k, ff)]);
                    self.pool.ite(tc, t1, t0)
                }
                Node::Extract { hi, lo, arg } => {
                    let ta = self.memo[&(k, arg)];
                    self.pool.extract(ta, hi, lo)
                }
                Node::Zext { arg, width } => {
                    let ta = self.memo[&(k, arg)];
                    self.pool.zext(ta, width)
                }
                Node::Sext { arg, width } => {
                    let ta = self.memo[&(k, arg)];
                    self.pool.sext(ta, width)
                }
                Node::Read { array, index } => {
                    let (ta, ti) = (self.memo[&(k, array)], self.memo[&(k, index)]);
                    self.pool.read(ta, ti)
                }
                Node::Write {
                    array,
                    index,
                    value,
                } => {
                    let (ta, ti, tv) = (
                        self.memo[&(k, array)],
                        self.memo[&(k, index)],
                        self.memo[&(k, value)],
                    );
                    self.pool.write(ta, ti, tv)
                }
            };
            self.memo.insert((k, x), t);
        }
        self.memo[&(k, e)]
    }

    fn frame_var(&mut self, k: u32, v: VarId) -> ExprId {
        // A variable in a TS expression is either an input or a state.
        if let Some(pos) = self.ts.inputs().iter().position(|&i| i == v) {
            self.ensure_frame(k as usize);
            return self.input_exprs[k as usize][pos];
        }
        if let Some(pos) = self.ts.states().iter().position(|s| s.var == v) {
            self.ensure_frame(k as usize);
            return self.state_exprs[k as usize][pos];
        }
        panic!("variable {v} is neither input nor state of the system")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    fn counter_with_bad(at: u64) -> TransitionSystem {
        let mut ts = TransitionSystem::new("c");
        let s = ts.add_state("count", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(8, 1);
        let next = ts.pool_mut().add(sv, one);
        let zero = ts.pool_mut().constv(8, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let c = ts.pool_mut().constv(8, at);
        let bad = ts.pool_mut().eq(sv, c);
        ts.add_bad(bad, "hit");
        ts
    }

    #[test]
    fn initialized_unrolling_folds_to_constants() {
        let ts = counter_with_bad(5);
        let mut u = Unroller::new(&ts, InitMode::Initialized);
        for k in 0..10 {
            let s = u.state(k, 0);
            assert_eq!(u.pool().const_bits(s), Some(k as u64));
        }
        let b5 = u.bad(5);
        assert!(u.pool().is_true(b5));
        let b4 = u.bad(4);
        assert!(u.pool().is_false(b4));
    }

    #[test]
    fn free_unrolling_keeps_symbolic_state() {
        let ts = counter_with_bad(5);
        let mut u = Unroller::new(&ts, InitMode::Free);
        let s0 = u.state(0, 0);
        assert!(u.pool().const_bits(s0).is_none());
        let b0 = u.bad(0);
        assert!(!u.pool().is_true(b0) && !u.pool().is_false(b0));
    }

    #[test]
    fn inputs_are_fresh_per_frame() {
        let mut ts = TransitionSystem::new("t");
        let i = ts.add_input("in", Sort::Bv(4));
        let s = ts.add_state("r", Sort::Bv(4));
        let iv = ts.pool_mut().var(i);
        let zero = ts.pool_mut().constv(4, 0);
        ts.set_init(s, zero);
        ts.set_next(s, iv);
        let mut u = Unroller::new(&ts, InitMode::Initialized);
        let i0 = u.input(0, 0);
        let i1 = u.input(1, 0);
        assert_ne!(i0, i1);
        // State at frame 1 is exactly the frame-0 input variable.
        assert_eq!(u.state(1, 0), i0);
    }

    #[test]
    fn distinct_frames() {
        let ts = counter_with_bad(200);
        let mut u = Unroller::new(&ts, InitMode::Initialized);
        let d01 = u.frames_distinct(0, 1);
        // 0 != 1 folds to true.
        assert!(u.pool().is_true(d01));
        let d00 = u.frames_distinct(0, 0);
        assert!(u.pool().is_false(d00));
    }
}
