//! Concrete values and the bit-precise semantics of every operator.
//!
//! The functions in this module define the golden semantics of the IR.
//! They follow Verilog synthesis semantics (all operations are unsigned
//! modulo `2^w` unless the operator is explicitly signed) and agree with
//! SMT-LIB's `QF_BV` theory for division by zero (`udiv x 0 = ~0`,
//! `urem x 0 = x`).

use crate::sort::Sort;
use std::collections::BTreeMap;
use std::fmt;

/// Mask with the low `w` bits set (`w` in `1..=64`).
#[inline]
pub fn mask(w: u32) -> u64 {
    debug_assert!((1..=64).contains(&w));
    if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Sign-extends the low `w` bits of `v` to a full `i64`.
#[inline]
pub fn sext_i64(v: u64, w: u32) -> i64 {
    debug_assert!((1..=64).contains(&w));
    let shift = 64 - w;
    ((v << shift) as i64) >> shift
}

/// A dense map modelling an array (memory) value.
///
/// Stores a default element plus sparse overrides, so a 1024-entry RAM
/// that is mostly zero costs almost nothing to copy during simulation.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayValue {
    /// Width of the index bit-vector.
    pub index_width: u32,
    /// Width of each element.
    pub elem_width: u32,
    /// Value of every index not present in `store`.
    pub default: u64,
    /// Sparse overrides. Invariant: values are masked to `elem_width`
    /// and no entry equals `default`.
    pub store: BTreeMap<u64, u64>,
}

impl ArrayValue {
    /// A constant array where every element is `default`.
    pub fn filled(index_width: u32, elem_width: u32, default: u64) -> ArrayValue {
        ArrayValue {
            index_width,
            elem_width,
            default: default & mask(elem_width),
            store: BTreeMap::new(),
        }
    }

    /// Reads the element at `index` (masked to the index width).
    pub fn read(&self, index: u64) -> u64 {
        let index = index & mask(self.index_width);
        *self.store.get(&index).unwrap_or(&self.default)
    }

    /// Returns a copy with `index` updated to `value`.
    pub fn write(&self, index: u64, value: u64) -> ArrayValue {
        let index = index & mask(self.index_width);
        let value = value & mask(self.elem_width);
        let mut out = self.clone();
        if value == out.default {
            out.store.remove(&index);
        } else {
            out.store.insert(index, value);
        }
        out
    }
}

/// A concrete value: a bit-vector or an array.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A bit-vector value; `bits` is always masked to `width`.
    Bv {
        /// Width in bits, `1..=64`.
        width: u32,
        /// The payload, masked to `width`.
        bits: u64,
    },
    /// An array (memory) value.
    Array(ArrayValue),
}

impl Value {
    /// Creates a bit-vector value, masking `bits` to `width`.
    pub fn bv(width: u32, bits: u64) -> Value {
        Value::Bv {
            width,
            bits: bits & mask(width),
        }
    }

    /// The single-bit value for a boolean.
    pub fn bit(b: bool) -> Value {
        Value::bv(1, b as u64)
    }

    /// Zero of the given sort.
    pub fn zero_of(sort: Sort) -> Value {
        match sort {
            Sort::Bv(w) => Value::bv(w, 0),
            Sort::Array {
                index_width,
                elem_width,
            } => Value::Array(ArrayValue::filled(index_width, elem_width, 0)),
        }
    }

    /// The sort of this value.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Bv { width, .. } => Sort::Bv(*width),
            Value::Array(a) => Sort::array(a.index_width, a.elem_width),
        }
    }

    /// The bit-vector payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an array.
    pub fn bits(&self) -> u64 {
        match self {
            Value::Bv { bits, .. } => *bits,
            Value::Array(_) => panic!("bits() called on array value"),
        }
    }

    /// Interprets a single-bit value as a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a single-bit bit-vector.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bv { width: 1, bits } => *bits != 0,
            other => panic!("as_bool() on non-boolean value {other:?}"),
        }
    }

    /// The array payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a bit-vector.
    pub fn as_array(&self) -> &ArrayValue {
        match self {
            Value::Array(a) => a,
            Value::Bv { .. } => panic!("as_array() called on bit-vector value"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bv { width, bits } => write!(f, "{width}'d{bits}"),
            Value::Array(a) => {
                write!(f, "[default {}'d{}", a.elem_width, a.default)?;
                for (k, v) in &a.store {
                    write!(f, ", {k}: {v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Bit-precise implementations of the scalar operators.
///
/// These are free functions over `(width, bits)` pairs so the evaluator,
/// the constant folder and the interpreters can share one definition.
pub mod ops {
    use super::{mask, sext_i64};

    /// Bitwise negation.
    pub fn not(w: u32, a: u64) -> u64 {
        !a & mask(w)
    }
    /// Two's-complement negation.
    pub fn neg(w: u32, a: u64) -> u64 {
        a.wrapping_neg() & mask(w)
    }
    /// Reduction AND: 1 iff all bits set.
    pub fn redand(w: u32, a: u64) -> u64 {
        (a == mask(w)) as u64
    }
    /// Reduction OR: 1 iff any bit set.
    pub fn redor(_w: u32, a: u64) -> u64 {
        (a != 0) as u64
    }
    /// Reduction XOR: parity.
    pub fn redxor(_w: u32, a: u64) -> u64 {
        (a.count_ones() & 1) as u64
    }
    /// Addition modulo `2^w`.
    pub fn add(w: u32, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & mask(w)
    }
    /// Subtraction modulo `2^w`.
    pub fn sub(w: u32, a: u64, b: u64) -> u64 {
        a.wrapping_sub(b) & mask(w)
    }
    /// Multiplication modulo `2^w`.
    pub fn mul(w: u32, a: u64, b: u64) -> u64 {
        a.wrapping_mul(b) & mask(w)
    }
    /// Unsigned division; division by zero yields all-ones (SMT-LIB).
    pub fn udiv(w: u32, a: u64, b: u64) -> u64 {
        match a.checked_div(b) {
            Some(q) => q & mask(w),
            None => mask(w),
        }
    }
    /// Unsigned remainder; remainder by zero yields the dividend (SMT-LIB).
    pub fn urem(w: u32, a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            (a % b) & mask(w)
        }
    }
    /// Logical shift left; shifts `>= w` yield zero.
    pub fn shl(w: u32, a: u64, b: u64) -> u64 {
        if b >= w as u64 {
            0
        } else {
            (a << b) & mask(w)
        }
    }
    /// Logical shift right; shifts `>= w` yield zero.
    pub fn lshr(w: u32, a: u64, b: u64) -> u64 {
        if b >= w as u64 {
            0
        } else {
            a >> b
        }
    }
    /// Arithmetic shift right; shifts `>= w` replicate the sign bit.
    pub fn ashr(w: u32, a: u64, b: u64) -> u64 {
        let sa = sext_i64(a, w);
        let sh = b.min(63);
        ((sa >> sh) as u64) & mask(w)
    }
    /// Equality as a single bit.
    pub fn eq(a: u64, b: u64) -> u64 {
        (a == b) as u64
    }
    /// Unsigned less-than as a single bit.
    pub fn ult(a: u64, b: u64) -> u64 {
        (a < b) as u64
    }
    /// Unsigned less-or-equal as a single bit.
    pub fn ule(a: u64, b: u64) -> u64 {
        (a <= b) as u64
    }
    /// Signed less-than as a single bit.
    pub fn slt(w: u32, a: u64, b: u64) -> u64 {
        (sext_i64(a, w) < sext_i64(b, w)) as u64
    }
    /// Signed less-or-equal as a single bit.
    pub fn sle(w: u32, a: u64, b: u64) -> u64 {
        (sext_i64(a, w) <= sext_i64(b, w)) as u64
    }
    /// Concatenation: `a` becomes the high part.
    pub fn concat(a: u64, wb: u32, b: u64) -> u64 {
        (a << wb) | b
    }
    /// Bit-field extraction `[hi:lo]`.
    pub fn extract(hi: u32, lo: u32, a: u64) -> u64 {
        (a >> lo) & mask(hi - lo + 1)
    }
    /// Sign extension from width `w_from`.
    pub fn sext(w_from: u32, w_to: u32, a: u64) -> u64 {
        (sext_i64(a, w_from) as u64) & mask(w_to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xFF);
        assert_eq!(mask(64), u64::MAX);
        assert_eq!(Value::bv(4, 0x1F).bits(), 0xF);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sext_i64(0b1000, 4), -8);
        assert_eq!(sext_i64(0b0111, 4), 7);
        assert_eq!(ops::sext(4, 8, 0b1010), 0xFA);
        assert_eq!(ops::sext(4, 8, 0b0101), 0x05);
    }

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(ops::add(4, 15, 1), 0);
        assert_eq!(ops::sub(4, 0, 1), 15);
        assert_eq!(ops::mul(4, 5, 5), 9);
        assert_eq!(ops::neg(4, 1), 15);
    }

    #[test]
    fn division_by_zero_follows_smtlib() {
        assert_eq!(ops::udiv(8, 42, 0), 0xFF);
        assert_eq!(ops::urem(8, 42, 0), 42);
        assert_eq!(ops::udiv(8, 42, 5), 8);
        assert_eq!(ops::urem(8, 42, 5), 2);
    }

    #[test]
    fn shifts_saturate() {
        assert_eq!(ops::shl(8, 0xFF, 8), 0);
        assert_eq!(ops::lshr(8, 0xFF, 9), 0);
        assert_eq!(ops::shl(8, 1, 3), 8);
        assert_eq!(ops::ashr(8, 0x80, 2), 0xE0);
        assert_eq!(ops::ashr(8, 0x80, 100), 0xFF);
        assert_eq!(ops::ashr(8, 0x40, 100), 0);
    }

    #[test]
    fn reductions() {
        assert_eq!(ops::redand(4, 0xF), 1);
        assert_eq!(ops::redand(4, 0xE), 0);
        assert_eq!(ops::redor(4, 0), 0);
        assert_eq!(ops::redor(4, 2), 1);
        assert_eq!(ops::redxor(4, 0b0111), 1);
        assert_eq!(ops::redxor(4, 0b0101), 0);
    }

    #[test]
    fn signed_compare() {
        // In 4 bits: 8..15 are negative.
        assert_eq!(ops::slt(4, 8, 0), 1); // -8 < 0
        assert_eq!(ops::slt(4, 0, 8), 0);
        assert_eq!(ops::sle(4, 15, 15), 1); // -1 <= -1
        assert_eq!(ops::slt(4, 7, 8), 0); // 7 < -8 is false
    }

    #[test]
    fn concat_extract_roundtrip() {
        let c = ops::concat(0xA, 4, 0x5);
        assert_eq!(c, 0xA5);
        assert_eq!(ops::extract(7, 4, c), 0xA);
        assert_eq!(ops::extract(3, 0, c), 0x5);
    }

    #[test]
    fn array_read_write() {
        let a = ArrayValue::filled(4, 8, 0);
        assert_eq!(a.read(3), 0);
        let b = a.write(3, 0x7F);
        assert_eq!(b.read(3), 0x7F);
        assert_eq!(b.read(4), 0);
        assert_eq!(a.read(3), 0, "write is persistent, original unchanged");
        // Writing the default value back shrinks the store.
        let c = b.write(3, 0);
        assert!(c.store.is_empty());
    }

    #[test]
    fn array_index_masked() {
        let a = ArrayValue::filled(2, 8, 0).write(5, 9); // 5 & 0b11 == 1
        assert_eq!(a.read(1), 9);
        assert_eq!(a.read(5), 9);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::bv(8, 255).to_string(), "8'd255");
        assert_eq!(Value::bit(true).to_string(), "1'd1");
    }
}
