//! Human-readable printing of expressions and transition systems.
//!
//! The format is BTOR-flavoured and intended for debugging, golden
//! tests and the `--dump-ir` options of the command-line harnesses.

use crate::expr::{ExprId, Node};
use crate::pool::ExprPool;
use crate::ts::TransitionSystem;
use std::fmt::Write as _;

/// Renders a single expression as an S-expression-like string.
///
/// Shared sub-expressions are expanded in place, so this is meant for
/// small expressions; use [`print_ts`] for whole systems.
///
/// # Example
///
/// ```
/// use rtlir::{ExprPool, Sort};
/// use rtlir::printer::print_expr;
///
/// let mut p = ExprPool::new();
/// let x = p.new_var("x", Sort::Bv(8));
/// let xv = p.var(x);
/// let c = p.constv(8, 1);
/// let e = p.add(xv, c);
/// assert_eq!(print_expr(&p, e), "(+ 8'd1 x)");
/// ```
pub fn print_expr(pool: &ExprPool, e: ExprId) -> String {
    let mut s = String::new();
    write_expr(pool, e, &mut s);
    s
}

fn write_expr(pool: &ExprPool, e: ExprId, out: &mut String) {
    match pool.node(e) {
        Node::Const { width, bits } => {
            let _ = write!(out, "{width}'d{bits}");
        }
        Node::ConstArray { bits, .. } => {
            let _ = write!(out, "(const-array {bits})");
        }
        Node::Var(v) => {
            let _ = write!(out, "{}", pool.var_decl(*v).name);
        }
        Node::Un(op, a) => {
            let _ = write!(out, "({op} ");
            write_expr(pool, *a, out);
            out.push(')');
        }
        Node::Bin(op, a, b) => {
            let _ = write!(out, "({op} ");
            write_expr(pool, *a, out);
            out.push(' ');
            write_expr(pool, *b, out);
            out.push(')');
        }
        Node::Ite(c, t, f) => {
            out.push_str("(ite ");
            write_expr(pool, *c, out);
            out.push(' ');
            write_expr(pool, *t, out);
            out.push(' ');
            write_expr(pool, *f, out);
            out.push(')');
        }
        Node::Extract { hi, lo, arg } => {
            out.push('(');
            write_expr(pool, *arg, out);
            let _ = write!(out, ")[{hi}:{lo}]");
        }
        Node::Zext { arg, width } => {
            let _ = write!(out, "(zext{width} ");
            write_expr(pool, *arg, out);
            out.push(')');
        }
        Node::Sext { arg, width } => {
            let _ = write!(out, "(sext{width} ");
            write_expr(pool, *arg, out);
            out.push(')');
        }
        Node::Read { array, index } => {
            out.push_str("(read ");
            write_expr(pool, *array, out);
            out.push(' ');
            write_expr(pool, *index, out);
            out.push(')');
        }
        Node::Write {
            array,
            index,
            value,
        } => {
            out.push_str("(write ");
            write_expr(pool, *array, out);
            out.push(' ');
            write_expr(pool, *index, out);
            out.push(' ');
            write_expr(pool, *value, out);
            out.push(')');
        }
    }
}

/// Renders a whole transition system: inputs, states with init/next,
/// constraints and bad properties.
pub fn print_ts(ts: &TransitionSystem) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "system {} {{", ts.name());
    for &i in ts.inputs() {
        let d = ts.pool().var_decl(i);
        let _ = writeln!(out, "  input {} : {}", d.name, d.sort);
    }
    for s in ts.states() {
        let d = ts.pool().var_decl(s.var);
        let _ = writeln!(out, "  state {} : {}", d.name, d.sort);
        if let Some(init) = s.init {
            let _ = writeln!(out, "    init {}", print_expr(ts.pool(), init));
        }
        if let Some(next) = s.next {
            let _ = writeln!(out, "    next {}", print_expr(ts.pool(), next));
        }
    }
    for &c in ts.constraints() {
        let _ = writeln!(out, "  constraint {}", print_expr(ts.pool(), c));
    }
    for b in ts.bads() {
        let _ = writeln!(
            out,
            "  bad \"{}\" {}",
            b.name,
            print_expr(ts.pool(), b.expr)
        );
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn expr_rendering() {
        let mut p = ExprPool::new();
        let x = p.new_var("x", Sort::Bv(8));
        let xv = p.var(x);
        let c = p.constv(8, 3);
        let add = p.add(xv, c);
        let hi = p.extract(add, 7, 4);
        // Commutative operands are normalized constants-first.
        assert_eq!(print_expr(&p, hi), "((+ 8'd3 x))[7:4]");
        let r = p.redor(xv);
        assert_eq!(print_expr(&p, r), "(| x)");
    }

    #[test]
    fn ts_rendering_contains_sections() {
        let mut ts = TransitionSystem::new("demo");
        ts.add_input("go", Sort::BOOL);
        let s = ts.add_state("r", Sort::Bv(2));
        let z = ts.pool_mut().constv(2, 0);
        let sv = ts.pool_mut().var(s);
        ts.set_init(s, z);
        ts.set_next(s, sv);
        let bad = ts.pool_mut().redor(sv);
        ts.add_bad(bad, "r nonzero");
        let text = print_ts(&ts);
        assert!(text.contains("system demo {"));
        assert!(text.contains("input go : bv1"));
        assert!(text.contains("state r : bv2"));
        assert!(text.contains("init 2'd0"));
        assert!(text.contains("bad \"r nonzero\""));
    }
}
