//! Cycle-accurate simulation of transition systems.

use crate::eval::eval_with_cache;
use crate::expr::VarId;
use crate::ts::TransitionSystem;
use crate::value::Value;
use std::collections::HashMap;

/// A cycle-accurate simulator for a [`TransitionSystem`].
///
/// Each [`step`](Simulator::step) applies the synchronous semantics the
/// paper's software-netlist mimics: read all current state, evaluate all
/// next-state functions, then commit them atomically (two-phase update,
/// matching non-blocking assignment semantics).
///
/// The simulator is the ground truth that the v2c-generated
/// software-netlist, the bit-blasted AIG and all counterexample traces
/// are validated against.
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    ts: &'a TransitionSystem,
    state: HashMap<VarId, Value>,
    cycle: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator positioned at the initial state.
    ///
    /// States without an init expression start at zero (callers that
    /// want true nondeterministic reset use
    /// [`new_with_reset`](Simulator::new_with_reset)).
    pub fn new(ts: &'a TransitionSystem) -> Simulator<'a> {
        Self::new_with_reset(ts, |var, _sort| {
            let _ = var;
            None
        })
    }

    /// Creates a simulator whose uninitialized states are chosen by
    /// `reset` (return `None` to default to zero).
    pub fn new_with_reset(
        ts: &'a TransitionSystem,
        mut reset: impl FnMut(VarId, crate::Sort) -> Option<Value>,
    ) -> Simulator<'a> {
        let mut state = HashMap::new();
        let mut cache = HashMap::new();
        for s in ts.states() {
            let sort = ts.pool().var_sort(s.var);
            let value = match s.init {
                Some(e) => {
                    // Init expressions are variable-free (validated), so an
                    // empty environment suffices.
                    let empty = HashMap::new();
                    eval_with_cache(ts.pool(), e, &empty, &mut cache)
                }
                None => reset(s.var, sort).unwrap_or_else(|| Value::zero_of(sort)),
            };
            state.insert(s.var, value);
        }
        Simulator {
            ts,
            state,
            cycle: 0,
        }
    }

    /// The current cycle number (0 before the first step).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The current value of a state variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a state of the simulated system.
    pub fn state_value(&self, var: VarId) -> Value {
        self.state
            .get(&var)
            .unwrap_or_else(|| panic!("{var} is not a state"))
            .clone()
    }

    /// Evaluates the bad-state properties in the current state, using
    /// zero for all inputs (bad expressions normally depend only on
    /// state; input-dependent properties should use
    /// [`bad_states_with_inputs`](Simulator::bad_states_with_inputs)).
    pub fn bad_states(&self) -> Vec<bool> {
        self.bad_states_with_inputs(&[])
    }

    /// Evaluates the bad-state properties with the given input values
    /// (in input declaration order; missing inputs read zero).
    pub fn bad_states_with_inputs(&self, inputs: &[Value]) -> Vec<bool> {
        let env = self.env(inputs);
        let mut cache = HashMap::new();
        self.ts
            .bads()
            .iter()
            .map(|b| eval_with_cache(self.ts.pool(), b.expr, &env, &mut cache).as_bool())
            .collect()
    }

    /// Evaluates the environment constraints with the given inputs.
    pub fn constraints_hold(&self, inputs: &[Value]) -> bool {
        let env = self.env(inputs);
        let mut cache = HashMap::new();
        self.ts
            .constraints()
            .iter()
            .all(|&c| eval_with_cache(self.ts.pool(), c, &env, &mut cache).as_bool())
    }

    fn env(&self, inputs: &[Value]) -> HashMap<VarId, Value> {
        let mut env = self.state.clone();
        for (i, &var) in self.ts.inputs().iter().enumerate() {
            let sort = self.ts.pool().var_sort(var);
            let v = inputs
                .get(i)
                .cloned()
                .unwrap_or_else(|| Value::zero_of(sort));
            assert_eq!(v.sort(), sort, "input value sort mismatch for {var}");
            env.insert(var, v);
        }
        env
    }

    /// Advances one clock cycle with the given input values (in input
    /// declaration order; missing inputs read zero). Returns the bad
    /// flags observed in the *pre-step* state with these inputs, which
    /// is the cycle in which a simulated assertion would fire.
    pub fn step(&mut self, inputs: &[Value]) -> Vec<bool> {
        let env = self.env(inputs);
        let bads = self.bad_states_with_inputs(inputs);
        let mut cache = HashMap::new();
        let mut next_state = HashMap::new();
        for s in self.ts.states() {
            let value = match s.next {
                Some(e) => eval_with_cache(self.ts.pool(), e, &env, &mut cache),
                None => self.state[&s.var].clone(),
            };
            next_state.insert(s.var, value);
        }
        self.state = next_state;
        self.cycle += 1;
        bads
    }

    /// Runs up to `max_cycles` with inputs drawn from `stimulus`,
    /// stopping early when a bad state is reached. Returns
    /// `Some(cycle)` of the first violation.
    pub fn run_until_bad(
        &mut self,
        max_cycles: u64,
        mut stimulus: impl FnMut(u64) -> Vec<Value>,
    ) -> Option<u64> {
        for _ in 0..max_cycles {
            let inputs = stimulus(self.cycle);
            if self.bad_states_with_inputs(&inputs).iter().any(|&b| b) {
                return Some(self.cycle);
            }
            self.step(&inputs);
        }
        if self
            .bad_states_with_inputs(&stimulus(self.cycle))
            .iter()
            .any(|&b| b)
        {
            return Some(self.cycle);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    /// Counter that wraps at 10 and flags count == 7.
    fn mod10_counter() -> TransitionSystem {
        let mut ts = TransitionSystem::new("mod10");
        let en = ts.add_input("en", Sort::BOOL);
        let s = ts.add_state("count", Sort::Bv(4));
        let sv = ts.pool_mut().var(s);
        let ev = ts.pool_mut().var(en);
        let one = ts.pool_mut().constv(4, 1);
        let nine = ts.pool_mut().constv(4, 9);
        let zero = ts.pool_mut().constv(4, 0);
        let at_max = ts.pool_mut().eq(sv, nine);
        let inc = ts.pool_mut().add(sv, one);
        let wrapped = ts.pool_mut().ite(at_max, zero, inc);
        let next = ts.pool_mut().ite(ev, wrapped, sv);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let seven = ts.pool_mut().constv(4, 7);
        let bad = ts.pool_mut().eq(sv, seven);
        ts.add_bad(bad, "count is 7");
        ts
    }

    #[test]
    fn enabled_counter_hits_bad_at_cycle_7() {
        let ts = mod10_counter();
        let mut sim = Simulator::new(&ts);
        let hit = sim.run_until_bad(20, |_| vec![Value::bit(true)]);
        assert_eq!(hit, Some(7));
    }

    #[test]
    fn disabled_counter_never_hits_bad() {
        let ts = mod10_counter();
        let mut sim = Simulator::new(&ts);
        let hit = sim.run_until_bad(100, |_| vec![Value::bit(false)]);
        assert_eq!(hit, None);
        assert_eq!(sim.state_value(ts.states()[0].var), Value::bv(4, 0));
    }

    #[test]
    fn wraparound() {
        let ts = mod10_counter();
        let mut sim = Simulator::new(&ts);
        for _ in 0..10 {
            sim.step(&[Value::bit(true)]);
        }
        assert_eq!(sim.state_value(ts.states()[0].var), Value::bv(4, 0));
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn missing_inputs_default_to_zero() {
        let ts = mod10_counter();
        let mut sim = Simulator::new(&ts);
        sim.step(&[]); // en reads 0
        assert_eq!(sim.state_value(ts.states()[0].var), Value::bv(4, 0));
    }

    #[test]
    fn nondet_reset_hook() {
        let mut ts = TransitionSystem::new("t");
        let s = ts.add_state("s", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        ts.set_next(s, sv);
        let sim = Simulator::new_with_reset(&ts, |_, _| Some(Value::bv(8, 42)));
        assert_eq!(sim.state_value(s), Value::bv(8, 42));
        let sim0 = Simulator::new(&ts);
        assert_eq!(sim0.state_value(s), Value::bv(8, 0));
    }
}
