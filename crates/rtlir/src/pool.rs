//! Hash-consed expression pool with sort checking and constant folding.

use crate::expr::{BinOp, ExprId, Node, UnOp, VarId};
use crate::sort::Sort;
use crate::value::{mask, ops};
use std::collections::HashMap;

/// Declaration of a free variable in a pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Human-readable name (used by printers and counterexample traces).
    pub name: String,
    /// Sort of the variable.
    pub sort: Sort,
}

/// An arena of hash-consed word-level expressions.
///
/// All construction goes through the typed methods below, which
/// sort-check their operands, normalize commutative operand order and
/// perform local constant folding. Structurally equal expressions are
/// therefore always represented by the same [`ExprId`], which downstream
/// consumers (bit-blaster, evaluator, engines) rely on for caching.
///
/// # Example
///
/// ```
/// use rtlir::{ExprPool, Sort};
/// let mut p = ExprPool::new();
/// let x = p.new_var("x", Sort::Bv(8));
/// let xv = p.var(x);
/// let a = p.constv(8, 3);
/// let s1 = p.add(xv, a);
/// let s2 = p.add(a, xv); // commuted: hash-conses to the same node
/// assert_eq!(s1, s2);
/// let folded = p.add(a, a);
/// assert_eq!(p.const_bits(folded), Some(6));
/// ```
///
/// # Panics
///
/// Constructor methods panic on sort violations (e.g. adding an 8-bit
/// and a 4-bit vector, or an `ite` whose condition is not one bit wide).
/// These indicate bugs in the calling translator, not user input errors;
/// user-facing frontends validate widths before constructing IR.
#[derive(Clone, Debug, Default)]
pub struct ExprPool {
    vars: Vec<VarDecl>,
    nodes: Vec<Node>,
    sorts: Vec<Sort>,
    dedup: HashMap<Node, ExprId>,
}

impl ExprPool {
    /// Creates an empty pool.
    pub fn new() -> ExprPool {
        ExprPool::default()
    }

    /// Number of interned expressions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool contains no expressions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Declares a fresh free variable.
    pub fn new_var(&mut self, name: impl Into<String>, sort: Sort) -> VarId {
        assert!(sort.is_valid(), "invalid sort {sort} for variable");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.into(),
            sort,
        });
        id
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The declaration of a variable.
    pub fn var_decl(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// The sort of a variable.
    pub fn var_sort(&self, v: VarId) -> Sort {
        self.vars[v.index()].sort
    }

    /// The node behind an expression id.
    pub fn node(&self, e: ExprId) -> &Node {
        &self.nodes[e.index()]
    }

    /// The sort of an expression.
    pub fn sort(&self, e: ExprId) -> Sort {
        self.sorts[e.index()]
    }

    /// The bit-vector width of an expression.
    ///
    /// # Panics
    ///
    /// Panics if the expression has array sort.
    pub fn width(&self, e: ExprId) -> u32 {
        self.sort(e).width()
    }

    /// If `e` is a bit-vector constant, its payload.
    pub fn const_bits(&self, e: ExprId) -> Option<u64> {
        match self.node(e) {
            Node::Const { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    /// Whether `e` is the single-bit constant 1.
    pub fn is_true(&self, e: ExprId) -> bool {
        self.sort(e) == Sort::BOOL && self.const_bits(e) == Some(1)
    }

    /// Whether `e` is the single-bit constant 0.
    pub fn is_false(&self, e: ExprId) -> bool {
        self.sort(e) == Sort::BOOL && self.const_bits(e) == Some(0)
    }

    fn intern(&mut self, node: Node, sort: Sort) -> ExprId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.sorts.push(sort);
        self.dedup.insert(node, id);
        id
    }

    // ------------------------------------------------------------------
    // Leaf constructors
    // ------------------------------------------------------------------

    /// A bit-vector constant of the given width (bits are masked).
    pub fn constv(&mut self, width: u32, bits: u64) -> ExprId {
        assert!(
            (1..=64).contains(&width),
            "constant width {width} out of range 1..=64"
        );
        self.intern(
            Node::Const {
                width,
                bits: bits & mask(width),
            },
            Sort::Bv(width),
        )
    }

    /// The single-bit constant for `b`.
    pub fn bool_const(&mut self, b: bool) -> ExprId {
        self.constv(1, b as u64)
    }

    /// A reference to a declared variable.
    pub fn var(&mut self, v: VarId) -> ExprId {
        let sort = self.var_sort(v);
        self.intern(Node::Var(v), sort)
    }

    /// A constant array with all elements equal to `bits`.
    pub fn const_array(&mut self, index_width: u32, elem_width: u32, bits: u64) -> ExprId {
        let sort = Sort::array(index_width, elem_width);
        assert!(sort.is_valid(), "invalid array sort {sort}");
        self.intern(
            Node::ConstArray {
                index_width,
                elem_width,
                bits: bits & mask(elem_width),
            },
            sort,
        )
    }

    // ------------------------------------------------------------------
    // Unary operators
    // ------------------------------------------------------------------

    fn unary(&mut self, op: UnOp, a: ExprId) -> ExprId {
        let w = self.width(a);
        let out_sort = match op {
            UnOp::Not | UnOp::Neg => Sort::Bv(w),
            UnOp::RedAnd | UnOp::RedOr | UnOp::RedXor => Sort::BOOL,
        };
        if let Some(av) = self.const_bits(a) {
            let bits = match op {
                UnOp::Not => ops::not(w, av),
                UnOp::Neg => ops::neg(w, av),
                UnOp::RedAnd => ops::redand(w, av),
                UnOp::RedOr => ops::redor(w, av),
                UnOp::RedXor => ops::redxor(w, av),
            };
            return self.constv(out_sort.width(), bits);
        }
        // ~~a == a
        if op == UnOp::Not {
            if let Node::Un(UnOp::Not, inner) = *self.node(a) {
                return inner;
            }
        }
        self.intern(Node::Un(op, a), out_sort)
    }

    /// Bitwise complement `~a`.
    pub fn not(&mut self, a: ExprId) -> ExprId {
        self.unary(UnOp::Not, a)
    }
    /// Two's-complement negation `-a`.
    pub fn neg(&mut self, a: ExprId) -> ExprId {
        self.unary(UnOp::Neg, a)
    }
    /// Reduction AND `&a` (width-1 result).
    pub fn redand(&mut self, a: ExprId) -> ExprId {
        self.unary(UnOp::RedAnd, a)
    }
    /// Reduction OR `|a` (width-1 result).
    pub fn redor(&mut self, a: ExprId) -> ExprId {
        self.unary(UnOp::RedOr, a)
    }
    /// Reduction XOR `^a` (width-1 result).
    pub fn redxor(&mut self, a: ExprId) -> ExprId {
        self.unary(UnOp::RedXor, a)
    }

    // ------------------------------------------------------------------
    // Binary operators
    // ------------------------------------------------------------------

    fn binary(&mut self, op: BinOp, mut a: ExprId, mut b: ExprId) -> ExprId {
        let (wa, wb) = (self.width(a), self.width(b));
        if op.same_width_operands() {
            assert_eq!(
                wa, wb,
                "operator {op} requires equal widths, got bv{wa} and bv{wb}"
            );
        }
        let out_sort = if op.is_predicate() {
            Sort::BOOL
        } else if op == BinOp::Concat {
            assert!(
                wa + wb <= 64,
                "concat result width {} exceeds 64 bits",
                wa + wb
            );
            Sort::Bv(wa + wb)
        } else {
            Sort::Bv(wa)
        };

        // Constant folding.
        if let (Some(av), Some(bv)) = (self.const_bits(a), self.const_bits(b)) {
            let bits = match op {
                BinOp::And => av & bv,
                BinOp::Or => av | bv,
                BinOp::Xor => av ^ bv,
                BinOp::Add => ops::add(wa, av, bv),
                BinOp::Sub => ops::sub(wa, av, bv),
                BinOp::Mul => ops::mul(wa, av, bv),
                BinOp::Udiv => ops::udiv(wa, av, bv),
                BinOp::Urem => ops::urem(wa, av, bv),
                BinOp::Shl => ops::shl(wa, av, bv),
                BinOp::Lshr => ops::lshr(wa, av, bv),
                BinOp::Ashr => ops::ashr(wa, av, bv),
                BinOp::Eq => ops::eq(av, bv),
                BinOp::Ult => ops::ult(av, bv),
                BinOp::Ule => ops::ule(av, bv),
                BinOp::Slt => ops::slt(wa, av, bv),
                BinOp::Sle => ops::sle(wa, av, bv),
                BinOp::Concat => ops::concat(av, wb, bv),
            };
            return self.constv(out_sort.width(), bits);
        }

        // Canonical operand order for commutative operators:
        // constants first, then by id.
        if op.is_commutative() {
            let a_const = self.const_bits(a).is_some();
            let b_const = self.const_bits(b).is_some();
            if (b_const && !a_const) || (a_const == b_const && b < a) {
                std::mem::swap(&mut a, &mut b);
            }
        }

        // Local simplifications with one constant operand (now on the left
        // for commutative ops) or equal operands.
        let ac = self.const_bits(a);
        let bc = self.const_bits(b);
        match op {
            BinOp::And => {
                if ac == Some(0) {
                    return self.constv(wa, 0);
                }
                if ac == Some(mask(wa)) {
                    return b;
                }
                if a == b {
                    return a;
                }
            }
            BinOp::Or => {
                if ac == Some(0) {
                    return b;
                }
                if ac == Some(mask(wa)) {
                    return self.constv(wa, mask(wa));
                }
                if a == b {
                    return a;
                }
            }
            BinOp::Xor => {
                if ac == Some(0) {
                    return b;
                }
                if a == b {
                    return self.constv(wa, 0);
                }
            }
            BinOp::Add if ac == Some(0) => return b,
            BinOp::Add => {}
            BinOp::Sub => {
                if bc == Some(0) {
                    return a;
                }
                if a == b {
                    return self.constv(wa, 0);
                }
            }
            BinOp::Eq => {
                if a == b {
                    return self.bool_const(true);
                }
                // For single-bit operands: x == 1 is x, x == 0 is ~x.
                if wa == 1 {
                    if ac == Some(1) {
                        return b;
                    }
                    if ac == Some(0) {
                        return self.not(b);
                    }
                }
            }
            BinOp::Ult => {
                if a == b {
                    return self.bool_const(false);
                }
                if bc == Some(0) {
                    return self.bool_const(false);
                }
            }
            BinOp::Ule => {
                if a == b {
                    return self.bool_const(true);
                }
                if ac == Some(0) {
                    return self.bool_const(true);
                }
            }
            BinOp::Shl | BinOp::Lshr | BinOp::Ashr if bc == Some(0) => return a,
            BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {}
            BinOp::Mul => {
                if ac == Some(1) {
                    return b;
                }
                if ac == Some(0) {
                    return self.constv(wa, 0);
                }
            }
            _ => {}
        }

        self.intern(Node::Bin(op, a, b), out_sort)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::And, a, b)
    }
    /// Bitwise OR.
    pub fn or(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Or, a, b)
    }
    /// Bitwise XOR.
    pub fn xor(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Xor, a, b)
    }
    /// Addition modulo `2^w`.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Add, a, b)
    }
    /// Subtraction modulo `2^w`.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Sub, a, b)
    }
    /// Multiplication modulo `2^w`.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Mul, a, b)
    }
    /// Unsigned division.
    pub fn udiv(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Udiv, a, b)
    }
    /// Unsigned remainder.
    pub fn urem(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Urem, a, b)
    }
    /// Logical shift left.
    pub fn shl(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Shl, a, b)
    }
    /// Logical shift right.
    pub fn lshr(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Lshr, a, b)
    }
    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Ashr, a, b)
    }
    /// Equality predicate.
    pub fn eq(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Eq, a, b)
    }
    /// Disequality predicate (`~(a == b)`).
    pub fn ne(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let e = self.eq(a, b);
        self.not(e)
    }
    /// Unsigned less-than predicate.
    pub fn ult(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Ult, a, b)
    }
    /// Unsigned less-or-equal predicate.
    pub fn ule(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Ule, a, b)
    }
    /// Unsigned greater-than predicate (`b <u a`).
    pub fn ugt(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Ult, b, a)
    }
    /// Unsigned greater-or-equal predicate (`b <=u a`).
    pub fn uge(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Ule, b, a)
    }
    /// Signed less-than predicate.
    pub fn slt(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Slt, a, b)
    }
    /// Signed less-or-equal predicate.
    pub fn sle(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Sle, a, b)
    }
    /// Concatenation (`a` is the high part).
    pub fn concat(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.binary(BinOp::Concat, a, b)
    }
    /// Boolean implication `a -> b`, defined as `~a | b`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not a single bit.
    pub fn implies(&mut self, a: ExprId, b: ExprId) -> ExprId {
        assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        let na = self.not(a);
        self.or(na, b)
    }

    // ------------------------------------------------------------------
    // Other constructors
    // ------------------------------------------------------------------

    /// If-then-else.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not one bit wide or the branches differ in sort.
    pub fn ite(&mut self, cond: ExprId, then_e: ExprId, else_e: ExprId) -> ExprId {
        assert!(
            self.sort(cond).is_bool(),
            "ite condition must be 1 bit, got {}",
            self.sort(cond)
        );
        let st = self.sort(then_e);
        assert_eq!(st, self.sort(else_e), "ite branches must have equal sorts");
        if let Some(c) = self.const_bits(cond) {
            return if c == 1 { then_e } else { else_e };
        }
        if then_e == else_e {
            return then_e;
        }
        // ite(c, 1, 0) == c and ite(c, 0, 1) == ~c for single-bit branches.
        if st.is_bool() {
            if self.is_true(then_e) && self.is_false(else_e) {
                return cond;
            }
            if self.is_false(then_e) && self.is_true(else_e) {
                return self.not(cond);
            }
        }
        self.intern(Node::Ite(cond, then_e, else_e), st)
    }

    /// Bit-field extraction `a[hi:lo]`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi < width(a)`.
    pub fn extract(&mut self, a: ExprId, hi: u32, lo: u32) -> ExprId {
        let w = self.width(a);
        assert!(
            lo <= hi && hi < w,
            "extract [{hi}:{lo}] out of range for bv{w}"
        );
        if lo == 0 && hi + 1 == w {
            return a;
        }
        if let Some(av) = self.const_bits(a) {
            return self.constv(hi - lo + 1, ops::extract(hi, lo, av));
        }
        // extract of extract composes.
        if let Node::Extract {
            hi: _,
            lo: ilo,
            arg,
        } = *self.node(a)
        {
            return self.extract(arg, ilo + hi, ilo + lo);
        }
        self.intern(Node::Extract { hi, lo, arg: a }, Sort::Bv(hi - lo + 1))
    }

    /// Single-bit extraction `a[i]`.
    pub fn bit(&mut self, a: ExprId, i: u32) -> ExprId {
        self.extract(a, i, i)
    }

    /// Zero extension to `width`. A no-op when `width` equals the
    /// operand's width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width or above 64.
    pub fn zext(&mut self, a: ExprId, width: u32) -> ExprId {
        let w = self.width(a);
        assert!(w <= width && width <= 64, "zext bv{w} -> bv{width} invalid");
        if w == width {
            return a;
        }
        if let Some(av) = self.const_bits(a) {
            return self.constv(width, av);
        }
        self.intern(Node::Zext { arg: a, width }, Sort::Bv(width))
    }

    /// Sign extension to `width`. A no-op when `width` equals the
    /// operand's width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width or above 64.
    pub fn sext(&mut self, a: ExprId, width: u32) -> ExprId {
        let w = self.width(a);
        assert!(w <= width && width <= 64, "sext bv{w} -> bv{width} invalid");
        if w == width {
            return a;
        }
        if let Some(av) = self.const_bits(a) {
            return self.constv(width, ops::sext(w, width, av));
        }
        self.intern(Node::Sext { arg: a, width }, Sort::Bv(width))
    }

    /// Adjusts `a` to exactly `width` bits, zero-extending or truncating
    /// (Verilog assignment-context resizing).
    pub fn resize_zext(&mut self, a: ExprId, width: u32) -> ExprId {
        let w = self.width(a);
        if w == width {
            a
        } else if w < width {
            self.zext(a, width)
        } else {
            self.extract(a, width - 1, 0)
        }
    }

    /// Array read `array[index]`.
    ///
    /// # Panics
    ///
    /// Panics if `array` is not an array or the index width mismatches.
    pub fn read(&mut self, array: ExprId, index: ExprId) -> ExprId {
        let (iw, ew) = match self.sort(array) {
            Sort::Array {
                index_width,
                elem_width,
            } => (index_width, elem_width),
            s => panic!("read on non-array sort {s}"),
        };
        assert_eq!(self.width(index), iw, "array index width mismatch");
        // read(const_array(v), i) == v
        if let Node::ConstArray { bits, .. } = *self.node(array) {
            return self.constv(ew, bits);
        }
        // read(write(a, i, v), i) == v when indices are syntactically equal.
        if let Node::Write {
            array: _,
            index: wi,
            value,
        } = *self.node(array)
        {
            if wi == index {
                return value;
            }
        }
        self.intern(Node::Read { array, index }, Sort::Bv(ew))
    }

    /// Functional array update.
    ///
    /// # Panics
    ///
    /// Panics on index/element width mismatches.
    pub fn write(&mut self, array: ExprId, index: ExprId, value: ExprId) -> ExprId {
        let sort = self.sort(array);
        let (iw, ew) = match sort {
            Sort::Array {
                index_width,
                elem_width,
            } => (index_width, elem_width),
            s => panic!("write on non-array sort {s}"),
        };
        assert_eq!(self.width(index), iw, "array index width mismatch");
        assert_eq!(self.width(value), ew, "array element width mismatch");
        self.intern(
            Node::Write {
                array,
                index,
                value,
            },
            sort,
        )
    }

    /// Conjunction of a list of single-bit expressions (true for empty).
    pub fn and_all(&mut self, items: &[ExprId]) -> ExprId {
        let mut acc = self.bool_const(true);
        for &e in items {
            acc = self.and(acc, e);
        }
        acc
    }

    /// Disjunction of a list of single-bit expressions (false for empty).
    pub fn or_all(&mut self, items: &[ExprId]) -> ExprId {
        let mut acc = self.bool_const(false);
        for &e in items {
            acc = self.or(acc, e);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_var(w: u32) -> (ExprPool, ExprId) {
        let mut p = ExprPool::new();
        let v = p.new_var("x", Sort::Bv(w));
        let e = p.var(v);
        (p, e)
    }

    #[test]
    fn hash_consing_dedups() {
        let (mut p, x) = pool_with_var(8);
        let c = p.constv(8, 5);
        let a1 = p.add(x, c);
        let a2 = p.add(x, c);
        assert_eq!(a1, a2);
        let n = p.len();
        let _ = p.add(c, x); // commuted
        assert_eq!(p.len(), n, "commuted add must not create a new node");
    }

    #[test]
    fn constant_folding() {
        let mut p = ExprPool::new();
        let a = p.constv(8, 200);
        let b = p.constv(8, 100);
        let s = p.add(a, b);
        assert_eq!(p.const_bits(s), Some(44)); // 300 mod 256
        let e = p.eq(a, b);
        assert!(p.is_false(e));
        let cc = p.concat(a, b);
        assert_eq!(p.const_bits(cc), Some(200 << 8 | 100));
        assert_eq!(p.width(cc), 16);
    }

    #[test]
    fn identities() {
        let (mut p, x) = pool_with_var(8);
        let zero = p.constv(8, 0);
        let ones = p.constv(8, 0xFF);
        assert_eq!(p.add(x, zero), x);
        assert_eq!(p.or(x, zero), x);
        assert_eq!(p.and(x, ones), x);
        assert_eq!(p.xor(x, zero), x);
        let a = p.and(x, zero);
        assert_eq!(p.const_bits(a), Some(0));
        let s = p.sub(x, x);
        assert_eq!(p.const_bits(s), Some(0));
        let d = p.not(x);
        assert_eq!(p.not(d), x, "double negation cancels");
    }

    #[test]
    fn ite_simplification() {
        let (mut p, x) = pool_with_var(1);
        let t = p.bool_const(true);
        let f = p.bool_const(false);
        assert_eq!(p.ite(t, x, f), x);
        assert_eq!(p.ite(x, t, f), x);
        let nx = p.not(x);
        assert_eq!(p.ite(x, f, t), nx);
        assert_eq!(p.ite(x, t, t), t);
    }

    #[test]
    fn extract_composition() {
        let (mut p, x) = pool_with_var(16);
        let a = p.extract(x, 11, 4); // 8 bits
        let b = p.extract(a, 5, 2); // bits 6..=9 of x
        let direct = p.extract(x, 9, 6);
        assert_eq!(b, direct);
        assert_eq!(p.extract(x, 15, 0), x);
    }

    #[test]
    fn read_over_write() {
        let mut p = ExprPool::new();
        let mem = p.new_var("mem", Sort::array(4, 8));
        let m = p.var(mem);
        let i = p.constv(4, 3);
        let v = p.constv(8, 77);
        let m2 = p.write(m, i, v);
        assert_eq!(p.read(m2, i), v);
        let ca = p.const_array(4, 8, 9);
        let r = p.read(ca, i);
        assert_eq!(p.const_bits(r), Some(9));
    }

    #[test]
    fn predicate_sorts() {
        let (mut p, x) = pool_with_var(8);
        let c = p.constv(8, 1);
        let eq = p.eq(x, c);
        assert_eq!(p.sort(eq), Sort::BOOL);
        let lt = p.ult(x, c);
        assert!(p.sort(lt).is_bool());
        let gt = p.ugt(x, c);
        assert!(p.sort(gt).is_bool());
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn width_mismatch_panics() {
        let mut p = ExprPool::new();
        let a = p.constv(8, 1);
        let v = p.new_var("y", Sort::Bv(4));
        let b = p.var(v);
        let _ = p.add(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds 64")]
    fn concat_overflow_panics() {
        let mut p = ExprPool::new();
        let v = p.new_var("x", Sort::Bv(40));
        let a = p.var(v);
        let _ = p.concat(a, a);
    }

    #[test]
    fn and_or_all() {
        let (mut p, x) = pool_with_var(1);
        let y = p.new_var("y", Sort::BOOL);
        let yv = p.var(y);
        let c = p.and_all(&[x, yv]);
        assert!(matches!(p.node(c), Node::Bin(BinOp::And, _, _)));
        let empty = p.and_all(&[]);
        assert!(p.is_true(empty));
        let empty_or = p.or_all(&[]);
        assert!(p.is_false(empty_or));
    }

    #[test]
    fn resize() {
        let (mut p, x) = pool_with_var(8);
        let up = p.resize_zext(x, 12);
        assert_eq!(p.width(up), 12);
        let t = p.resize_zext(x, 4);
        assert_eq!(p.width(t), 4);
        assert_eq!(p.resize_zext(x, 8), x);
    }
}
