//! Reference evaluator: the golden semantics of the expression language.

use crate::expr::{BinOp, ExprId, Node, UnOp, VarId};
use crate::pool::ExprPool;
use crate::value::{ops, ArrayValue, Value};
use std::collections::HashMap;

/// An assignment of values to (some of) a pool's variables.
///
/// The evaluator queries this for every variable it encounters.
pub trait EvalEnv {
    /// The value of variable `v`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `v` is not covered by the
    /// environment; the evaluator only asks for variables that actually
    /// occur in the evaluated expression.
    fn value_of(&self, v: VarId) -> Value;
}

impl EvalEnv for HashMap<VarId, Value> {
    fn value_of(&self, v: VarId) -> Value {
        self.get(&v)
            .unwrap_or_else(|| panic!("no value for {v}"))
            .clone()
    }
}

impl<F: Fn(VarId) -> Value> EvalEnv for F {
    fn value_of(&self, v: VarId) -> Value {
        self(v)
    }
}

/// Evaluates `root` under `env`, sharing work across the expression DAG.
///
/// Iterative (explicit work list), so deeply nested expressions from
/// long combinational chains cannot overflow the stack.
///
/// # Example
///
/// ```
/// use rtlir::{eval, ExprPool, Sort, Value};
/// use std::collections::HashMap;
///
/// let mut p = ExprPool::new();
/// let x = p.new_var("x", Sort::Bv(8));
/// let xv = p.var(x);
/// let e = p.mul(xv, xv);
/// let mut env = HashMap::new();
/// env.insert(x, Value::bv(8, 20));
/// assert_eq!(eval(&p, e, &env), Value::bv(8, 144)); // 400 mod 256
/// ```
pub fn eval(pool: &ExprPool, root: ExprId, env: &impl EvalEnv) -> Value {
    let mut cache: HashMap<ExprId, Value> = HashMap::new();
    eval_with_cache(pool, root, env, &mut cache)
}

/// Like [`eval`] but reuses a caller-provided cache, so several
/// expressions over the same variable assignment (e.g. all next-state
/// functions of one step) share sub-expression work.
pub fn eval_with_cache(
    pool: &ExprPool,
    root: ExprId,
    env: &impl EvalEnv,
    cache: &mut HashMap<ExprId, Value>,
) -> Value {
    // Work list of (expr, expanded?) pairs: post-order evaluation.
    let mut stack: Vec<(ExprId, bool)> = vec![(root, false)];
    while let Some((e, expanded)) = stack.pop() {
        if cache.contains_key(&e) {
            continue;
        }
        let node = pool.node(e).clone();
        if !expanded {
            stack.push((e, true));
            match &node {
                Node::Const { .. } | Node::Var(_) | Node::ConstArray { .. } => {}
                Node::Un(_, a) | Node::Extract { arg: a, .. } => stack.push((*a, false)),
                Node::Zext { arg, .. } | Node::Sext { arg, .. } => stack.push((*arg, false)),
                Node::Bin(_, a, b) => {
                    stack.push((*a, false));
                    stack.push((*b, false));
                }
                Node::Ite(c, t, f) => {
                    stack.push((*c, false));
                    stack.push((*t, false));
                    stack.push((*f, false));
                }
                Node::Read { array, index } => {
                    stack.push((*array, false));
                    stack.push((*index, false));
                }
                Node::Write {
                    array,
                    index,
                    value,
                } => {
                    stack.push((*array, false));
                    stack.push((*index, false));
                    stack.push((*value, false));
                }
            }
            continue;
        }
        let get = |cache: &HashMap<ExprId, Value>, id: ExprId| cache[&id].clone();
        let value = match node {
            Node::Const { width, bits } => Value::bv(width, bits),
            Node::ConstArray {
                index_width,
                elem_width,
                bits,
            } => Value::Array(ArrayValue::filled(index_width, elem_width, bits)),
            Node::Var(v) => {
                let val = env.value_of(v);
                debug_assert_eq!(
                    val.sort(),
                    pool.var_sort(v),
                    "environment returned wrong sort for {v}"
                );
                val
            }
            Node::Un(op, a) => {
                let av = get(cache, a);
                let w = pool.width(a);
                let bits = av.bits();
                let out = match op {
                    UnOp::Not => ops::not(w, bits),
                    UnOp::Neg => ops::neg(w, bits),
                    UnOp::RedAnd => ops::redand(w, bits),
                    UnOp::RedOr => ops::redor(w, bits),
                    UnOp::RedXor => ops::redxor(w, bits),
                };
                Value::bv(pool.width(e), out)
            }
            Node::Bin(op, a, b) => {
                let (av, bv) = (get(cache, a).bits(), get(cache, b).bits());
                let (wa, wb) = (pool.width(a), pool.width(b));
                let out = match op {
                    BinOp::And => av & bv,
                    BinOp::Or => av | bv,
                    BinOp::Xor => av ^ bv,
                    BinOp::Add => ops::add(wa, av, bv),
                    BinOp::Sub => ops::sub(wa, av, bv),
                    BinOp::Mul => ops::mul(wa, av, bv),
                    BinOp::Udiv => ops::udiv(wa, av, bv),
                    BinOp::Urem => ops::urem(wa, av, bv),
                    BinOp::Shl => ops::shl(wa, av, bv),
                    BinOp::Lshr => ops::lshr(wa, av, bv),
                    BinOp::Ashr => ops::ashr(wa, av, bv),
                    BinOp::Eq => ops::eq(av, bv),
                    BinOp::Ult => ops::ult(av, bv),
                    BinOp::Ule => ops::ule(av, bv),
                    BinOp::Slt => ops::slt(wa, av, bv),
                    BinOp::Sle => ops::sle(wa, av, bv),
                    BinOp::Concat => ops::concat(av, wb, bv),
                };
                Value::bv(pool.width(e), out)
            }
            Node::Ite(c, t, f) => {
                if get(cache, c).as_bool() {
                    get(cache, t)
                } else {
                    get(cache, f)
                }
            }
            Node::Extract { hi, lo, arg } => {
                Value::bv(hi - lo + 1, ops::extract(hi, lo, get(cache, arg).bits()))
            }
            Node::Zext { arg, width } => Value::bv(width, get(cache, arg).bits()),
            Node::Sext { arg, width } => Value::bv(
                width,
                ops::sext(pool.width(arg), width, get(cache, arg).bits()),
            ),
            Node::Read { array, index } => {
                let a = get(cache, array);
                let i = get(cache, index).bits();
                Value::bv(a.as_array().elem_width, a.as_array().read(i))
            }
            Node::Write {
                array,
                index,
                value,
            } => {
                let a = get(cache, array);
                let i = get(cache, index).bits();
                let v = get(cache, value).bits();
                Value::Array(a.as_array().write(i, v))
            }
        };
        cache.insert(e, value);
    }
    cache[&root].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn dag_sharing() {
        let mut p = ExprPool::new();
        let x = p.new_var("x", Sort::Bv(32));
        let xv = p.var(x);
        // Build a deep chain: ((x+x)+(x+x))+... — shared nodes.
        let mut e = xv;
        for _ in 0..1000 {
            e = p.add(e, e);
        }
        let mut env = HashMap::new();
        env.insert(x, Value::bv(32, 1));
        // 2^1000 mod 2^32 == 0.
        assert_eq!(eval(&p, e, &env), Value::bv(32, 0));
    }

    #[test]
    fn ite_and_memory() {
        let mut p = ExprPool::new();
        let mem = p.new_var("mem", Sort::array(4, 8));
        let sel = p.new_var("sel", Sort::BOOL);
        let mv = p.var(mem);
        let sv = p.var(sel);
        let i3 = p.constv(4, 3);
        let v9 = p.constv(8, 9);
        let updated = p.write(mv, i3, v9);
        let chosen = p.ite(sv, updated, mv);
        let read = p.read(chosen, i3);

        let mut env = HashMap::new();
        env.insert(mem, Value::Array(ArrayValue::filled(4, 8, 0)));
        env.insert(sel, Value::bit(true));
        assert_eq!(eval(&p, read, &env), Value::bv(8, 9));
        env.insert(sel, Value::bit(false));
        assert_eq!(eval(&p, read, &env), Value::bv(8, 0));
    }

    #[test]
    fn closure_env() {
        let mut p = ExprPool::new();
        let x = p.new_var("x", Sort::Bv(8));
        let xv = p.var(x);
        let two = p.constv(8, 2);
        let e = p.shl(xv, two);
        let v = eval(&p, e, &|_v: VarId| Value::bv(8, 3));
        assert_eq!(v, Value::bv(8, 12));
    }

    #[test]
    fn extensions() {
        let mut p = ExprPool::new();
        let x = p.new_var("x", Sort::Bv(4));
        let xv = p.var(x);
        let z = p.zext(xv, 8);
        let s = p.sext(xv, 8);
        let mut env = HashMap::new();
        env.insert(x, Value::bv(4, 0b1010));
        assert_eq!(eval(&p, z, &env), Value::bv(8, 0x0A));
        assert_eq!(eval(&p, s, &env), Value::bv(8, 0xFA));
    }
}
