//! Sorts (types) of word-level expressions.

use std::fmt;

/// The sort of a word-level expression.
///
/// Bit-vector widths are limited to 64 bits, which covers every design in
/// the DATE 2016 benchmark suite with room to spare and lets values live
/// in a single machine word. Arrays model Verilog memories
/// (`reg [e-1:0] mem [0:2^i - 1]`).
///
/// # Example
///
/// ```
/// use rtlir::Sort;
/// assert_eq!(Sort::Bv(8).width(), 8);
/// assert!(Sort::array(4, 8).is_array());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// A bit-vector of the given width, `1..=64`.
    Bv(u32),
    /// An array from `Bv(index_width)` to `Bv(elem_width)`.
    Array {
        /// Width of the index bit-vector.
        index_width: u32,
        /// Width of each element.
        elem_width: u32,
    },
}

impl Sort {
    /// The single-bit (boolean) sort.
    pub const BOOL: Sort = Sort::Bv(1);

    /// Creates an array sort. Convenience over the struct literal.
    pub fn array(index_width: u32, elem_width: u32) -> Sort {
        Sort::Array {
            index_width,
            elem_width,
        }
    }

    /// Returns the bit-vector width.
    ///
    /// # Panics
    ///
    /// Panics if the sort is an array; callers branch on
    /// [`is_array`](Sort::is_array) first when arrays are possible.
    pub fn width(self) -> u32 {
        match self {
            Sort::Bv(w) => w,
            Sort::Array { .. } => panic!("width() called on array sort {self}"),
        }
    }

    /// Whether this is a single-bit sort.
    pub fn is_bool(self) -> bool {
        self == Sort::BOOL
    }

    /// Whether this is an array sort.
    pub fn is_array(self) -> bool {
        matches!(self, Sort::Array { .. })
    }

    /// Whether this is a bit-vector sort of any width.
    pub fn is_bv(self) -> bool {
        matches!(self, Sort::Bv(_))
    }

    /// Validates the sort: bit-vector widths must be in `1..=64`.
    pub fn is_valid(self) -> bool {
        match self {
            Sort::Bv(w) => (1..=64).contains(&w),
            Sort::Array {
                index_width,
                elem_width,
            } => (1..=32).contains(&index_width) && (1..=64).contains(&elem_width),
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bv(w) => write!(f, "bv{w}"),
            Sort::Array {
                index_width,
                elem_width,
            } => write!(f, "bv{index_width} -> bv{elem_width}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Sort::Bv(13).width(), 13);
        assert!(Sort::BOOL.is_bool());
        assert!(!Sort::Bv(2).is_bool());
    }

    #[test]
    fn validity() {
        assert!(Sort::Bv(1).is_valid());
        assert!(Sort::Bv(64).is_valid());
        assert!(!Sort::Bv(0).is_valid());
        assert!(!Sort::Bv(65).is_valid());
        assert!(Sort::array(4, 8).is_valid());
        assert!(!Sort::array(0, 8).is_valid());
    }

    #[test]
    #[should_panic(expected = "array sort")]
    fn width_of_array_panics() {
        let _ = Sort::array(2, 4).width();
    }

    #[test]
    fn display() {
        assert_eq!(Sort::Bv(8).to_string(), "bv8");
        assert_eq!(Sort::array(4, 16).to_string(), "bv4 -> bv16");
    }
}
