//! Expression node definitions.

use std::fmt;

/// Index of an expression in an [`ExprPool`](crate::ExprPool).
///
/// Identifiers are only meaningful relative to the pool that created
/// them; thanks to hash-consing, two structurally equal expressions in
/// the same pool always share one `ExprId`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub(crate) u32);

impl ExprId {
    /// The raw index, for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Index of a variable declared in an [`ExprPool`](crate::ExprPool).
///
/// Variables are the free names of the expression language; a
/// [`TransitionSystem`](crate::TransitionSystem) designates some of them
/// as inputs and some as state-holding elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index, for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs a `VarId` from a raw index previously obtained via
    /// [`index`](VarId::index).
    pub fn from_index(i: usize) -> VarId {
        VarId(i as u32)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Unary word-level operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement (`~a`).
    Not,
    /// Two's-complement negation (`-a`).
    Neg,
    /// Reduction AND (`&a`), result width 1.
    RedAnd,
    /// Reduction OR (`|a`), result width 1.
    RedOr,
    /// Reduction XOR (`^a`), result width 1.
    RedXor,
}

/// Binary word-level operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Addition modulo `2^w`.
    Add,
    /// Subtraction modulo `2^w`.
    Sub,
    /// Multiplication modulo `2^w`.
    Mul,
    /// Unsigned division (`x/0 = ~0`).
    Udiv,
    /// Unsigned remainder (`x%0 = x`).
    Urem,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Equality, result width 1.
    Eq,
    /// Unsigned less-than, result width 1.
    Ult,
    /// Unsigned less-or-equal, result width 1.
    Ule,
    /// Signed less-than, result width 1.
    Slt,
    /// Signed less-or-equal, result width 1.
    Sle,
    /// Concatenation; left operand is the high part.
    Concat,
}

impl BinOp {
    /// Whether the operator is commutative (used for hash-cons
    /// normalization of operand order).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Mul | BinOp::Eq
        )
    }

    /// Whether both operands must share a width.
    pub fn same_width_operands(self) -> bool {
        !matches!(self, BinOp::Shl | BinOp::Lshr | BinOp::Ashr | BinOp::Concat)
    }

    /// Whether the result is a single bit regardless of operand width.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle
        )
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Not => "~",
            UnOp::Neg => "-",
            UnOp::RedAnd => "&",
            UnOp::RedOr => "|",
            UnOp::RedXor => "^",
        };
        f.write_str(s)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Udiv => "/",
            BinOp::Urem => "%",
            BinOp::Shl => "<<",
            BinOp::Lshr => ">>",
            BinOp::Ashr => ">>>",
            BinOp::Eq => "==",
            BinOp::Ult => "<u",
            BinOp::Ule => "<=u",
            BinOp::Slt => "<s",
            BinOp::Sle => "<=s",
            BinOp::Concat => "++",
        };
        f.write_str(s)
    }
}

/// An expression node. Sub-expressions are referenced by [`ExprId`].
///
/// Nodes are immutable once interned in a pool; the pool guarantees that
/// all width/sort constraints documented on
/// [`ExprPool`](crate::ExprPool)'s constructor methods hold.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// A bit-vector constant.
    Const {
        /// Width in bits.
        width: u32,
        /// Payload, masked to `width`.
        bits: u64,
    },
    /// A free variable (input, register, or auxiliary).
    Var(VarId),
    /// Unary operator application.
    Un(UnOp, ExprId),
    /// Binary operator application.
    Bin(BinOp, ExprId, ExprId),
    /// If-then-else; condition must be a single bit.
    Ite(ExprId, ExprId, ExprId),
    /// Bit-field extraction `arg[hi:lo]`.
    Extract {
        /// Most significant extracted bit.
        hi: u32,
        /// Least significant extracted bit.
        lo: u32,
        /// Extracted operand.
        arg: ExprId,
    },
    /// Zero extension to `width`.
    Zext {
        /// Operand.
        arg: ExprId,
        /// Target width (strictly larger than operand width).
        width: u32,
    },
    /// Sign extension to `width`.
    Sext {
        /// Operand.
        arg: ExprId,
        /// Target width (strictly larger than operand width).
        width: u32,
    },
    /// Array read `array[index]`.
    Read {
        /// Array operand.
        array: ExprId,
        /// Index operand (width = array index width).
        index: ExprId,
    },
    /// Functional array update `array with [index := value]`.
    Write {
        /// Array operand.
        array: ExprId,
        /// Index operand.
        index: ExprId,
        /// New element value.
        value: ExprId,
    },
    /// A constant array with every element equal to `bits`.
    ConstArray {
        /// Index width of the resulting array sort.
        index_width: u32,
        /// Element width of the resulting array sort.
        elem_width: u32,
        /// Element payload.
        bits: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_table() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Eq.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Concat.is_commutative());
        assert!(!BinOp::Ult.is_commutative());
    }

    #[test]
    fn predicate_table() {
        assert!(BinOp::Ult.is_predicate());
        assert!(BinOp::Sle.is_predicate());
        assert!(!BinOp::Add.is_predicate());
    }

    #[test]
    fn shift_width_rule() {
        assert!(!BinOp::Shl.same_width_operands());
        assert!(BinOp::Add.same_width_operands());
    }

    #[test]
    fn ids_display() {
        assert_eq!(ExprId(7).to_string(), "e7");
        assert_eq!(VarId(3).to_string(), "v3");
        assert_eq!(VarId::from_index(5).index(), 5);
    }
}
