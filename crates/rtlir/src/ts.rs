//! BTOR-style word-level transition systems.

use crate::expr::{ExprId, VarId};
use crate::pool::ExprPool;
use crate::sort::Sort;

/// Index of a state-holding element in a [`TransitionSystem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// The raw index, for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs from a raw index.
    pub fn from_index(i: usize) -> StateId {
        StateId(i as u32)
    }
}

/// Index of a bad-state property in a [`TransitionSystem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BadId(pub(crate) u32);

impl BadId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A state-holding element (register or memory).
#[derive(Clone, Debug)]
pub struct State {
    /// The pool variable representing the current-state value.
    pub var: VarId,
    /// Initial-state expression; must not reference any variable.
    /// `None` means the initial value is unconstrained (nondeterministic).
    pub init: Option<ExprId>,
    /// Next-state function over current state and inputs. `None` means
    /// the state is frozen (keeps its value), which synthesis never
    /// produces but hand-built systems may use.
    pub next: Option<ExprId>,
}

/// A bad-state (safety) property: the design is safe iff no reachable
/// state satisfies the expression.
#[derive(Clone, Debug)]
pub struct Bad {
    /// Single-bit expression that is 1 exactly in bad states.
    pub expr: ExprId,
    /// Human-readable name (assertion label / source location).
    pub name: String,
}

/// A word-level transition system: the common internal form of the
/// hardware-verification flow (paper Figure 2, "word-level netlist").
///
/// Holds its own [`ExprPool`]; inputs and states are pool variables.
/// `bad` expressions are the negations of the SVA safety properties; the
/// optional `constraints` are environment assumptions that must hold in
/// every considered step.
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Clone, Debug)]
pub struct TransitionSystem {
    name: String,
    pool: ExprPool,
    inputs: Vec<VarId>,
    states: Vec<State>,
    constraints: Vec<ExprId>,
    bads: Vec<Bad>,
}

impl TransitionSystem {
    /// Creates an empty system with the given design name.
    pub fn new(name: impl Into<String>) -> TransitionSystem {
        TransitionSystem {
            name: name.into(),
            pool: ExprPool::new(),
            inputs: Vec::new(),
            states: Vec::new(),
            constraints: Vec::new(),
            bads: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared access to the expression pool.
    pub fn pool(&self) -> &ExprPool {
        &self.pool
    }

    /// Mutable access to the expression pool (for building expressions
    /// that will be installed as init/next/bad).
    pub fn pool_mut(&mut self) -> &mut ExprPool {
        &mut self.pool
    }

    /// Declares a primary input.
    pub fn add_input(&mut self, name: impl Into<String>, sort: Sort) -> VarId {
        let v = self.pool.new_var(name, sort);
        self.inputs.push(v);
        v
    }

    /// Declares a state-holding element and returns its pool variable.
    ///
    /// Init and next functions are attached later with
    /// [`set_init`](TransitionSystem::set_init) and
    /// [`set_next`](TransitionSystem::set_next).
    pub fn add_state(&mut self, name: impl Into<String>, sort: Sort) -> VarId {
        let v = self.pool.new_var(name, sort);
        self.states.push(State {
            var: v,
            init: None,
            next: None,
        });
        v
    }

    fn state_mut(&mut self, var: VarId) -> &mut State {
        self.states
            .iter_mut()
            .find(|s| s.var == var)
            .unwrap_or_else(|| panic!("{var} is not a declared state"))
    }

    /// Sets the initial-value expression of a state.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a state of this system or the sorts differ.
    pub fn set_init(&mut self, var: VarId, init: ExprId) {
        assert_eq!(
            self.pool.var_sort(var),
            self.pool.sort(init),
            "init sort mismatch for {var}"
        );
        self.state_mut(var).init = Some(init);
    }

    /// Sets the next-state function of a state.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a state of this system or the sorts differ.
    pub fn set_next(&mut self, var: VarId, next: ExprId) {
        assert_eq!(
            self.pool.var_sort(var),
            self.pool.sort(next),
            "next sort mismatch for {var}"
        );
        self.state_mut(var).next = Some(next);
    }

    /// Adds an environment constraint (single-bit).
    ///
    /// # Panics
    ///
    /// Panics if `expr` is not a single bit.
    pub fn add_constraint(&mut self, expr: ExprId) {
        assert!(self.pool.sort(expr).is_bool(), "constraint must be 1 bit");
        self.constraints.push(expr);
    }

    /// Adds a bad-state property (single-bit, 1 = property violated).
    ///
    /// # Panics
    ///
    /// Panics if `expr` is not a single bit.
    pub fn add_bad(&mut self, expr: ExprId, name: impl Into<String>) -> BadId {
        assert!(self.pool.sort(expr).is_bool(), "bad must be 1 bit");
        let id = BadId(self.bads.len() as u32);
        self.bads.push(Bad {
            expr,
            name: name.into(),
        });
        id
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[VarId] {
        &self.inputs
    }

    /// The state elements, in declaration order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The environment constraints.
    pub fn constraints(&self) -> &[ExprId] {
        &self.constraints
    }

    /// The bad-state properties.
    pub fn bads(&self) -> &[Bad] {
        &self.bads
    }

    /// The state with the given pool variable, if any.
    pub fn state_of_var(&self, var: VarId) -> Option<&State> {
        self.states.iter().find(|s| s.var == var)
    }

    /// Whether `var` is one of the primary inputs.
    pub fn is_input(&self, var: VarId) -> bool {
        self.inputs.contains(&var)
    }

    /// Single bad expression that is the disjunction of all bad
    /// properties (computed in the pool).
    pub fn any_bad(&mut self) -> ExprId {
        let bads: Vec<ExprId> = self.bads.iter().map(|b| b.expr).collect();
        self.pool.or_all(&bads)
    }

    /// Validates structural well-formedness; returns a list of problems
    /// (empty when the system is ready for verification).
    ///
    /// Checked: every state has a next function, init expressions are
    /// variable-free, and every bad/constraint is a single bit (the last
    /// is enforced on construction but re-checked for completeness).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for s in &self.states {
            let name = &self.pool.var_decl(s.var).name;
            if s.next.is_none() {
                problems.push(format!("state {name} has no next function"));
            }
            if let Some(init) = s.init {
                if !self.is_var_free(init) {
                    problems.push(format!("init of state {name} references variables"));
                }
            }
        }
        problems
    }

    fn is_var_free(&self, root: ExprId) -> bool {
        use crate::expr::Node;
        let mut stack = vec![root];
        let mut seen = std::collections::HashSet::new();
        while let Some(e) = stack.pop() {
            if !seen.insert(e) {
                continue;
            }
            match self.pool.node(e) {
                Node::Var(_) => return false,
                Node::Const { .. } | Node::ConstArray { .. } => {}
                Node::Un(_, a) => stack.push(*a),
                Node::Bin(_, a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Node::Ite(c, t, f) => {
                    stack.push(*c);
                    stack.push(*t);
                    stack.push(*f);
                }
                Node::Extract { arg, .. } | Node::Zext { arg, .. } | Node::Sext { arg, .. } => {
                    stack.push(*arg);
                }
                Node::Read { array, index } => {
                    stack.push(*array);
                    stack.push(*index);
                }
                Node::Write {
                    array,
                    index,
                    value,
                } => {
                    stack.push(*array);
                    stack.push(*index);
                    stack.push(*value);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> TransitionSystem {
        let mut ts = TransitionSystem::new("c");
        let s = ts.add_state("count", Sort::Bv(4));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(4, 1);
        let next = ts.pool_mut().add(sv, one);
        let zero = ts.pool_mut().constv(4, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        ts
    }

    #[test]
    fn build_and_validate() {
        let ts = counter();
        assert!(ts.validate().is_empty());
        assert_eq!(ts.states().len(), 1);
        assert_eq!(ts.name(), "c");
    }

    #[test]
    fn missing_next_reported() {
        let mut ts = TransitionSystem::new("t");
        ts.add_state("s", Sort::Bv(2));
        let problems = ts.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("no next function"));
    }

    #[test]
    fn init_with_vars_reported() {
        let mut ts = TransitionSystem::new("t");
        let i = ts.add_input("i", Sort::Bv(2));
        let s = ts.add_state("s", Sort::Bv(2));
        let iv = ts.pool_mut().var(i);
        ts.set_init(s, iv);
        ts.set_next(s, iv);
        let problems = ts.validate();
        assert!(problems.iter().any(|p| p.contains("references variables")));
    }

    #[test]
    fn any_bad_disjunction() {
        let mut ts = counter();
        let s = ts.states()[0].var;
        let sv = ts.pool_mut().var(s);
        let c3 = ts.pool_mut().constv(4, 3);
        let c5 = ts.pool_mut().constv(4, 5);
        let b1 = ts.pool_mut().eq(sv, c3);
        let b2 = ts.pool_mut().eq(sv, c5);
        ts.add_bad(b1, "is3");
        ts.add_bad(b2, "is5");
        let any = ts.any_bad();
        assert!(ts.pool().sort(any).is_bool());
        assert_eq!(ts.bads().len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a declared state")]
    fn set_next_on_input_panics() {
        let mut ts = TransitionSystem::new("t");
        let i = ts.add_input("i", Sort::Bv(2));
        let iv = ts.pool_mut().var(i);
        ts.set_next(i, iv);
    }
}
