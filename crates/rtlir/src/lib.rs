//! Word-level RTL intermediate representation.
//!
//! This crate is the shared substrate of the workspace: a hash-consed,
//! word-level expression language (bit-vectors up to 64 bits plus
//! single-dimensional arrays for memories), a BTOR-style
//! [`TransitionSystem`], a reference [`eval`](crate::eval) semantics and a
//! cycle-accurate [`Simulator`].
//!
//! Every other component — the Verilog synthesizer, the software-netlist
//! generator, the bit-blaster and all verification engines — is defined
//! (and property-tested) against the evaluator in this crate, which plays
//! the role of the golden semantics.
//!
//! # Example
//!
//! Build a 4-bit counter with a safety property `count != 15` (which is
//! violated after 15 steps) and simulate it:
//!
//! ```
//! use rtlir::{ExprPool, Sort, TransitionSystem, Simulator, Value};
//!
//! let mut ts = TransitionSystem::new("counter");
//! let count = ts.add_state("count", Sort::Bv(4));
//! let cv = ts.pool_mut().var(count);
//! let one = ts.pool_mut().constv(4, 1);
//! let next = ts.pool_mut().add(cv, one);
//! let zero = ts.pool_mut().constv(4, 0);
//! ts.set_init(count, zero);
//! ts.set_next(count, next);
//! let limit = ts.pool_mut().constv(4, 15);
//! let bad = ts.pool_mut().eq(cv, limit);
//! ts.add_bad(bad, "count reaches 15");
//!
//! let mut sim = Simulator::new(&ts);
//! for _ in 0..15 {
//!     assert!(sim.bad_states().iter().all(|b| !b));
//!     sim.step(&[]);
//! }
//! assert_eq!(sim.state_value(count), Value::bv(4, 15));
//! assert!(sim.bad_states()[0]);
//! ```

#![forbid(unsafe_code)]

pub mod eval;
pub mod expr;
pub mod pool;
pub mod printer;
pub mod sim;
pub mod sort;
pub mod ts;
pub mod unroll;
pub mod value;

pub use eval::{eval, EvalEnv};
pub use expr::{BinOp, ExprId, Node, UnOp, VarId};
pub use pool::ExprPool;
pub use sim::Simulator;
pub use sort::Sort;
pub use ts::{BadId, StateId, TransitionSystem};
pub use unroll::Unroller;
pub use value::{ArrayValue, Value};
