//! Abstract syntax tree for the supported Verilog subset.

/// Port direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// Net kind of a declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
}

/// A `[hi:lo]` range (both bounds are constant expressions).
#[derive(Clone, Debug, PartialEq)]
pub struct Range {
    /// High bound expression.
    pub hi: Expr,
    /// Low bound expression.
    pub lo: Expr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// `~`
    Not,
    /// `-`
    Neg,
    /// `!`
    LogicNot,
    /// `&`
    RedAnd,
    /// `|`
    RedOr,
    /// `^`
    RedXor,
    /// `~&`
    RedNand,
    /// `~|`
    RedNor,
    /// `~^` / `^~`
    RedXnor,
    /// unary `+` (no-op)
    Plus,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^` / `^~`
    Xnor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    Sshl,
    /// `>>>`
    Sshr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LogicAnd,
    /// `||`
    LogicOr,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Number literal.
    Number {
        /// Explicit size, if given.
        size: Option<u32>,
        /// Value (masked to size when given).
        value: u64,
    },
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Conditional `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, c}`.
    Concat(Vec<Expr>),
    /// Replication `{n{a, b}}`.
    Repl(Box<Expr>, Vec<Expr>),
    /// Bit-select or memory read `x[i]`.
    Index(String, Box<Expr>),
    /// Part-select `x[hi:lo]` (constant bounds).
    Part(String, Box<Expr>, Box<Expr>),
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Whole signal.
    Ident(String),
    /// Bit-select or memory element `x[i]`.
    Index(String, Expr),
    /// Part-select `x[hi:lo]` (constant bounds).
    Part(String, Expr, Expr),
    /// Concatenation `{a, b}` of lvalues.
    Concat(Vec<LValue>),
}

/// Statements inside processes.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// `if (c) s [else s]`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `case/casez (e) items endcase`; `wildcard` is true for `casez`.
    Case {
        /// Scrutinee.
        expr: Expr,
        /// `(labels, body)` arms.
        arms: Vec<(Vec<Expr>, Stmt)>,
        /// `default:` body.
        default: Option<Box<Stmt>>,
        /// Whether `?`/`z` bits in labels act as wildcards (`casez`).
        wildcard: bool,
    },
    /// Blocking assignment `lhs = rhs`.
    Blocking(LValue, Expr),
    /// Non-blocking assignment `lhs <= rhs`.
    NonBlocking(LValue, Expr),
    /// Empty statement `;`.
    Nop,
}

/// Sensitivity of an always block.
#[derive(Clone, Debug, PartialEq)]
pub enum Sensitivity {
    /// `@*`, `@(*)` or an explicit level-sensitive list.
    Comb,
    /// `@(posedge clk)` — single-clock synchronous logic.
    Posedge(String),
}

/// A module-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// Signal declaration(s).
    Decl {
        /// `wire` or `reg`.
        kind: NetKind,
        /// Optional `[hi:lo]` packed range.
        range: Option<Range>,
        /// Declared names with optional memory range and initializer.
        names: Vec<DeclName>,
    },
    /// `parameter` / `localparam`.
    Param {
        /// Parameter name.
        name: String,
        /// Default/assigned value.
        value: Expr,
    },
    /// `assign lhs = rhs;`
    ContAssign(LValue, Expr),
    /// `always @(...) body`
    Always(Sensitivity, Stmt),
    /// `initial body` (reset values only).
    Initial(Stmt),
    /// Module instantiation.
    Instance {
        /// Instantiated module name.
        module: String,
        /// Instance name.
        name: String,
        /// `#(...)` parameter overrides (named or positional).
        params: Vec<(Option<String>, Expr)>,
        /// Port connections (named or positional).
        conns: Vec<(Option<String>, Option<Expr>)>,
    },
    /// `assert property (expr);`
    AssertProperty {
        /// The asserted condition.
        cond: Expr,
        /// Optional label.
        label: Option<String>,
    },
    /// `assume property (expr);` — environment constraint.
    AssumeProperty {
        /// The assumed condition.
        cond: Expr,
    },
}

/// One declared name within a `Decl` item.
#[derive(Clone, Debug, PartialEq)]
pub struct DeclName {
    /// Signal name.
    pub name: String,
    /// `[lo:hi]` memory (unpacked) range, if any.
    pub memory: Option<Range>,
    /// Declaration initializer (`reg r = 0;`).
    pub init: Option<Expr>,
}

/// A port in the module header.
#[derive(Clone, Debug, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Packed range, if any.
    pub range: Option<Range>,
    /// Whether the header declared it `reg` (output regs).
    pub is_reg: bool,
}

/// A parsed module.
#[derive(Clone, Debug, PartialEq)]
pub struct SourceModule {
    /// Module name.
    pub name: String,
    /// Ports in header order.
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<Item>,
    /// 1-based line of the `module` keyword.
    pub line: u32,
}

impl Expr {
    /// Convenience constructor for an unsized number.
    pub fn num(value: u64) -> Expr {
        Expr::Number { size: None, value }
    }
}
