//! Synthesizable Verilog 2005 frontend.
//!
//! Implements the paper's front half of Figure 2: parsing Verilog RTL,
//! elaborating the module hierarchy (parameters, memories, port
//! connections), performing the §III-B *intra- and inter-modular
//! dependency analysis* that orders combinational logic, and
//! synthesizing a word-level [`rtlir::TransitionSystem`].
//!
//! ## Supported subset
//!
//! Modules with ports/parameters, `wire`/`reg` declarations (including
//! memories `reg [w-1:0] m [0:d-1]`), continuous `assign`,
//! `always @(posedge clk)` with synchronous reset, combinational
//! `always @*` / `always @(a or b)`, `if`/`case`/`casez`, blocking and
//! non-blocking assignment, full expression operators (reduction,
//! concatenation, replication, part-/bit-select, ternary), module
//! instantiation (named and positional), `initial` reset blocks and
//! declaration initializers, and SVA-style immediate safety properties
//! `assert property (expr);` / `assume property (expr);`.
//!
//! Deliberately *not* supported, mirroring the v2c tool's documented
//! restrictions: combinational loops, transparent latches, multiple
//! clocks, `inout` ports and delays. These are reported as
//! [`VerilogError`]s rather than silently mis-synthesized.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), vfront::VerilogError> {
//! let src = r#"
//! module top(input clk, input rst, output full);
//!   reg [1:0] count;
//!   initial count = 0;
//!   always @(posedge clk)
//!     if (rst) count <= 0;
//!     else if (count < 3) count <= count + 1;
//!   assign full = (count == 3);
//!   assert property (count <= 3);
//! endmodule
//! "#;
//! let ts = vfront::compile(src, "top")?;
//! assert_eq!(ts.states().len(), 1);
//! assert_eq!(ts.bads().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod elab;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod synth;

pub use ast::SourceModule;
pub use elab::{elaborate, Design};
pub use error::VerilogError;
pub use parser::parse;
pub use synth::synthesize;

use rtlir::TransitionSystem;

/// One-shot pipeline: parse, elaborate and synthesize a Verilog source
/// into a word-level transition system.
///
/// # Errors
///
/// Returns a [`VerilogError`] for syntax errors, unsupported
/// constructs (combinational loops, latches, multiple clocks),
/// width violations, or when `top` does not name a module.
pub fn compile(src: &str, top: &str) -> Result<TransitionSystem, VerilogError> {
    let modules = parse(src)?;
    let design = elaborate(&modules, top)?;
    synthesize(&design)
}
