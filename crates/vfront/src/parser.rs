//! Recursive-descent parser for the supported Verilog subset.

use crate::ast::*;
use crate::error::VerilogError;
use crate::lexer::{lex, Tok, Token};

/// Parses Verilog source text into a list of modules.
///
/// # Errors
///
/// Returns the first syntax error encountered, with its source line.
pub fn parse(src: &str) -> Result<Vec<SourceModule>, VerilogError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_eof() {
        modules.push(p.module()?);
    }
    Ok(modules)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }
    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }
    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }
    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, VerilogError> {
        Err(VerilogError::at(self.line(), msg))
    }
    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_sym(&mut self, s: &str) -> Result<(), VerilogError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            self.err(format!("expected '{s}', found '{}'", self.peek()))
        }
    }
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_kw(&mut self, kw: &str) -> Result<(), VerilogError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected '{kw}', found '{}'", self.peek()))
        }
    }
    fn ident(&mut self) -> Result<String, VerilogError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                if KEYWORDS.contains(&s.as_str()) {
                    self.err(format!("unexpected keyword '{s}'"))
                } else {
                    self.bump();
                    Ok(s)
                }
            }
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    // ------------------------------------------------------------------
    // Modules
    // ------------------------------------------------------------------

    fn module(&mut self) -> Result<SourceModule, VerilogError> {
        let line = self.line();
        self.expect_kw("module")?;
        let name = self.ident()?;
        let mut items: Vec<Item> = Vec::new();
        // Header parameters: #(parameter X = 1, ...)
        if self.eat_sym("#") {
            self.expect_sym("(")?;
            loop {
                self.eat_kw("parameter");
                let pname = self.ident()?;
                // Optional range on parameter: ignored for value params.
                self.expect_sym("=")?;
                let value = self.expr()?;
                items.push(Item::Param { name: pname, value });
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        let mut ports: Vec<Port> = Vec::new();
        if self.eat_sym("(") && !self.eat_sym(")") {
            {
                let mut last_dir: Option<Dir> = None;
                let mut last_range: Option<Range> = None;
                let mut last_reg = false;
                loop {
                    // ANSI port: dir [reg] [range] name; or bare name
                    // (non-ANSI, direction supplied in the body); or a
                    // continuation of the previous ANSI group.
                    let dir = if self.eat_kw("input") {
                        Some(Dir::Input)
                    } else if self.eat_kw("output") {
                        Some(Dir::Output)
                    } else if self.at_kw("inout") {
                        return self.err("inout ports are not supported");
                    } else {
                        None
                    };
                    if let Some(d) = dir {
                        last_dir = Some(d);
                        last_reg = self.eat_kw("reg");
                        last_range = if matches!(self.peek(), Tok::Sym("[")) {
                            Some(self.range()?)
                        } else {
                            None
                        };
                    }
                    let pname = self.ident()?;
                    ports.push(Port {
                        name: pname,
                        dir: last_dir.unwrap_or(Dir::Input),
                        range: if dir.is_some() || last_dir.is_some() {
                            last_range.clone()
                        } else {
                            None
                        },
                        is_reg: last_reg && last_dir == Some(Dir::Output),
                    });
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
        }
        self.expect_sym(";")?;
        while !self.eat_kw("endmodule") {
            if self.at_eof() {
                return self.err(format!("missing endmodule for '{name}'"));
            }
            self.item(&mut items, &mut ports)?;
        }
        Ok(SourceModule {
            name,
            ports,
            items,
            line,
        })
    }

    fn range(&mut self) -> Result<Range, VerilogError> {
        self.expect_sym("[")?;
        let hi = self.expr()?;
        self.expect_sym(":")?;
        let lo = self.expr()?;
        self.expect_sym("]")?;
        Ok(Range { hi, lo })
    }

    fn item(&mut self, items: &mut Vec<Item>, ports: &mut [Port]) -> Result<(), VerilogError> {
        if self.at_kw("input") || self.at_kw("output") {
            // Non-ANSI port direction declaration in the body.
            let dir = if self.eat_kw("input") {
                Dir::Input
            } else {
                self.expect_kw("output")?;
                Dir::Output
            };
            let is_reg = self.eat_kw("reg");
            let range = if matches!(self.peek(), Tok::Sym("[")) {
                Some(self.range()?)
            } else {
                None
            };
            loop {
                let name = self.ident()?;
                match ports.iter_mut().find(|p| p.name == name) {
                    Some(port) => {
                        port.dir = dir;
                        port.range = range.clone();
                        port.is_reg = is_reg && dir == Dir::Output;
                    }
                    None => {
                        return self.err(format!("'{name}' is not in the port list"));
                    }
                }
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(";")?;
            return Ok(());
        }
        if self.at_kw("wire") || self.at_kw("reg") {
            let kind = if self.eat_kw("wire") {
                NetKind::Wire
            } else {
                self.expect_kw("reg")?;
                NetKind::Reg
            };
            let range = if matches!(self.peek(), Tok::Sym("[")) {
                Some(self.range()?)
            } else {
                None
            };
            let mut names = Vec::new();
            loop {
                let name = self.ident()?;
                let memory = if matches!(self.peek(), Tok::Sym("[")) {
                    Some(self.range()?)
                } else {
                    None
                };
                let init = if self.eat_sym("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                names.push(DeclName { name, memory, init });
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(";")?;
            items.push(Item::Decl { kind, range, names });
            return Ok(());
        }
        if self.eat_kw("parameter") || self.eat_kw("localparam") {
            // Optional range, ignored.
            if matches!(self.peek(), Tok::Sym("[")) {
                let _ = self.range()?;
            }
            loop {
                let name = self.ident()?;
                self.expect_sym("=")?;
                let value = self.expr()?;
                items.push(Item::Param { name, value });
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(";")?;
            return Ok(());
        }
        if self.eat_kw("assign") {
            let lhs = self.lvalue()?;
            self.expect_sym("=")?;
            let rhs = self.expr()?;
            self.expect_sym(";")?;
            items.push(Item::ContAssign(lhs, rhs));
            return Ok(());
        }
        if self.eat_kw("always") {
            let sens = self.sensitivity()?;
            let body = self.stmt()?;
            items.push(Item::Always(sens, body));
            return Ok(());
        }
        if self.eat_kw("initial") {
            let body = self.stmt()?;
            items.push(Item::Initial(body));
            return Ok(());
        }
        if self.eat_kw("assert") {
            self.expect_kw("property")?;
            self.expect_sym("(")?;
            self.skip_property_clock()?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            items.push(Item::AssertProperty { cond, label: None });
            return Ok(());
        }
        if self.eat_kw("assume") {
            self.expect_kw("property")?;
            self.expect_sym("(")?;
            self.skip_property_clock()?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            items.push(Item::AssumeProperty { cond });
            return Ok(());
        }
        // Labelled assertion: `name : assert property (...)`.
        if matches!(self.peek(), Tok::Ident(_)) && matches!(self.peek2(), Tok::Sym(":")) {
            let label = self.ident()?;
            self.expect_sym(":")?;
            self.expect_kw("assert")?;
            self.expect_kw("property")?;
            self.expect_sym("(")?;
            self.skip_property_clock()?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            items.push(Item::AssertProperty {
                cond,
                label: Some(label),
            });
            return Ok(());
        }
        // Instance: module_name [#(params)] inst_name ( conns );
        if matches!(self.peek(), Tok::Ident(_)) {
            let module = self.ident()?;
            let mut params = Vec::new();
            if self.eat_sym("#") {
                self.expect_sym("(")?;
                if !self.eat_sym(")") {
                    loop {
                        if self.eat_sym(".") {
                            let pname = self.ident()?;
                            self.expect_sym("(")?;
                            let v = self.expr()?;
                            self.expect_sym(")")?;
                            params.push((Some(pname), v));
                        } else {
                            let v = self.expr()?;
                            params.push((None, v));
                        }
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(")")?;
                }
            }
            let name = self.ident()?;
            self.expect_sym("(")?;
            let mut conns = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    if self.eat_sym(".") {
                        let pname = self.ident()?;
                        self.expect_sym("(")?;
                        if self.eat_sym(")") {
                            conns.push((Some(pname), None));
                        } else {
                            let v = self.expr()?;
                            self.expect_sym(")")?;
                            conns.push((Some(pname), Some(v)));
                        }
                    } else {
                        let v = self.expr()?;
                        conns.push((None, Some(v)));
                    }
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            self.expect_sym(";")?;
            items.push(Item::Instance {
                module,
                name,
                params,
                conns,
            });
            return Ok(());
        }
        self.err(format!("unexpected token '{}' in module body", self.peek()))
    }

    /// Skips an optional `@(posedge clk)` clocking event inside an
    /// `assert property` (the property itself is immediate).
    fn skip_property_clock(&mut self) -> Result<(), VerilogError> {
        if self.eat_sym("@") {
            self.expect_sym("(")?;
            self.expect_kw("posedge")?;
            let _clk = self.ident()?;
            self.expect_sym(")")?;
        }
        Ok(())
    }

    fn sensitivity(&mut self) -> Result<Sensitivity, VerilogError> {
        self.expect_sym("@")?;
        if self.eat_sym("*") {
            return Ok(Sensitivity::Comb);
        }
        self.expect_sym("(")?;
        if self.eat_sym("*") {
            self.expect_sym(")")?;
            return Ok(Sensitivity::Comb);
        }
        if self.eat_kw("posedge") {
            let clk = self.ident()?;
            if self.eat_kw("or") || self.eat_sym(",") {
                return self.err(
                    "multiple edges in sensitivity list (async reset / multiple clocks) \
                     are not supported",
                );
            }
            self.expect_sym(")")?;
            return Ok(Sensitivity::Posedge(clk));
        }
        if self.at_kw("negedge") {
            return self.err("negedge clocks are not supported");
        }
        // Level-sensitive list: treated as combinational.
        loop {
            let _sig = self.ident()?;
            if !(self.eat_kw("or") || self.eat_sym(",")) {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Sensitivity::Comb)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, VerilogError> {
        if self.eat_kw("begin") {
            // Optional block label.
            if self.eat_sym(":") {
                let _ = self.ident()?;
            }
            let mut body = Vec::new();
            while !self.eat_kw("end") {
                if self.at_eof() {
                    return self.err("missing 'end'");
                }
                body.push(self.stmt()?);
            }
            return Ok(Stmt::Block(body));
        }
        if self.eat_kw("if") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.at_kw("case") || self.at_kw("casez") || self.at_kw("casex") {
            let wildcard = self.at_kw("casez") || self.at_kw("casex");
            self.bump();
            self.expect_sym("(")?;
            let expr = self.expr()?;
            self.expect_sym(")")?;
            let mut arms = Vec::new();
            let mut default = None;
            while !self.eat_kw("endcase") {
                if self.at_eof() {
                    return self.err("missing 'endcase'");
                }
                if self.eat_kw("default") {
                    self.eat_sym(":");
                    default = Some(Box::new(self.stmt()?));
                    continue;
                }
                let mut labels = vec![self.expr()?];
                while self.eat_sym(",") {
                    labels.push(self.expr()?);
                }
                self.expect_sym(":")?;
                let body = self.stmt()?;
                arms.push((labels, body));
            }
            return Ok(Stmt::Case {
                expr,
                arms,
                default,
                wildcard,
            });
        }
        if self.eat_sym(";") {
            return Ok(Stmt::Nop);
        }
        // Assignment.
        let lhs = self.lvalue()?;
        if self.eat_sym("=") {
            let rhs = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Blocking(lhs, rhs));
        }
        if self.eat_sym("<=") {
            let rhs = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::NonBlocking(lhs, rhs));
        }
        self.err("expected '=' or '<=' in assignment")
    }

    fn lvalue(&mut self) -> Result<LValue, VerilogError> {
        if self.eat_sym("{") {
            let mut parts = vec![self.lvalue()?];
            while self.eat_sym(",") {
                parts.push(self.lvalue()?);
            }
            self.expect_sym("}")?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.ident()?;
        if self.eat_sym("[") {
            let first = self.expr()?;
            if self.eat_sym(":") {
                let lo = self.expr()?;
                self.expect_sym("]")?;
                return Ok(LValue::Part(name, first, lo));
            }
            self.expect_sym("]")?;
            return Ok(LValue::Index(name, first));
        }
        Ok(LValue::Ident(name))
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, VerilogError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, VerilogError> {
        let cond = self.binary(0)?;
        if self.eat_sym("?") {
            let a = self.ternary()?;
            self.expect_sym(":")?;
            let b = self.ternary()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    fn binop_at(&self, level: usize) -> Option<BinaryOp> {
        let sym = match self.peek() {
            Tok::Sym(s) => *s,
            _ => return None,
        };
        let table: &[&[(&str, BinaryOp)]] = &[
            &[("||", BinaryOp::LogicOr)],
            &[("&&", BinaryOp::LogicAnd)],
            &[("|", BinaryOp::Or)],
            &[
                ("^", BinaryOp::Xor),
                ("~^", BinaryOp::Xnor),
                ("^~", BinaryOp::Xnor),
            ],
            &[("&", BinaryOp::And)],
            &[("==", BinaryOp::Eq), ("!=", BinaryOp::Ne)],
            &[
                ("<", BinaryOp::Lt),
                ("<=", BinaryOp::Le),
                (">", BinaryOp::Gt),
                (">=", BinaryOp::Ge),
            ],
            &[
                ("<<", BinaryOp::Shl),
                (">>", BinaryOp::Shr),
                ("<<<", BinaryOp::Sshl),
                (">>>", BinaryOp::Sshr),
            ],
            &[("+", BinaryOp::Add), ("-", BinaryOp::Sub)],
            &[
                ("*", BinaryOp::Mul),
                ("/", BinaryOp::Div),
                ("%", BinaryOp::Mod),
            ],
        ];
        table
            .get(level)?
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, op)| *op)
    }

    fn binary(&mut self, level: usize) -> Result<Expr, VerilogError> {
        if level >= 10 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, VerilogError> {
        let op = match self.peek() {
            Tok::Sym("~") => Some(UnaryOp::Not),
            Tok::Sym("-") => Some(UnaryOp::Neg),
            Tok::Sym("+") => Some(UnaryOp::Plus),
            Tok::Sym("!") => Some(UnaryOp::LogicNot),
            Tok::Sym("&") => Some(UnaryOp::RedAnd),
            Tok::Sym("|") => Some(UnaryOp::RedOr),
            Tok::Sym("^") => Some(UnaryOp::RedXor),
            Tok::Sym("~&") => Some(UnaryOp::RedNand),
            Tok::Sym("~|") => Some(UnaryOp::RedNor),
            Tok::Sym("~^") | Tok::Sym("^~") => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(arg)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, VerilogError> {
        match self.peek().clone() {
            Tok::Number { size, value, .. } => {
                self.bump();
                Ok(Expr::Number { size, value })
            }
            Tok::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym("{") => {
                self.bump();
                let first = self.expr()?;
                // Replication {n{...}}?
                if self.eat_sym("{") {
                    let mut parts = vec![self.expr()?];
                    while self.eat_sym(",") {
                        parts.push(self.expr()?);
                    }
                    self.expect_sym("}")?;
                    self.expect_sym("}")?;
                    return Ok(Expr::Repl(Box::new(first), parts));
                }
                let mut parts = vec![first];
                while self.eat_sym(",") {
                    parts.push(self.expr()?);
                }
                self.expect_sym("}")?;
                Ok(Expr::Concat(parts))
            }
            Tok::Ident(name) => {
                if KEYWORDS.contains(&name.as_str()) {
                    return self.err(format!("unexpected keyword '{name}' in expression"));
                }
                self.bump();
                if self.eat_sym("[") {
                    let first = self.expr()?;
                    if self.eat_sym(":") {
                        let lo = self.expr()?;
                        self.expect_sym("]")?;
                        return Ok(Expr::Part(name, Box::new(first), Box::new(lo)));
                    }
                    self.expect_sym("]")?;
                    return Ok(Expr::Index(name, Box::new(first)));
                }
                Ok(Expr::Ident(name))
            }
            other => self.err(format!("unexpected token '{other}' in expression")),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "parameter",
    "localparam",
    "assign",
    "always",
    "initial",
    "begin",
    "end",
    "if",
    "else",
    "case",
    "casez",
    "casex",
    "endcase",
    "default",
    "posedge",
    "negedge",
    "or",
    "assert",
    "assume",
    "property",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counter_module() {
        let src = r#"
        module counter #(parameter W = 4) (input clk, input rst, output wrap);
          reg [W-1:0] c;
          initial c = 0;
          always @(posedge clk) begin
            if (rst) c <= 0;
            else c <= c + 1;
          end
          assign wrap = (c == {W{1'b1}});
          assert property (c >= 0);
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        assert_eq!(mods.len(), 1);
        let m = &mods[0];
        assert_eq!(m.name, "counter");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[2].dir, Dir::Output);
        assert!(m
            .items
            .iter()
            .any(|i| matches!(i, Item::Param { name, .. } if name == "W")));
        assert!(m
            .items
            .iter()
            .any(|i| matches!(i, Item::Always(Sensitivity::Posedge(c), _) if c == "clk")));
        assert!(m
            .items
            .iter()
            .any(|i| matches!(i, Item::AssertProperty { .. })));
    }

    #[test]
    fn parses_instances_and_hierarchy() {
        let src = r#"
        module sub(input a, output b);
          assign b = ~a;
        endmodule
        module top(input x, output y);
          wire t;
          sub u1 (.a(x), .b(t));
          sub u2 (t, y);
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        assert_eq!(mods.len(), 2);
        let top = &mods[1];
        let insts: Vec<_> = top
            .items
            .iter()
            .filter(|i| matches!(i, Item::Instance { .. }))
            .collect();
        assert_eq!(insts.len(), 2);
    }

    #[test]
    fn expression_precedence() {
        let src = "module m(input a, input b, input c, output o); assign o = a | b & c; endmodule";
        let mods = parse(src).expect("parses");
        match &mods[0].items[0] {
            Item::ContAssign(_, Expr::Binary(BinaryOp::Or, _, rhs)) => {
                assert!(matches!(**rhs, Expr::Binary(BinaryOp::And, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn case_statement() {
        let src = r#"
        module m(input clk, input [1:0] s);
          reg [3:0] r;
          always @(posedge clk)
            case (s)
              2'd0: r <= 1;
              2'd1, 2'd2: r <= 2;
              default: r <= 0;
            endcase
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        let always = mods[0]
            .items
            .iter()
            .find_map(|i| match i {
                Item::Always(_, s) => Some(s),
                _ => None,
            })
            .expect("always");
        match always {
            Stmt::Case { arms, default, .. } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[1].0.len(), 2);
                assert!(default.is_some());
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn non_ansi_ports() {
        let src = r#"
        module m(a, b);
          input [3:0] a;
          output b;
          assign b = &a;
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        assert_eq!(mods[0].ports[0].dir, Dir::Input);
        assert!(mods[0].ports[0].range.is_some());
        assert_eq!(mods[0].ports[1].dir, Dir::Output);
    }

    #[test]
    fn concat_replication_selects() {
        let src = r#"
        module m(input [7:0] x, output [7:0] y, output [15:0] z);
          assign y = {x[3:0], x[7:4]};
          assign z = {2{x}};
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        assert_eq!(mods[0].items.len(), 2);
    }

    #[test]
    fn rejects_unsupported() {
        assert!(parse("module m(inout a); endmodule").is_err());
        assert!(parse(
            "module m(input clk, input r); reg q; always @(posedge clk or posedge r) q <= 1; endmodule"
        )
        .is_err());
        assert!(parse("module m(input c); reg q; always @(negedge c) q <= 1; endmodule").is_err());
    }

    #[test]
    fn sva_with_clocking_event() {
        let src = r#"
        module m(input clk, input a);
          safe1: assert property (@(posedge clk) a == a);
          assume property (a == 1'b0);
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        assert!(mods[0]
            .items
            .iter()
            .any(|i| matches!(i, Item::AssertProperty { label: Some(l), .. } if l == "safe1")));
        assert!(mods[0]
            .items
            .iter()
            .any(|i| matches!(i, Item::AssumeProperty { .. })));
    }
}
