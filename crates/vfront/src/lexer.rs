//! Verilog lexer.

use crate::error::VerilogError;
use std::fmt;

/// A lexical token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// A number literal: optional size, base and value.
    Number {
        /// Explicit size in bits (`8'hFF` → `Some(8)`).
        size: Option<u32>,
        /// The value, masked to 64 bits.
        value: u64,
        /// Whether a base was given (`'b`, `'h`, `'d`, `'o`).
        based: bool,
    },
    /// Punctuation / operator.
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Number { value, .. } => write!(f, "{value}"),
            Tok::Sym(s) => write!(f, "{s}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// Multi-character operators, longest first (order matters).
const SYMBOLS: &[&str] = &[
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "~&", "~|", "~^",
    "^~", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "?", ":", ";", ",", ".",
    "(", ")", "[", "]", "{", "}", "@", "#",
];

/// Tokenizes Verilog source text.
///
/// # Errors
///
/// Returns an error for malformed number literals or characters
/// outside the supported subset.
pub fn lex(src: &str) -> Result<Vec<Token>, VerilogError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(VerilogError::at(line, "unterminated block comment"));
                }
                i += 2;
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '\\' {
            let start = if c == '\\' { i + 1 } else { i };
            let mut j = start;
            while j < bytes.len() {
                let cj = bytes[j] as char;
                if cj.is_ascii_alphanumeric() || cj == '_' || cj == '$' {
                    j += 1;
                } else {
                    break;
                }
            }
            out.push(Token {
                kind: Tok::Ident(src[start..j].to_string()),
                line,
            });
            i = j;
            continue;
        }
        // Numbers: plain decimal, or [size]'[base]digits.
        if c.is_ascii_digit() || c == '\'' {
            let (tok, len) = lex_number(&src[i..], line)?;
            out.push(Token { kind: tok, line });
            i += len;
            continue;
        }
        // Symbols.
        let rest = &src[i..];
        let mut matched = false;
        for &s in SYMBOLS {
            if rest.starts_with(s) {
                out.push(Token {
                    kind: Tok::Sym(s),
                    line,
                });
                i += s.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(VerilogError::at(
                line,
                format!("unexpected character '{c}'"),
            ));
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

fn lex_number(s: &str, line: u32) -> Result<(Tok, usize), VerilogError> {
    let bytes = s.as_bytes();
    let mut i = 0;
    // Optional size (decimal digits, underscores allowed).
    let mut size_digits = String::new();
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        if bytes[i] != b'_' {
            size_digits.push(bytes[i] as char);
        }
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        // Based literal.
        i += 1;
        if i >= bytes.len() {
            return Err(VerilogError::at(line, "truncated based literal"));
        }
        let mut signed = false;
        if bytes[i] == b's' || bytes[i] == b'S' {
            signed = true;
            i += 1;
        }
        let _ = signed;
        let base = bytes[i] as char;
        i += 1;
        let radix = match base {
            'b' | 'B' => 2,
            'o' | 'O' => 8,
            'd' | 'D' => 10,
            'h' | 'H' => 16,
            other => {
                return Err(VerilogError::at(
                    line,
                    format!("unknown number base '{other}'"),
                ))
            }
        };
        let mut value: u64 = 0;
        let mut ndigits = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c == '_' {
                i += 1;
                continue;
            }
            let d = match c.to_digit(radix) {
                Some(d) => d as u64,
                None => {
                    // x/z digits are not supported in the synthesizable
                    // subset (two-valued semantics).
                    if c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?' {
                        return Err(VerilogError::at(
                            line,
                            "x/z digits are not supported (two-valued subset)",
                        ));
                    }
                    break;
                }
            };
            value = value.wrapping_mul(radix as u64).wrapping_add(d);
            ndigits += 1;
            i += 1;
        }
        if ndigits == 0 {
            return Err(VerilogError::at(line, "based literal has no digits"));
        }
        let size = if size_digits.is_empty() {
            None
        } else {
            Some(
                size_digits
                    .parse::<u32>()
                    .map_err(|_| VerilogError::at(line, "bad literal size"))?,
            )
        };
        if let Some(sz) = size {
            if sz == 0 || sz > 64 {
                return Err(VerilogError::at(line, "literal size out of range 1..=64"));
            }
            value &= rtlir::value::mask(sz);
        }
        Ok((
            Tok::Number {
                size,
                value,
                based: true,
            },
            i,
        ))
    } else {
        // Plain decimal.
        if size_digits.is_empty() {
            return Err(VerilogError::at(line, "malformed number"));
        }
        let value = size_digits
            .parse::<u64>()
            .map_err(|_| VerilogError::at(line, "decimal literal too large"))?;
        Ok((
            Tok::Number {
                size: None,
                value,
                based: false,
            },
            i,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_and_keywords() {
        let ks = kinds("module foo_bar \\escaped! endmodule");
        assert_eq!(ks[0], Tok::Ident("module".into()));
        assert_eq!(ks[1], Tok::Ident("foo_bar".into()));
        assert_eq!(ks[2], Tok::Ident("escaped".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42")[0],
            Tok::Number {
                size: None,
                value: 42,
                based: false
            }
        );
        assert_eq!(
            kinds("4'b1010")[0],
            Tok::Number {
                size: Some(4),
                value: 10,
                based: true
            }
        );
        assert_eq!(
            kinds("8'hFF")[0],
            Tok::Number {
                size: Some(8),
                value: 255,
                based: true
            }
        );
        assert_eq!(
            kinds("16'd1_000")[0],
            Tok::Number {
                size: Some(16),
                value: 1000,
                based: true
            }
        );
        assert_eq!(
            kinds("'h1F")[0],
            Tok::Number {
                size: None,
                value: 31,
                based: true
            }
        );
        // Truncation to size.
        assert_eq!(
            kinds("4'hFF")[0],
            Tok::Number {
                size: Some(4),
                value: 15,
                based: true
            }
        );
    }

    #[test]
    fn operators_longest_match() {
        let ks = kinds("a <= b <<< 2 >= c != d");
        assert_eq!(ks[1], Tok::Sym("<="));
        assert_eq!(ks[3], Tok::Sym("<<<"));
        assert_eq!(ks[5], Tok::Sym(">="));
        assert_eq!(ks[7], Tok::Sym("!="));
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // comment\nb /* multi\nline */ c").expect("lexes");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn rejects_x_digits() {
        assert!(lex("4'bxx10").is_err());
        assert!(lex("4'bzz10").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b\"").is_err() || lex("\"str\"").is_err());
    }
}
