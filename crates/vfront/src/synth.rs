//! Synthesis: flattening, dependency analysis and word-level netlist
//! construction.
//!
//! This implements the paper's §III-B analysis: combinational blocks
//! (continuous assignments and `always @*` processes) are ordered by
//! their *intra- and inter-modular* data dependencies and symbolically
//! executed into word-level expressions; clocked blocks get two-phase
//! (read-then-commit) semantics matching non-blocking assignment.
//! Combinational cycles and transparent latches are rejected, exactly
//! the restrictions the paper states for v2c.

use crate::ast::{BinaryOp, Dir, Expr, LValue, NetKind, Stmt, UnaryOp};
use crate::elab::{ceil_log2, const_eval, Design, ElabModule};
use crate::error::VerilogError;
use rtlir::{ExprId, Sort, TransitionSystem, VarId};
use std::collections::{HashMap, HashSet};

/// Synthesizes an elaborated design into a word-level transition
/// system (inputs = top-level input ports minus the clock; states =
/// clocked registers and memories; bads = negated assertions).
///
/// # Errors
///
/// Reports combinational loops, transparent latches, multiple clocks,
/// multiple drivers, unknown signals and width violations.
pub fn synthesize(design: &Design) -> Result<TransitionSystem, VerilogError> {
    let flat = flatten(design)?;
    let mut s = Synthesizer {
        flat,
        ts: TransitionSystem::new(design.modules[design.top].name.clone()),
        vars: HashMap::new(),
        sig_expr: HashMap::new(),
    };
    s.run()?;
    Ok(s.ts)
}

// ----------------------------------------------------------------------
// Flattening
// ----------------------------------------------------------------------

#[derive(Clone, Debug)]
struct FlatSignal {
    width: u32,
    lsb: u32,
    kind: NetKind,
    memory: Option<(u64, u32)>,
    init: Option<u64>,
    top_input: bool,
}

#[derive(Clone, Debug)]
enum Unit {
    Assign(LValue, Expr),
    Comb(Stmt),
}

#[derive(Clone, Debug, Default)]
struct Flat {
    signals: Vec<(String, FlatSignal)>,
    index: HashMap<String, usize>,
    units: Vec<Unit>,
    clocked: Vec<(String, Stmt)>,
    initials: Vec<Stmt>,
    asserts: Vec<(String, Expr)>,
    assumes: Vec<Expr>,
}

impl Flat {
    fn sig(&self, name: &str) -> Option<&FlatSignal> {
        self.index.get(name).map(|&i| &self.signals[i].1)
    }
}

fn flat_name(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

fn prefix_expr(prefix: &str, e: &Expr) -> Expr {
    match e {
        Expr::Ident(n) => Expr::Ident(flat_name(prefix, n)),
        Expr::Number { .. } => e.clone(),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(prefix_expr(prefix, a))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(prefix_expr(prefix, a)),
            Box::new(prefix_expr(prefix, b)),
        ),
        Expr::Ternary(c, a, b) => Expr::Ternary(
            Box::new(prefix_expr(prefix, c)),
            Box::new(prefix_expr(prefix, a)),
            Box::new(prefix_expr(prefix, b)),
        ),
        Expr::Concat(p) => Expr::Concat(p.iter().map(|x| prefix_expr(prefix, x)).collect()),
        Expr::Repl(n, p) => Expr::Repl(
            Box::new(prefix_expr(prefix, n)),
            p.iter().map(|x| prefix_expr(prefix, x)).collect(),
        ),
        Expr::Index(n, i) => Expr::Index(flat_name(prefix, n), Box::new(prefix_expr(prefix, i))),
        Expr::Part(n, hi, lo) => Expr::Part(
            flat_name(prefix, n),
            Box::new(prefix_expr(prefix, hi)),
            Box::new(prefix_expr(prefix, lo)),
        ),
    }
}

fn prefix_lvalue(prefix: &str, lv: &LValue) -> LValue {
    match lv {
        LValue::Ident(n) => LValue::Ident(flat_name(prefix, n)),
        LValue::Index(n, i) => LValue::Index(flat_name(prefix, n), prefix_expr(prefix, i)),
        LValue::Part(n, hi, lo) => LValue::Part(
            flat_name(prefix, n),
            prefix_expr(prefix, hi),
            prefix_expr(prefix, lo),
        ),
        LValue::Concat(p) => LValue::Concat(p.iter().map(|x| prefix_lvalue(prefix, x)).collect()),
    }
}

fn prefix_stmt(prefix: &str, s: &Stmt) -> Stmt {
    match s {
        Stmt::Block(b) => Stmt::Block(b.iter().map(|x| prefix_stmt(prefix, x)).collect()),
        Stmt::If(c, t, e) => Stmt::If(
            prefix_expr(prefix, c),
            Box::new(prefix_stmt(prefix, t)),
            e.as_ref().map(|x| Box::new(prefix_stmt(prefix, x))),
        ),
        Stmt::Case {
            expr,
            arms,
            default,
            wildcard,
        } => Stmt::Case {
            expr: prefix_expr(prefix, expr),
            arms: arms
                .iter()
                .map(|(ls, b)| {
                    (
                        ls.iter().map(|l| prefix_expr(prefix, l)).collect(),
                        prefix_stmt(prefix, b),
                    )
                })
                .collect(),
            default: default.as_ref().map(|d| Box::new(prefix_stmt(prefix, d))),
            wildcard: *wildcard,
        },
        Stmt::Blocking(lv, e) => Stmt::Blocking(prefix_lvalue(prefix, lv), prefix_expr(prefix, e)),
        Stmt::NonBlocking(lv, e) => {
            Stmt::NonBlocking(prefix_lvalue(prefix, lv), prefix_expr(prefix, e))
        }
        Stmt::Nop => Stmt::Nop,
    }
}

fn flatten(design: &Design) -> Result<Flat, VerilogError> {
    let mut flat = Flat::default();
    flatten_module(design, design.top, "", &mut flat)?;
    Ok(flat)
}

fn flatten_module(
    design: &Design,
    idx: usize,
    prefix: &str,
    flat: &mut Flat,
) -> Result<(), VerilogError> {
    let m: &ElabModule = &design.modules[idx];
    for sig in &m.signals {
        let name = flat_name(prefix, &sig.name);
        if flat.index.contains_key(&name) {
            return Err(VerilogError::general(format!(
                "duplicate flat signal '{name}'"
            )));
        }
        flat.index.insert(name.clone(), flat.signals.len());
        flat.signals.push((
            name,
            FlatSignal {
                width: sig.width,
                lsb: sig.lsb,
                kind: sig.kind,
                memory: sig.memory,
                init: sig.init,
                top_input: prefix.is_empty() && sig.port == Some(Dir::Input),
            },
        ));
    }
    for (lhs, rhs) in &m.assigns {
        flat.units.push(Unit::Assign(
            prefix_lvalue(prefix, lhs),
            prefix_expr(prefix, rhs),
        ));
    }
    for (clock, body) in &m.processes {
        match clock {
            None => flat.units.push(Unit::Comb(prefix_stmt(prefix, body))),
            Some(c) => flat
                .clocked
                .push((flat_name(prefix, c), prefix_stmt(prefix, body))),
        }
    }
    for ini in &m.initials {
        flat.initials.push(prefix_stmt(prefix, ini));
    }
    for (label, cond) in &m.asserts {
        let lbl = if prefix.is_empty() {
            label.clone()
        } else {
            format!("{prefix}.{label}")
        };
        flat.asserts.push((lbl, prefix_expr(prefix, cond)));
    }
    for a in &m.assumes {
        flat.assumes.push(prefix_expr(prefix, a));
    }
    for inst in &m.instances {
        let child_prefix = flat_name(prefix, &inst.name);
        flatten_module(design, inst.module, &child_prefix, flat)?;
        let child = &design.modules[inst.module];
        for (port_idx, conn) in &inst.conns {
            let port = &child.signals[*port_idx];
            let port_flat = flat_name(&child_prefix, &port.name);
            let conn_flat = prefix_expr(prefix, conn);
            match port.port {
                Some(Dir::Input) => {
                    flat.units
                        .push(Unit::Assign(LValue::Ident(port_flat), conn_flat));
                }
                Some(Dir::Output) => {
                    let lhs = expr_as_lvalue(&conn_flat).ok_or_else(|| {
                        VerilogError::general(format!(
                            "output port '{}' of instance '{child_prefix}' must connect \
                             to a signal",
                            port.name
                        ))
                    })?;
                    flat.units.push(Unit::Assign(lhs, Expr::Ident(port_flat)));
                }
                None => unreachable!("connection to non-port"),
            }
        }
    }
    Ok(())
}

fn expr_as_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
        Expr::Index(n, i) => Some(LValue::Index(n.clone(), (**i).clone())),
        Expr::Part(n, hi, lo) => Some(LValue::Part(n.clone(), (**hi).clone(), (**lo).clone())),
        Expr::Concat(parts) => {
            let lvs: Option<Vec<LValue>> = parts.iter().map(expr_as_lvalue).collect();
            lvs.map(LValue::Concat)
        }
        _ => None,
    }
}

// ----------------------------------------------------------------------
// Read/write analysis
// ----------------------------------------------------------------------

/// Collects the identifiers read by an expression, excluding those in
/// `assigned` (used for dependency analysis; also reused by the v2c
/// code generator's per-module scheduling).
pub fn expr_reads(e: &Expr, assigned: &HashSet<String>, out: &mut HashSet<String>) {
    match e {
        Expr::Ident(n) => {
            if !assigned.contains(n) {
                out.insert(n.clone());
            }
        }
        Expr::Number { .. } => {}
        Expr::Unary(_, a) => expr_reads(a, assigned, out),
        Expr::Binary(_, a, b) => {
            expr_reads(a, assigned, out);
            expr_reads(b, assigned, out);
        }
        Expr::Ternary(c, a, b) => {
            expr_reads(c, assigned, out);
            expr_reads(a, assigned, out);
            expr_reads(b, assigned, out);
        }
        Expr::Concat(p) => p.iter().for_each(|x| expr_reads(x, assigned, out)),
        Expr::Repl(n, p) => {
            expr_reads(n, assigned, out);
            p.iter().for_each(|x| expr_reads(x, assigned, out));
        }
        Expr::Index(n, i) => {
            if !assigned.contains(n) {
                out.insert(n.clone());
            }
            expr_reads(i, assigned, out);
        }
        Expr::Part(n, hi, lo) => {
            if !assigned.contains(n) {
                out.insert(n.clone());
            }
            expr_reads(hi, assigned, out);
            expr_reads(lo, assigned, out);
        }
    }
}

/// Collects the signals assigned by an lvalue.
pub fn lvalue_targets(lv: &LValue, out: &mut Vec<String>) {
    match lv {
        LValue::Ident(n) | LValue::Index(n, _) | LValue::Part(n, _, _) => out.push(n.clone()),
        LValue::Concat(p) => p.iter().for_each(|x| lvalue_targets(x, out)),
    }
}

/// Reads of a statement, excluding signals already (blocking-)assigned
/// at the point of the read; conservative across branches.
pub fn stmt_reads(s: &Stmt, assigned: &mut HashSet<String>, out: &mut HashSet<String>) {
    match s {
        Stmt::Block(b) => b.iter().for_each(|x| stmt_reads(x, assigned, out)),
        Stmt::If(c, t, e) => {
            expr_reads(c, assigned, out);
            let mut at = assigned.clone();
            stmt_reads(t, &mut at, out);
            let mut ae = assigned.clone();
            if let Some(e) = e {
                stmt_reads(e, &mut ae, out);
            }
            // Only variables assigned on *both* paths count as locally
            // defined afterwards.
            for k in at.intersection(&ae) {
                assigned.insert(k.clone());
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            expr_reads(expr, assigned, out);
            let mut common: Option<HashSet<String>> = None;
            for (labels, body) in arms {
                labels.iter().for_each(|l| expr_reads(l, assigned, out));
                let mut ab = assigned.clone();
                stmt_reads(body, &mut ab, out);
                common = Some(match common {
                    None => ab,
                    Some(c) => c.intersection(&ab).cloned().collect(),
                });
            }
            if let Some(d) = default {
                let mut ab = assigned.clone();
                stmt_reads(d, &mut ab, out);
                common = Some(match common {
                    None => ab,
                    Some(c) => c.intersection(&ab).cloned().collect(),
                });
                // Only with a default can the case cover all paths.
                if let Some(c) = common {
                    for k in c {
                        assigned.insert(k);
                    }
                }
            }
        }
        Stmt::Blocking(lv, e) => {
            expr_reads(e, assigned, out);
            // Index/part writes also *read* the index expressions.
            if let LValue::Index(_, i) = lv {
                expr_reads(i, assigned, out);
            }
            // Read-modify-write of bit/part selects reads the old value.
            match lv {
                LValue::Index(n, _) | LValue::Part(n, _, _) if !assigned.contains(n) => {
                    out.insert(n.clone());
                }
                _ => {}
            }
            let mut ts = Vec::new();
            lvalue_targets(lv, &mut ts);
            // Only whole-signal assignments fully define the signal.
            if let LValue::Ident(n) = lv {
                let _ = n;
                for t in ts {
                    assigned.insert(t);
                }
            }
        }
        Stmt::NonBlocking(lv, e) => {
            expr_reads(e, assigned, out);
            if let LValue::Index(_, i) = lv {
                expr_reads(i, assigned, out);
            }
            match lv {
                LValue::Index(n, _) | LValue::Part(n, _, _) if !assigned.contains(n) => {
                    out.insert(n.clone());
                }
                _ => {}
            }
        }
        Stmt::Nop => {}
    }
}

/// Collects the signals assigned anywhere in a statement.
pub fn stmt_targets(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Block(b) => b.iter().for_each(|x| stmt_targets(x, out)),
        Stmt::If(_, t, e) => {
            stmt_targets(t, out);
            if let Some(e) = e {
                stmt_targets(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for (_, b) in arms {
                stmt_targets(b, out);
            }
            if let Some(d) = default {
                stmt_targets(d, out);
            }
        }
        Stmt::Blocking(lv, _) | Stmt::NonBlocking(lv, _) => lvalue_targets(lv, out),
        Stmt::Nop => {}
    }
}

// ----------------------------------------------------------------------
// Synthesis proper
// ----------------------------------------------------------------------

struct Synthesizer {
    flat: Flat,
    ts: TransitionSystem,
    vars: HashMap<String, VarId>,
    sig_expr: HashMap<String, ExprId>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Input,
    State,
    Comb(usize), // defining unit
    Clock,
    FreeWire, // undriven: becomes a nondeterministic input
}

impl Synthesizer {
    fn err(msg: impl Into<String>) -> VerilogError {
        VerilogError::general(msg)
    }

    fn run(&mut self) -> Result<(), VerilogError> {
        // ---- classify drivers ----
        let mut role: HashMap<String, Role> = HashMap::new();
        // Clock alias resolution: direct ident-to-ident assigns.
        let mut direct: HashMap<String, String> = HashMap::new();
        for u in &self.flat.units {
            if let Unit::Assign(LValue::Ident(l), Expr::Ident(r)) = u {
                direct.insert(l.clone(), r.clone());
            }
        }
        let resolve = |mut n: String| {
            let mut hops = 0;
            while let Some(next) = direct.get(&n) {
                n = next.clone();
                hops += 1;
                if hops > 1000 {
                    break;
                }
            }
            n
        };
        let mut clock_root: Option<String> = None;
        let mut clock_aliases: HashSet<String> = HashSet::new();
        for (c, _) in &self.flat.clocked {
            let root = resolve(c.clone());
            match &clock_root {
                None => clock_root = Some(root.clone()),
                Some(r) if *r == root => {}
                Some(r) => {
                    return Err(Self::err(format!(
                        "multiple clocks are not supported ('{r}' vs '{root}')"
                    )))
                }
            }
        }
        if let Some(root) = &clock_root {
            let is_top_input = self
                .flat
                .sig(root)
                .is_some_and(|s| s.top_input && s.width == 1);
            if !is_top_input {
                return Err(Self::err(format!(
                    "clock '{root}' must be a 1-bit top-level input"
                )));
            }
            clock_aliases.insert(root.clone());
            for (name, _) in &self.flat.signals {
                if resolve(name.clone()) == *root && self.flat.sig(name).map(|s| s.width) == Some(1)
                {
                    clock_aliases.insert(name.clone());
                }
            }
            for a in &clock_aliases {
                role.insert(a.clone(), Role::Clock);
            }
        }

        // Drivers from units.
        for (ui, u) in self.flat.units.iter().enumerate() {
            let mut targets = Vec::new();
            match u {
                Unit::Assign(lv, _) => {
                    match lv {
                        LValue::Ident(_) | LValue::Concat(_) => {}
                        _ => {
                            return Err(Self::err(
                                "continuous assignment to bit/part selects is not supported",
                            ))
                        }
                    }
                    lvalue_targets(lv, &mut targets);
                }
                Unit::Comb(s) => stmt_targets(s, &mut targets),
            }
            for t in targets {
                if clock_aliases.contains(&t) {
                    continue; // clock wiring, excluded from logic
                }
                if self.flat.sig(&t).is_none() {
                    return Err(Self::err(format!("assignment to unknown signal '{t}'")));
                }
                match role.get(&t) {
                    None => {
                        role.insert(t, Role::Comb(ui));
                    }
                    Some(Role::Comb(prev)) if *prev == ui => {}
                    Some(_) => return Err(Self::err(format!("signal '{t}' has multiple drivers"))),
                }
            }
        }
        // Drivers from clocked processes.
        for (_, body) in &self.flat.clocked {
            let mut targets = Vec::new();
            stmt_targets(body, &mut targets);
            for t in targets {
                let sig = self
                    .flat
                    .sig(&t)
                    .ok_or_else(|| Self::err(format!("assignment to unknown signal '{t}'")))?;
                if sig.kind != NetKind::Reg {
                    return Err(Self::err(format!(
                        "clocked assignment to wire '{t}' (declare it reg)"
                    )));
                }
                match role.get(&t) {
                    None | Some(Role::State) => {
                        role.insert(t, Role::State);
                    }
                    Some(_) => return Err(Self::err(format!("signal '{t}' has multiple drivers"))),
                }
            }
        }
        // Everything else: inputs, frozen regs, free wires.
        for (name, sig) in &self.flat.signals {
            if role.contains_key(name) {
                continue;
            }
            let r = if sig.top_input {
                Role::Input
            } else if sig.kind == NetKind::Reg {
                Role::State // frozen register
            } else {
                Role::FreeWire
            };
            role.insert(name.clone(), r);
        }
        // A state must not also be a top input.
        for (name, sig) in &self.flat.signals {
            if sig.top_input && matches!(role.get(name), Some(Role::Comb(_) | Role::State)) {
                return Err(Self::err(format!("top-level input '{name}' is driven")));
            }
        }

        // ---- create TS variables ----
        let sorted_names: Vec<String> = self.flat.signals.iter().map(|(n, _)| n.clone()).collect();
        for name in &sorted_names {
            let sig = self.flat.sig(name).expect("exists").clone();
            let sort = match sig.memory {
                Some((_, addr_w)) => Sort::array(addr_w, sig.width),
                None => Sort::Bv(sig.width),
            };
            match role[name] {
                Role::Input | Role::FreeWire => {
                    let v = self.ts.add_input(name.clone(), sort);
                    self.vars.insert(name.clone(), v);
                    let e = self.ts.pool_mut().var(v);
                    self.sig_expr.insert(name.clone(), e);
                }
                Role::State => {
                    let v = self.ts.add_state(name.clone(), sort);
                    self.vars.insert(name.clone(), v);
                    let e = self.ts.pool_mut().var(v);
                    self.sig_expr.insert(name.clone(), e);
                    if let Some(init) = sig.init {
                        let ie = self.ts.pool_mut().constv(sig.width, init);
                        self.ts.set_init(v, ie);
                    }
                }
                Role::Comb(_) | Role::Clock => {}
            }
        }

        // ---- schedule combinational units (the §III-B analysis) ----
        let unit_defs: Vec<Vec<String>> = self
            .flat
            .units
            .iter()
            .map(|u| {
                let mut t = Vec::new();
                match u {
                    Unit::Assign(lv, _) => lvalue_targets(lv, &mut t),
                    Unit::Comb(s) => stmt_targets(s, &mut t),
                }
                t.retain(|x| !clock_aliases.contains(x));
                t
            })
            .collect();
        let def_unit: HashMap<String, usize> = unit_defs
            .iter()
            .enumerate()
            .flat_map(|(i, ds)| ds.iter().map(move |d| (d.clone(), i)))
            .collect();
        let unit_reads: Vec<HashSet<String>> = self
            .flat
            .units
            .iter()
            .map(|u| {
                let mut reads = HashSet::new();
                match u {
                    Unit::Assign(lv, rhs) => {
                        expr_reads(rhs, &HashSet::new(), &mut reads);
                        if let LValue::Index(_, i) = lv {
                            expr_reads(i, &HashSet::new(), &mut reads);
                        }
                    }
                    Unit::Comb(s) => {
                        let mut assigned = HashSet::new();
                        stmt_reads(s, &mut assigned, &mut reads);
                    }
                }
                reads
            })
            .collect();
        // Kahn topological sort over units.
        let n_units = self.flat.units.len();
        let mut indeg = vec![0usize; n_units];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_units];
        for (ui, reads) in unit_reads.iter().enumerate() {
            for r in reads {
                if let Some(&def) = def_unit.get(r) {
                    if def != ui {
                        succs[def].push(ui);
                        indeg[ui] += 1;
                    } else {
                        // A unit reading its own output combinationally
                        // is a loop (self-latch).
                        return Err(Self::err(format!(
                            "combinational loop through signal '{r}' (unsupported, as in v2c)"
                        )));
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..n_units).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n_units);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n_units {
            return Err(Self::err(
                "combinational loop detected (unsupported, as in v2c)",
            ));
        }

        // ---- build combinational expressions in order ----
        for ui in order {
            let unit = self.flat.units[ui].clone();
            match unit {
                Unit::Assign(lv, rhs) => {
                    // Skip pure clock wiring.
                    let mut ts_targets = Vec::new();
                    lvalue_targets(&lv, &mut ts_targets);
                    if ts_targets.iter().all(|t| clock_aliases.contains(t)) {
                        continue;
                    }
                    self.install_assign(&lv, &rhs)?;
                }
                Unit::Comb(body) => {
                    let env = self.exec_comb(&body)?;
                    for (name, e) in env {
                        self.sig_expr.insert(name, e);
                    }
                }
            }
        }

        // ---- clocked processes ----
        let clocked = self.flat.clocked.clone();
        let mut next_map: HashMap<String, ExprId> = HashMap::new();
        for (_clk, body) in &clocked {
            let updates = self.exec_clocked(body)?;
            for (name, e) in updates {
                if next_map.insert(name.clone(), e).is_some() {
                    return Err(Self::err(format!(
                        "register '{name}' driven by multiple clocked processes"
                    )));
                }
            }
        }
        // Install next functions; frozen registers keep their value.
        let state_names: Vec<String> = self
            .flat
            .signals
            .iter()
            .filter(|(n, _)| matches!(role.get(n.as_str()), Some(Role::State)))
            .map(|(n, _)| n.clone())
            .collect();
        for name in &state_names {
            let v = self.vars[name];
            let next = match next_map.get(name) {
                Some(&e) => e,
                None => self.sig_expr[name],
            };
            self.ts.set_next(v, next);
        }

        // ---- initial blocks ----
        let initials = self.flat.initials.clone();
        let mut init_scalars: HashMap<String, u64> = HashMap::new();
        let mut init_mems: HashMap<String, HashMap<u64, u64>> = HashMap::new();
        for ini in &initials {
            self.exec_initial(ini, &mut init_scalars, &mut init_mems)?;
        }
        for (name, value) in init_scalars {
            let sig = self
                .flat
                .sig(&name)
                .ok_or_else(|| Self::err(format!("initial assigns unknown signal '{name}'")))?
                .clone();
            let v = *self
                .vars
                .get(&name)
                .ok_or_else(|| Self::err(format!("initial assigns non-register '{name}'")))?;
            if self.ts.state_of_var(v).is_none() {
                return Err(Self::err(format!("initial assigns non-register '{name}'")));
            }
            let e = self.ts.pool_mut().constv(sig.width, value);
            self.ts.set_init(v, e);
        }
        for (name, writes) in init_mems {
            let sig = self.flat.sig(&name).expect("checked").clone();
            let (_, addr_w) = sig
                .memory
                .ok_or_else(|| Self::err(format!("'{name}' is not a memory")))?;
            let v = self.vars[&name];
            let mut e = self.ts.pool_mut().const_array(addr_w, sig.width, 0);
            let mut keys: Vec<u64> = writes.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                let i = self.ts.pool_mut().constv(addr_w, k);
                let val = self.ts.pool_mut().constv(sig.width, writes[&k]);
                e = self.ts.pool_mut().write(e, i, val);
            }
            self.ts.set_init(v, e);
        }

        // ---- properties ----
        let asserts = self.flat.asserts.clone();
        for (label, cond) in &asserts {
            let c = self.build_bool(cond)?;
            let bad = self.ts.pool_mut().not(c);
            self.ts.add_bad(bad, label.clone());
        }
        let assumes = self.flat.assumes.clone();
        for cond in &assumes {
            let c = self.build_bool(cond)?;
            self.ts.add_constraint(c);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expression building
    // ------------------------------------------------------------------

    fn signal_width(&self, name: &str) -> Result<u32, VerilogError> {
        self.flat
            .sig(name)
            .map(|s| s.width)
            .ok_or_else(|| Self::err(format!("unknown signal '{name}'")))
    }

    fn self_width(&self, e: &Expr) -> Result<u32, VerilogError> {
        Ok(match e {
            Expr::Ident(n) => self.signal_width(n)?,
            Expr::Number { size, value } => size
                .unwrap_or_else(|| 64 - value.leading_zeros())
                .clamp(1, 64),
            Expr::Unary(op, a) => match op {
                UnaryOp::Not | UnaryOp::Neg | UnaryOp::Plus => self.self_width(a)?,
                _ => 1,
            },
            Expr::Binary(op, a, b) => match op {
                BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::Div
                | BinaryOp::Mod
                | BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::Xnor => self.self_width(a)?.max(self.self_width(b)?),
                BinaryOp::Shl | BinaryOp::Shr | BinaryOp::Sshl | BinaryOp::Sshr => {
                    self.self_width(a)?
                }
                _ => 1,
            },
            Expr::Ternary(_, a, b) => self.self_width(a)?.max(self.self_width(b)?),
            Expr::Concat(parts) => {
                let mut w = 0;
                for p in parts {
                    w += self.self_width(p)?;
                }
                w
            }
            Expr::Repl(n, parts) => {
                let count = const_eval(n, &HashMap::new()).map_err(Self::err)? as u32;
                let mut w = 0;
                for p in parts {
                    w += self.self_width(p)?;
                }
                count * w
            }
            Expr::Index(n, _) => match self.flat.sig(n) {
                Some(s) if s.memory.is_some() => s.width,
                _ => 1,
            },
            Expr::Part(_, hi, lo) => {
                let h = const_eval(hi, &HashMap::new()).map_err(Self::err)?;
                let l = const_eval(lo, &HashMap::new()).map_err(Self::err)?;
                (h.saturating_sub(l) + 1) as u32
            }
        })
    }

    /// Builds `e` at exactly `width` bits (Verilog assignment-context
    /// semantics: the context width propagates into arithmetic).
    fn build(&mut self, e: &Expr, width: u32) -> Result<ExprId, VerilogError> {
        let p = |s: &mut Self, e: ExprId, w: u32| s.ts.pool_mut().resize_zext(e, w);
        Ok(match e {
            Expr::Number { value, .. } => self.ts.pool_mut().constv(width, *value),
            Expr::Ident(n) => {
                let sig = self
                    .flat
                    .sig(n)
                    .ok_or_else(|| Self::err(format!("unknown signal '{n}'")))?;
                if sig.memory.is_some() {
                    return Err(Self::err(format!("memory '{n}' used without an index")));
                }
                let base = *self.sig_expr.get(n).ok_or_else(|| {
                    Self::err(format!("'{n}' used before definition (is it a clock?)"))
                })?;
                p(self, base, width)
            }
            Expr::Unary(op, a) => match op {
                UnaryOp::Not => {
                    let av = self.build(a, width)?;
                    self.ts.pool_mut().not(av)
                }
                UnaryOp::Neg => {
                    let av = self.build(a, width)?;
                    self.ts.pool_mut().neg(av)
                }
                UnaryOp::Plus => self.build(a, width)?,
                UnaryOp::LogicNot => {
                    let b = self.build_bool(a)?;
                    let nb = self.ts.pool_mut().not(b);
                    p(self, nb, width)
                }
                UnaryOp::RedAnd => {
                    let w = self.self_width(a)?;
                    let av = self.build(a, w)?;
                    let r = self.ts.pool_mut().redand(av);
                    p(self, r, width)
                }
                UnaryOp::RedOr => {
                    let w = self.self_width(a)?;
                    let av = self.build(a, w)?;
                    let r = self.ts.pool_mut().redor(av);
                    p(self, r, width)
                }
                UnaryOp::RedXor => {
                    let w = self.self_width(a)?;
                    let av = self.build(a, w)?;
                    let r = self.ts.pool_mut().redxor(av);
                    p(self, r, width)
                }
                UnaryOp::RedNand => {
                    let w = self.self_width(a)?;
                    let av = self.build(a, w)?;
                    let r = self.ts.pool_mut().redand(av);
                    let nr = self.ts.pool_mut().not(r);
                    p(self, nr, width)
                }
                UnaryOp::RedNor => {
                    let w = self.self_width(a)?;
                    let av = self.build(a, w)?;
                    let r = self.ts.pool_mut().redor(av);
                    let nr = self.ts.pool_mut().not(r);
                    p(self, nr, width)
                }
                UnaryOp::RedXnor => {
                    let w = self.self_width(a)?;
                    let av = self.build(a, w)?;
                    let r = self.ts.pool_mut().redxor(av);
                    let nr = self.ts.pool_mut().not(r);
                    p(self, nr, width)
                }
            },
            Expr::Binary(op, a, b) => {
                use BinaryOp as B;
                match op {
                    B::Add
                    | B::Sub
                    | B::Mul
                    | B::Div
                    | B::Mod
                    | B::And
                    | B::Or
                    | B::Xor
                    | B::Xnor => {
                        let aw = self.self_width(a)?;
                        let bw = self.self_width(b)?;
                        let w = width.max(aw).max(bw);
                        let av = self.build(a, w)?;
                        let bv = self.build(b, w)?;
                        let r = match op {
                            B::Add => self.ts.pool_mut().add(av, bv),
                            B::Sub => self.ts.pool_mut().sub(av, bv),
                            B::Mul => self.ts.pool_mut().mul(av, bv),
                            B::Div => self.ts.pool_mut().udiv(av, bv),
                            B::Mod => self.ts.pool_mut().urem(av, bv),
                            B::And => self.ts.pool_mut().and(av, bv),
                            B::Or => self.ts.pool_mut().or(av, bv),
                            B::Xor => self.ts.pool_mut().xor(av, bv),
                            B::Xnor => {
                                let x = self.ts.pool_mut().xor(av, bv);
                                self.ts.pool_mut().not(x)
                            }
                            _ => unreachable!(),
                        };
                        p(self, r, width)
                    }
                    B::Shl | B::Sshl | B::Shr | B::Sshr => {
                        let aw = self.self_width(a)?;
                        let w = width.max(aw);
                        let av = self.build(a, w)?;
                        let bw = self.self_width(b)?;
                        let bv = self.build(b, bw)?;
                        let r = match op {
                            B::Shl | B::Sshl => self.ts.pool_mut().shl(av, bv),
                            B::Shr => self.ts.pool_mut().lshr(av, bv),
                            B::Sshr => self.ts.pool_mut().ashr(av, bv),
                            _ => unreachable!(),
                        };
                        p(self, r, width)
                    }
                    B::Eq | B::Ne | B::Lt | B::Le | B::Gt | B::Ge => {
                        let w = self.self_width(a)?.max(self.self_width(b)?);
                        let av = self.build(a, w)?;
                        let bv = self.build(b, w)?;
                        let r = match op {
                            B::Eq => self.ts.pool_mut().eq(av, bv),
                            B::Ne => self.ts.pool_mut().ne(av, bv),
                            B::Lt => self.ts.pool_mut().ult(av, bv),
                            B::Le => self.ts.pool_mut().ule(av, bv),
                            B::Gt => self.ts.pool_mut().ugt(av, bv),
                            B::Ge => self.ts.pool_mut().uge(av, bv),
                            _ => unreachable!(),
                        };
                        p(self, r, width)
                    }
                    B::LogicAnd | B::LogicOr => {
                        let av = self.build_bool(a)?;
                        let bv = self.build_bool(b)?;
                        let r = if *op == B::LogicAnd {
                            self.ts.pool_mut().and(av, bv)
                        } else {
                            self.ts.pool_mut().or(av, bv)
                        };
                        p(self, r, width)
                    }
                }
            }
            Expr::Ternary(c, a, b) => {
                let cv = self.build_bool(c)?;
                let av = self.build(a, width)?;
                let bv = self.build(b, width)?;
                self.ts.pool_mut().ite(cv, av, bv)
            }
            Expr::Concat(parts) => {
                let mut acc: Option<ExprId> = None;
                for part in parts {
                    let w = self.self_width(part)?;
                    let pv = self.build(part, w)?;
                    acc = Some(match acc {
                        None => pv,
                        Some(a) => self.ts.pool_mut().concat(a, pv),
                    });
                }
                let e = acc.ok_or_else(|| Self::err("empty concatenation"))?;
                p(self, e, width)
            }
            Expr::Repl(n, parts) => {
                let count = const_eval(n, &HashMap::new()).map_err(Self::err)?;
                if count == 0 {
                    return Err(Self::err("zero replication"));
                }
                let mut one: Option<ExprId> = None;
                for part in parts {
                    let w = self.self_width(part)?;
                    let pv = self.build(part, w)?;
                    one = Some(match one {
                        None => pv,
                        Some(a) => self.ts.pool_mut().concat(a, pv),
                    });
                }
                let unit = one.ok_or_else(|| Self::err("empty replication"))?;
                let mut acc = unit;
                for _ in 1..count {
                    acc = self.ts.pool_mut().concat(acc, unit);
                }
                p(self, acc, width)
            }
            Expr::Index(n, idx) => {
                let sig = self
                    .flat
                    .sig(n)
                    .ok_or_else(|| Self::err(format!("unknown signal '{n}'")))?
                    .clone();
                let base = *self
                    .sig_expr
                    .get(n)
                    .ok_or_else(|| Self::err(format!("'{n}' used before definition")))?;
                if let Some((_, addr_w)) = sig.memory {
                    let iv = self.build(idx, addr_w)?;
                    let r = self.ts.pool_mut().read(base, iv);
                    p(self, r, width)
                } else {
                    // Dynamic bit select: (sig >> (idx - lsb)) & 1.
                    let iw = self
                        .self_width(idx)?
                        .max(ceil_log2(sig.width as u64).max(1));
                    let mut iv = self.build(idx, iw)?;
                    if sig.lsb != 0 {
                        let off = self.ts.pool_mut().constv(iw, sig.lsb as u64);
                        iv = self.ts.pool_mut().sub(iv, off);
                    }
                    let shifted = self.ts.pool_mut().lshr(base, iv);
                    let bit = self.ts.pool_mut().extract(shifted, 0, 0);
                    p(self, bit, width)
                }
            }
            Expr::Part(n, hi, lo) => {
                let sig = self
                    .flat
                    .sig(n)
                    .ok_or_else(|| Self::err(format!("unknown signal '{n}'")))?
                    .clone();
                if sig.memory.is_some() {
                    return Err(Self::err(format!("part-select on memory '{n}'")));
                }
                let base = *self
                    .sig_expr
                    .get(n)
                    .ok_or_else(|| Self::err(format!("'{n}' used before definition")))?;
                let h = const_eval(hi, &HashMap::new()).map_err(Self::err)? as u32;
                let l = const_eval(lo, &HashMap::new()).map_err(Self::err)? as u32;
                if l < sig.lsb || h >= sig.lsb + sig.width || l > h {
                    return Err(Self::err(format!(
                        "part select [{h}:{l}] out of range for '{n}'"
                    )));
                }
                let r = self.ts.pool_mut().extract(base, h - sig.lsb, l - sig.lsb);
                p(self, r, width)
            }
        })
    }

    /// Builds `e` as a 1-bit truth value (`|e|` for wide expressions).
    fn build_bool(&mut self, e: &Expr) -> Result<ExprId, VerilogError> {
        let w = self.self_width(e)?;
        let v = self.build(e, w)?;
        Ok(if w == 1 {
            v
        } else {
            self.ts.pool_mut().redor(v)
        })
    }

    // ------------------------------------------------------------------
    // Symbolic execution of processes
    // ------------------------------------------------------------------

    /// Installs a continuous assignment into `sig_expr`.
    fn install_assign(&mut self, lv: &LValue, rhs: &Expr) -> Result<(), VerilogError> {
        match lv {
            LValue::Ident(n) => {
                let w = self.signal_width(n)?;
                let e = self.build(rhs, w)?;
                self.sig_expr.insert(n.clone(), e);
                Ok(())
            }
            LValue::Concat(parts) => {
                // Left-to-right parts take MSB-first slices of the rhs.
                let mut widths = Vec::new();
                for p in parts {
                    match p {
                        LValue::Ident(n) => widths.push(self.signal_width(n)?),
                        _ => {
                            return Err(Self::err("nested selects in concatenated assign targets"))
                        }
                    }
                }
                let total: u32 = widths.iter().sum();
                let rhs_e = self.build(rhs, total)?;
                let mut hi = total;
                for (p, w) in parts.iter().zip(&widths) {
                    let lo = hi - w;
                    let slice = self.ts.pool_mut().extract(rhs_e, hi - 1, lo);
                    if let LValue::Ident(n) = p {
                        self.sig_expr.insert(n.clone(), slice);
                    }
                    hi = lo;
                }
                Ok(())
            }
            _ => Err(Self::err(
                "continuous assignment to bit/part selects is not supported",
            )),
        }
    }

    /// Reads a signal inside a process, honoring the local environment.
    fn read_sig(
        &mut self,
        env: &HashMap<String, ExprId>,
        name: &str,
    ) -> Result<ExprId, VerilogError> {
        if let Some(&e) = env.get(name) {
            return Ok(e);
        }
        self.sig_expr
            .get(name)
            .copied()
            .ok_or_else(|| Self::err(format!("'{name}' used before definition")))
    }

    /// Builds an expression inside a process: identifiers first resolve
    /// through the blocking environment.
    fn build_in_env(
        &mut self,
        env: &HashMap<String, ExprId>,
        e: &Expr,
        width: u32,
    ) -> Result<ExprId, VerilogError> {
        // Substitute env values by temporarily overriding sig_expr.
        let mut saved: Vec<(String, Option<ExprId>)> = Vec::new();
        for (k, &v) in env {
            saved.push((k.clone(), self.sig_expr.get(k).copied()));
            self.sig_expr.insert(k.clone(), v);
        }
        let result = self.build(e, width);
        for (k, old) in saved {
            match old {
                Some(o) => {
                    self.sig_expr.insert(k, o);
                }
                None => {
                    self.sig_expr.remove(&k);
                }
            }
        }
        result
    }

    fn build_bool_in_env(
        &mut self,
        env: &HashMap<String, ExprId>,
        e: &Expr,
    ) -> Result<ExprId, VerilogError> {
        let w = self.self_width(e)?;
        let v = self.build_in_env(env, e, w)?;
        Ok(if w == 1 {
            v
        } else {
            self.ts.pool_mut().redor(v)
        })
    }

    /// Applies an assignment to a process environment (read-modify-write
    /// for selects, functional update for memories).
    fn assign_in_env(
        &mut self,
        env: &mut HashMap<String, ExprId>,
        lv: &LValue,
        rhs: &Expr,
        fallback_current: bool,
    ) -> Result<(), VerilogError> {
        match lv {
            LValue::Ident(n) => {
                let sig = self
                    .flat
                    .sig(n)
                    .ok_or_else(|| Self::err(format!("unknown signal '{n}'")))?
                    .clone();
                if sig.memory.is_some() {
                    return Err(Self::err(format!(
                        "whole-memory assignment to '{n}' is not supported"
                    )));
                }
                let e = self.build_in_env(env, rhs, sig.width)?;
                env.insert(n.clone(), e);
                Ok(())
            }
            LValue::Index(n, idx) => {
                let sig = self
                    .flat
                    .sig(n)
                    .ok_or_else(|| Self::err(format!("unknown signal '{n}'")))?
                    .clone();
                if let Some((_, addr_w)) = sig.memory {
                    let cur = match env.get(n) {
                        Some(&e) => e,
                        None => self.read_sig(&HashMap::new(), n)?,
                    };
                    let iv = self.build_in_env(env, idx, addr_w)?;
                    let val = self.build_in_env(env, rhs, sig.width)?;
                    let w = self.ts.pool_mut().write(cur, iv, val);
                    env.insert(n.clone(), w);
                } else {
                    // Bit read-modify-write.
                    let cur = match env.get(n) {
                        Some(&e) => e,
                        None => {
                            if fallback_current {
                                self.read_sig(&HashMap::new(), n)?
                            } else {
                                return Err(Self::err(format!(
                                    "bit assignment to '{n}' before full assignment \
                                     in combinational process (latch)"
                                )));
                            }
                        }
                    };
                    let iw = self
                        .self_width(idx)?
                        .max(ceil_log2(sig.width as u64).max(1));
                    let mut iv = self.build_in_env(env, idx, iw)?;
                    if sig.lsb != 0 {
                        let off = self.ts.pool_mut().constv(iw, sig.lsb as u64);
                        iv = self.ts.pool_mut().sub(iv, off);
                    }
                    let bitv = self.build_in_env(env, rhs, 1)?;
                    let one = self.ts.pool_mut().constv(sig.width, 1);
                    let mask = self.ts.pool_mut().shl(one, iv);
                    let nmask = self.ts.pool_mut().not(mask);
                    let cleared = self.ts.pool_mut().and(cur, nmask);
                    let bit_wide = self.ts.pool_mut().zext(bitv, sig.width);
                    let shifted = self.ts.pool_mut().shl(bit_wide, iv);
                    let merged = self.ts.pool_mut().or(cleared, shifted);
                    env.insert(n.clone(), merged);
                }
                Ok(())
            }
            LValue::Part(n, hi, lo) => {
                let sig = self
                    .flat
                    .sig(n)
                    .ok_or_else(|| Self::err(format!("unknown signal '{n}'")))?
                    .clone();
                let h = const_eval(hi, &HashMap::new()).map_err(Self::err)? as u32 - sig.lsb;
                let l = const_eval(lo, &HashMap::new()).map_err(Self::err)? as u32 - sig.lsb;
                if h >= sig.width || l > h {
                    return Err(Self::err(format!("part select out of range on '{n}'")));
                }
                let cur = match env.get(n) {
                    Some(&e) => e,
                    None => {
                        if fallback_current {
                            self.read_sig(&HashMap::new(), n)?
                        } else {
                            return Err(Self::err(format!(
                                "part assignment to '{n}' before full assignment \
                                 in combinational process (latch)"
                            )));
                        }
                    }
                };
                let val = self.build_in_env(env, rhs, h - l + 1)?;
                // Splice: [ high | val | low ].
                let mut merged = val;
                if l > 0 {
                    let low = self.ts.pool_mut().extract(cur, l - 1, 0);
                    merged = self.ts.pool_mut().concat(merged, low);
                }
                if h + 1 < sig.width {
                    let high = self.ts.pool_mut().extract(cur, sig.width - 1, h + 1);
                    merged = self.ts.pool_mut().concat(high, merged);
                }
                env.insert(n.clone(), merged);
                Ok(())
            }
            LValue::Concat(parts) => {
                let mut widths = Vec::new();
                for p in parts {
                    let LValue::Ident(n) = p else {
                        return Err(Self::err(
                            "nested selects in concatenated assignment targets",
                        ));
                    };
                    widths.push(self.signal_width(n)?);
                }
                let total: u32 = widths.iter().sum();
                let rhs_e = self.build_in_env(env, rhs, total)?;
                let mut hi = total;
                for (p, w) in parts.iter().zip(&widths) {
                    let lo = hi - w;
                    let slice = self.ts.pool_mut().extract(rhs_e, hi - 1, lo);
                    if let LValue::Ident(n) = p {
                        env.insert(n.clone(), slice);
                    }
                    hi = lo;
                }
                Ok(())
            }
        }
    }

    /// Merges two branch environments under a condition; `fallback`
    /// supplies values for keys missing on one side (None = latch
    /// error for combinational processes).
    fn merge_envs(
        &mut self,
        cond: ExprId,
        then_env: HashMap<String, ExprId>,
        else_env: HashMap<String, ExprId>,
        base: &HashMap<String, ExprId>,
        allow_current: bool,
    ) -> Result<HashMap<String, ExprId>, VerilogError> {
        let mut keys: HashSet<String> = then_env.keys().cloned().collect();
        keys.extend(else_env.keys().cloned());
        let mut out = base.clone();
        for k in keys {
            let fallback = |s: &mut Self| -> Result<ExprId, VerilogError> {
                if let Some(&b) = base.get(&k) {
                    return Ok(b);
                }
                if allow_current {
                    s.read_sig(&HashMap::new(), &k)
                } else {
                    Err(Self::err(format!(
                        "signal '{k}' is not assigned on all paths of a combinational \
                         process (transparent latch, unsupported as in v2c)"
                    )))
                }
            };
            let vt = match then_env.get(&k) {
                Some(&v) => v,
                None => fallback(self)?,
            };
            let ve = match else_env.get(&k) {
                Some(&v) => v,
                None => fallback(self)?,
            };
            let merged = self.ts.pool_mut().ite(cond, vt, ve);
            out.insert(k, merged);
        }
        Ok(out)
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        env: &mut HashMap<String, ExprId>,
        nb: Option<&mut HashMap<String, ExprId>>,
        allow_current: bool,
    ) -> Result<(), VerilogError> {
        match s {
            Stmt::Nop => Ok(()),
            Stmt::Block(b) => {
                let mut nbo = nb;
                for st in b {
                    self.exec_stmt(st, env, nbo.as_deref_mut(), allow_current)?;
                }
                Ok(())
            }
            Stmt::Blocking(lv, rhs) => self.assign_in_env(env, lv, rhs, allow_current),
            Stmt::NonBlocking(lv, rhs) => match nb {
                Some(nbe) => {
                    // Non-blocking reads see pre-process values (env for
                    // blocking locals still applies per Verilog
                    // scheduling of blocking-then-nonblocking reads).
                    let mut tmp = nbe.clone();
                    // Reads inside the rhs use the blocking env.
                    let rhs_env = env.clone();
                    // Memory / select updates start from the
                    // latest non-blocking value of the target.
                    self.assign_with_read_env(&mut tmp, &rhs_env, lv, rhs)?;
                    *nbe = tmp;
                    Ok(())
                }
                None => Err(Self::err(
                    "non-blocking assignment in combinational process",
                )),
            },
            Stmt::If(c, t, e) => {
                let cv = self.build_bool_in_env(env, c)?;
                let mut env_t = env.clone();
                let mut env_e = env.clone();
                match nb {
                    Some(nbe) => {
                        let mut nb_t = nbe.clone();
                        let mut nb_e = nbe.clone();
                        self.exec_stmt(t, &mut env_t, Some(&mut nb_t), allow_current)?;
                        if let Some(e) = e {
                            self.exec_stmt(e, &mut env_e, Some(&mut nb_e), allow_current)?;
                        }
                        *env = self.merge_envs(cv, env_t, env_e, env, true)?;
                        *nbe = self.merge_envs(cv, nb_t, nb_e, nbe, true)?;
                    }
                    None => {
                        self.exec_stmt(t, &mut env_t, None, allow_current)?;
                        if let Some(e) = e {
                            self.exec_stmt(e, &mut env_e, None, allow_current)?;
                        }
                        *env = self.merge_envs(cv, env_t, env_e, env, allow_current)?;
                    }
                }
                Ok(())
            }
            Stmt::Case {
                expr,
                arms,
                default,
                wildcard: _,
            } => {
                // Desugar into an if-else chain with priority order.
                let chain = Self::case_to_if(expr, arms, default);
                self.exec_stmt(&chain, env, nb, allow_current)
            }
        }
    }

    fn case_to_if(expr: &Expr, arms: &[(Vec<Expr>, Stmt)], default: &Option<Box<Stmt>>) -> Stmt {
        let mut chain: Stmt = match default {
            Some(d) => (**d).clone(),
            None => Stmt::Nop,
        };
        for (labels, body) in arms.iter().rev() {
            let mut cond: Option<Expr> = None;
            for l in labels {
                let eq = Expr::Binary(BinaryOp::Eq, Box::new(expr.clone()), Box::new(l.clone()));
                cond = Some(match cond {
                    None => eq,
                    Some(c) => Expr::Binary(BinaryOp::LogicOr, Box::new(c), Box::new(eq)),
                });
            }
            let cond = cond.unwrap_or(Expr::num(0));
            chain = Stmt::If(cond, Box::new(body.clone()), Some(Box::new(chain)));
        }
        chain
    }

    /// Non-blocking assignment: the written value reads through
    /// `read_env` (the blocking env), but read-modify-write of the
    /// target itself chains through the non-blocking env `nbe`.
    fn assign_with_read_env(
        &mut self,
        nbe: &mut HashMap<String, ExprId>,
        read_env: &HashMap<String, ExprId>,
        lv: &LValue,
        rhs: &Expr,
    ) -> Result<(), VerilogError> {
        match lv {
            LValue::Ident(n) => {
                let w = self.signal_width(n)?;
                let e = self.build_in_env(read_env, rhs, w)?;
                nbe.insert(n.clone(), e);
                Ok(())
            }
            LValue::Index(n, idx) => {
                let sig = self
                    .flat
                    .sig(n)
                    .ok_or_else(|| Self::err(format!("unknown signal '{n}'")))?
                    .clone();
                if let Some((_, addr_w)) = sig.memory {
                    let cur = match nbe.get(n) {
                        Some(&e) => e,
                        None => self.read_sig(&HashMap::new(), n)?,
                    };
                    let iv = self.build_in_env(read_env, idx, addr_w)?;
                    let val = self.build_in_env(read_env, rhs, sig.width)?;
                    let w = self.ts.pool_mut().write(cur, iv, val);
                    nbe.insert(n.clone(), w);
                    Ok(())
                } else {
                    let mut env2 = nbe.clone();
                    // For scalar bit writes reuse the blocking machinery
                    // with the non-blocking env as the base.
                    for (k, v) in read_env {
                        env2.entry(k.clone()).or_insert(*v);
                    }
                    self.assign_in_env(&mut env2, lv, rhs, true)?;
                    if let Some(&v) = env2.get(n) {
                        nbe.insert(n.clone(), v);
                    }
                    Ok(())
                }
            }
            LValue::Part(n, _, _) => {
                let mut env2 = nbe.clone();
                for (k, v) in read_env {
                    env2.entry(k.clone()).or_insert(*v);
                }
                self.assign_in_env(&mut env2, lv, rhs, true)?;
                if let Some(&v) = env2.get(n) {
                    nbe.insert(n.clone(), v);
                }
                Ok(())
            }
            LValue::Concat(_) => {
                let mut env2 = nbe.clone();
                for (k, v) in read_env {
                    env2.entry(k.clone()).or_insert(*v);
                }
                let mut targets = Vec::new();
                lvalue_targets(lv, &mut targets);
                self.assign_in_env(&mut env2, lv, rhs, true)?;
                for t in targets {
                    if let Some(&v) = env2.get(&t) {
                        nbe.insert(t, v);
                    }
                }
                Ok(())
            }
        }
    }

    fn exec_comb(&mut self, body: &Stmt) -> Result<HashMap<String, ExprId>, VerilogError> {
        let mut env = HashMap::new();
        self.exec_stmt(body, &mut env, None, false)?;
        Ok(env)
    }

    fn exec_clocked(&mut self, body: &Stmt) -> Result<HashMap<String, ExprId>, VerilogError> {
        let mut env = HashMap::new();
        let mut nb = HashMap::new();
        self.exec_stmt(body, &mut env, Some(&mut nb), true)?;
        // Blocking-assigned registers in clocked processes are state
        // updates too; non-blocking wins on conflicts (matches
        // scheduling order within one process).
        let mut out = env;
        for (k, v) in nb {
            out.insert(k, v);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Initial blocks (concrete interpretation)
    // ------------------------------------------------------------------

    fn exec_initial(
        &mut self,
        s: &Stmt,
        scalars: &mut HashMap<String, u64>,
        mems: &mut HashMap<String, HashMap<u64, u64>>,
    ) -> Result<(), VerilogError> {
        match s {
            Stmt::Nop => Ok(()),
            Stmt::Block(b) => {
                for st in b {
                    self.exec_initial(st, scalars, mems)?;
                }
                Ok(())
            }
            Stmt::If(c, t, e) => {
                let cv = Self::const_with(c, scalars)?;
                if cv != 0 {
                    self.exec_initial(t, scalars, mems)
                } else if let Some(e) = e {
                    self.exec_initial(e, scalars, mems)
                } else {
                    Ok(())
                }
            }
            Stmt::Blocking(lv, rhs) | Stmt::NonBlocking(lv, rhs) => {
                let v = Self::const_with(rhs, scalars)?;
                match lv {
                    LValue::Ident(n) => {
                        let w = self.signal_width(n)?;
                        scalars.insert(n.clone(), v & rtlir::value::mask(w));
                        Ok(())
                    }
                    LValue::Index(n, idx) => {
                        let sig = self
                            .flat
                            .sig(n)
                            .ok_or_else(|| Self::err(format!("unknown signal '{n}'")))?
                            .clone();
                        if sig.memory.is_none() {
                            return Err(Self::err("bit-level initialization is not supported"));
                        }
                        let i = Self::const_with(idx, scalars)?;
                        mems.entry(n.clone())
                            .or_default()
                            .insert(i, v & rtlir::value::mask(sig.width));
                        Ok(())
                    }
                    _ => Err(Self::err("unsupported initial assignment target")),
                }
            }
            Stmt::Case { .. } => Err(Self::err("case statements in initial blocks")),
        }
    }

    fn const_with(e: &Expr, env: &HashMap<String, u64>) -> Result<u64, VerilogError> {
        const_eval(e, env).map_err(Self::err)
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use rtlir::{Simulator, Value};

    #[test]
    fn counter_semantics() {
        let src = r#"
        module top(input clk, input en);
          reg [3:0] c;
          initial c = 0;
          always @(posedge clk)
            if (en) c <= c + 1;
          assert property (c != 9);
        endmodule
        "#;
        let ts = compile(src, "top").expect("compiles");
        assert_eq!(ts.states().len(), 1);
        assert_eq!(ts.inputs().len(), 1, "clock excluded from inputs");
        let mut sim = Simulator::new(&ts);
        let hit = sim.run_until_bad(20, |_| vec![Value::bit(true)]);
        assert_eq!(hit, Some(9));
    }

    #[test]
    fn hierarchy_and_port_wiring() {
        let src = r#"
        module inc(input [3:0] a, output [3:0] b);
          assign b = a + 1;
        endmodule
        module top(input clk);
          reg [3:0] r;
          wire [3:0] rn;
          initial r = 0;
          inc u (.a(r), .b(rn));
          always @(posedge clk) r <= rn;
          assert property (r != 5);
        endmodule
        "#;
        let ts = compile(src, "top").expect("compiles");
        let mut sim = Simulator::new(&ts);
        assert_eq!(sim.run_until_bad(10, |_| vec![]), Some(5));
    }

    #[test]
    fn comb_process_with_default() {
        let src = r#"
        module top(input clk, input [1:0] sel);
          reg [3:0] out;
          reg [3:0] r;
          initial r = 0;
          always @* begin
            out = 0;
            case (sel)
              2'd1: out = 4'd3;
              2'd2: out = 4'd7;
            endcase
          end
          always @(posedge clk) r <= out;
          assert property (r != 7);
        endmodule
        "#;
        let ts = compile(src, "top").expect("compiles");
        let mut sim = Simulator::new(&ts);
        // sel = 2 drives out = 7, registered next cycle.
        let hit = sim.run_until_bad(5, |_| vec![Value::bv(2, 2)]);
        assert_eq!(hit, Some(1));
    }

    #[test]
    fn latch_detected() {
        let src = r#"
        module top(input clk, input s);
          reg q;
          always @* begin
            if (s) q = 1;
          end
        endmodule
        "#;
        let err = compile(src, "top").expect_err("latch must be rejected");
        assert!(err.message.contains("latch"), "got: {}", err.message);
    }

    #[test]
    fn combinational_loop_detected() {
        let src = r#"
        module top(input clk, output a);
          wire b;
          assign a = ~b;
          assign b = ~a;
        endmodule
        "#;
        let err = compile(src, "top").expect_err("loop must be rejected");
        assert!(err.message.contains("loop"), "got: {}", err.message);
    }

    #[test]
    fn multiple_clocks_rejected() {
        let src = r#"
        module top(input clk1, input clk2);
          reg a, b;
          always @(posedge clk1) a <= 1;
          always @(posedge clk2) b <= 1;
        endmodule
        "#;
        let err = compile(src, "top").expect_err("two clocks rejected");
        assert!(err.message.contains("clock"), "got: {}", err.message);
    }

    #[test]
    fn memory_fifo_roundtrip() {
        let src = r#"
        module top(input clk, input push, input [7:0] din);
          reg [7:0] mem [0:3];
          reg [1:0] wp;
          reg [7:0] sum;
          initial wp = 0;
          initial sum = 0;
          always @(posedge clk) begin
            if (push) begin
              mem[wp] <= din;
              wp <= wp + 1;
              sum <= sum + din;
            end
          end
          assert property (sum < 200);
        endmodule
        "#;
        let ts = compile(src, "top").expect("compiles");
        assert_eq!(ts.states().len(), 3);
        let mut sim = Simulator::new(&ts);
        let hit = sim.run_until_bad(10, |_| vec![Value::bit(true), Value::bv(8, 100)]);
        assert_eq!(hit, Some(2), "sum reaches 200 after two pushes");
    }

    #[test]
    fn blocking_in_clocked_process() {
        let src = r#"
        module top(input clk, input [3:0] x);
          reg [3:0] a;
          reg [3:0] b;
          initial begin a = 0; b = 0; end
          always @(posedge clk) begin
            a = x + 1;       // blocking: b sees the new a
            b <= a + 1;
          end
          assert property (b != 5);
        endmodule
        "#;
        let ts = compile(src, "top").expect("compiles");
        let mut sim = Simulator::new(&ts);
        // x=3 -> a=4, b=5 on the next edge.
        let hit = sim.run_until_bad(5, |_| vec![Value::bv(4, 3)]);
        assert_eq!(hit, Some(1));
    }

    #[test]
    fn concat_and_part_selects() {
        let src = r#"
        module top(input clk, input [7:0] x);
          wire [3:0] hi;
          wire [3:0] lo;
          assign {hi, lo} = x;
          wire [7:0] swapped;
          assign swapped = {lo, hi};
          reg [7:0] r;
          initial r = 0;
          always @(posedge clk) r <= swapped;
          assert property (r != 8'h21);
        endmodule
        "#;
        let ts = compile(src, "top").expect("compiles");
        let mut sim = Simulator::new(&ts);
        // x = 0x12 -> swapped = 0x21.
        let hit = sim.run_until_bad(5, |_| vec![Value::bv(8, 0x12)]);
        assert_eq!(hit, Some(1));
    }

    #[test]
    fn assumes_become_constraints() {
        let src = r#"
        module top(input clk, input stop);
          reg [3:0] c;
          initial c = 0;
          always @(posedge clk) if (!stop) c <= c + 1;
          assume property (stop == 1'b1);
          assert property (c == 0);
        endmodule
        "#;
        let ts = compile(src, "top").expect("compiles");
        assert_eq!(ts.constraints().len(), 1);
        // Under the constraint the counter never moves: PDR-style
        // engines treat this via constraints; simulation honoring the
        // assumption keeps c at 0.
        let mut sim = Simulator::new(&ts);
        let hit = sim.run_until_bad(10, |_| vec![Value::bit(true)]);
        assert_eq!(hit, None);
    }
}
