//! Frontend error type.

use std::error::Error;
use std::fmt;

/// An error from parsing, elaborating or synthesizing Verilog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerilogError {
    /// 1-based source line, when known (0 = no location).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl VerilogError {
    /// Creates an error with a source line.
    pub fn at(line: u32, message: impl Into<String>) -> VerilogError {
        VerilogError {
            line,
            message: message.into(),
        }
    }

    /// Creates an error without location information.
    pub fn general(message: impl Into<String>) -> VerilogError {
        VerilogError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for VerilogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        assert_eq!(
            VerilogError::at(3, "unexpected token").to_string(),
            "line 3: unexpected token"
        );
        assert_eq!(
            VerilogError::general("no top module").to_string(),
            "no top module"
        );
    }
}
