//! Elaboration: parameter resolution and hierarchy specialization.
//!
//! Elaboration turns parsed [`SourceModule`]s into a [`Design`]: every
//! distinct `(module, parameter values)` combination becomes one
//! [`ElabModule`] with all parameter references substituted by
//! constants and all ranges resolved to widths. The module hierarchy
//! is *retained* (as in v2c); flattening happens later, in synthesis
//! or in the software-netlist generator.

use crate::ast::*;
use crate::error::VerilogError;
use std::collections::HashMap;

/// An elaborated signal.
#[derive(Clone, Debug)]
pub struct ESignal {
    /// Declared name.
    pub name: String,
    /// Bit width of the packed range (element width for memories).
    pub width: u32,
    /// Least significant index of the packed range (`[7:4]` → 4).
    pub lsb: u32,
    /// `wire` or `reg`.
    pub kind: NetKind,
    /// For memories: number of rows and address width.
    pub memory: Option<(u64, u32)>,
    /// Port direction, when the signal is a port.
    pub port: Option<Dir>,
    /// Constant initializer from the declaration, if any.
    pub init: Option<u64>,
}

/// An elaborated instance.
#[derive(Clone, Debug)]
pub struct EInstance {
    /// Index of the instantiated (specialized) module in the design.
    pub module: usize,
    /// Instance name.
    pub name: String,
    /// Connections: `(port index in child, expression in parent scope)`.
    pub conns: Vec<(usize, Expr)>,
}

/// An elaborated module: parameters substituted, widths resolved.
#[derive(Clone, Debug)]
pub struct ElabModule {
    /// Specialized name (source name plus parameter bindings).
    pub name: String,
    /// Original source module name.
    pub source_name: String,
    /// Signals (ports first, in port order).
    pub signals: Vec<ESignal>,
    /// Continuous assignments.
    pub assigns: Vec<(LValue, Expr)>,
    /// Processes: `(clock name if clocked, body)`.
    pub processes: Vec<(Option<String>, Stmt)>,
    /// Initial blocks (reset values).
    pub initials: Vec<Stmt>,
    /// Instances.
    pub instances: Vec<EInstance>,
    /// Safety properties `(label, condition)`.
    pub asserts: Vec<(String, Expr)>,
    /// Environment assumptions.
    pub assumes: Vec<Expr>,
}

impl ElabModule {
    /// Index of a signal by name.
    pub fn signal(&self, name: &str) -> Option<usize> {
        self.signals.iter().position(|s| s.name == name)
    }
}

/// A fully elaborated design: specialized modules plus the top index.
#[derive(Clone, Debug)]
pub struct Design {
    /// All specialized modules (children before parents).
    pub modules: Vec<ElabModule>,
    /// Index of the top module.
    pub top: usize,
}

/// Elaborates a set of parsed modules with `top` as the root.
///
/// # Errors
///
/// Reports unknown modules/parameters, non-constant widths, duplicate
/// signals and malformed port connections.
pub fn elaborate(modules: &[SourceModule], top: &str) -> Result<Design, VerilogError> {
    let by_name: HashMap<&str, &SourceModule> =
        modules.iter().map(|m| (m.name.as_str(), m)).collect();
    if modules.len() != by_name.len() {
        return Err(VerilogError::general("duplicate module names"));
    }
    let mut elab = Elaborator {
        by_name,
        out: Vec::new(),
        memo: HashMap::new(),
    };
    let top_idx = elab.module(top, &[], 0)?;
    Ok(Design {
        modules: elab.out,
        top: top_idx,
    })
}

struct Elaborator<'a> {
    by_name: HashMap<&'a str, &'a SourceModule>,
    out: Vec<ElabModule>,
    memo: HashMap<(String, Vec<(String, u64)>), usize>,
}

impl<'a> Elaborator<'a> {
    fn module(
        &mut self,
        name: &str,
        overrides: &[(Option<String>, u64)],
        line: u32,
    ) -> Result<usize, VerilogError> {
        let src = *self
            .by_name
            .get(name)
            .ok_or_else(|| VerilogError::at(line, format!("unknown module '{name}'")))?;

        // Resolve parameters in declaration order, applying overrides.
        let mut params: HashMap<String, u64> = HashMap::new();
        let mut param_order: Vec<String> = Vec::new();
        for item in &src.items {
            if let Item::Param { name: pname, value } = item {
                let v = const_eval(value, &params).map_err(|e| VerilogError::at(src.line, e))?;
                params.insert(pname.clone(), v);
                param_order.push(pname.clone());
            }
        }
        for (pos, (oname, oval)) in overrides.iter().enumerate() {
            let key = match oname {
                Some(n) => n.clone(),
                None => param_order.get(pos).cloned().ok_or_else(|| {
                    VerilogError::at(line, "too many positional parameter overrides")
                })?,
            };
            if !params.contains_key(&key) {
                return Err(VerilogError::at(
                    line,
                    format!("module '{name}' has no parameter '{key}'"),
                ));
            }
            params.insert(key, *oval);
        }

        // Memoize on the resolved parameter environment.
        let mut key_params: Vec<(String, u64)> =
            params.iter().map(|(k, &v)| (k.clone(), v)).collect();
        key_params.sort();
        let memo_key = (name.to_string(), key_params.clone());
        if let Some(&idx) = self.memo.get(&memo_key) {
            return Ok(idx);
        }

        let spec_name = if key_params.is_empty() {
            name.to_string()
        } else {
            let args: Vec<String> = key_params.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{name}#{}", args.join(","))
        };

        // Signals: ports first.
        let mut signals: Vec<ESignal> = Vec::new();
        let mut seen: HashMap<String, usize> = HashMap::new();
        for port in &src.ports {
            let (width, lsb) = range_width(&port.range, &params, src.line)?;
            let idx = signals.len();
            if seen.insert(port.name.clone(), idx).is_some() {
                return Err(VerilogError::at(
                    src.line,
                    format!("duplicate port '{}'", port.name),
                ));
            }
            signals.push(ESignal {
                name: port.name.clone(),
                width,
                lsb,
                kind: if port.is_reg {
                    NetKind::Reg
                } else {
                    NetKind::Wire
                },
                memory: None,
                port: Some(port.dir),
                init: None,
            });
        }
        let mut assigns = Vec::new();
        let mut processes = Vec::new();
        let mut initials = Vec::new();
        let mut instances = Vec::new();
        let mut asserts = Vec::new();
        let mut assumes = Vec::new();
        let mut assert_count = 0usize;

        for item in &src.items {
            match item {
                Item::Param { .. } => {}
                Item::Decl { kind, range, names } => {
                    let (width, lsb) = range_width(range, &params, src.line)?;
                    for dn in names {
                        let memory = match &dn.memory {
                            None => None,
                            Some(r) => {
                                let a = const_eval(&r.hi, &params)
                                    .map_err(|e| VerilogError::at(src.line, e))?;
                                let b = const_eval(&r.lo, &params)
                                    .map_err(|e| VerilogError::at(src.line, e))?;
                                let rows = a.max(b) - a.min(b) + 1;
                                if a.min(b) != 0 {
                                    return Err(VerilogError::at(
                                        src.line,
                                        format!("memory '{}' must start at index 0", dn.name),
                                    ));
                                }
                                let addr_width = ceil_log2(rows).max(1);
                                Some((rows, addr_width))
                            }
                        };
                        let init = match &dn.init {
                            None => None,
                            Some(e) => Some(
                                const_eval(e, &params)
                                    .map_err(|er| VerilogError::at(src.line, er))?,
                            ),
                        };
                        if memory.is_some() && init.is_some() {
                            return Err(VerilogError::at(
                                src.line,
                                "memory declaration initializers are not supported; use an \
                                 initial block",
                            ));
                        }
                        match seen.get(&dn.name) {
                            Some(&idx) => {
                                // Re-declaration of a port signal: refine
                                // kind/width (output reg pattern).
                                let s = &mut signals[idx];
                                if s.port.is_none() {
                                    return Err(VerilogError::at(
                                        src.line,
                                        format!("duplicate signal '{}'", dn.name),
                                    ));
                                }
                                s.kind = *kind;
                                if range.is_some() {
                                    s.width = width;
                                    s.lsb = lsb;
                                }
                                s.init = init;
                            }
                            None => {
                                seen.insert(dn.name.clone(), signals.len());
                                signals.push(ESignal {
                                    name: dn.name.clone(),
                                    width,
                                    lsb,
                                    kind: *kind,
                                    memory,
                                    port: None,
                                    init,
                                });
                            }
                        }
                    }
                }
                Item::ContAssign(lhs, rhs) => {
                    assigns.push((subst_lvalue(lhs, &params), subst_expr(rhs, &params)));
                }
                Item::Always(sens, body) => {
                    let clock = match sens {
                        Sensitivity::Comb => None,
                        Sensitivity::Posedge(c) => Some(c.clone()),
                    };
                    processes.push((clock, subst_stmt(body, &params)));
                }
                Item::Initial(body) => initials.push(subst_stmt(body, &params)),
                Item::Instance {
                    module,
                    name: iname,
                    params: ip,
                    conns,
                } => {
                    let resolved: Vec<(Option<String>, u64)> = ip
                        .iter()
                        .map(|(n, e)| {
                            const_eval(e, &params)
                                .map(|v| (n.clone(), v))
                                .map_err(|er| VerilogError::at(src.line, er))
                        })
                        .collect::<Result<_, _>>()?;
                    let child = self.module(module, &resolved, src.line)?;
                    let child_ports: Vec<(String, usize)> = self.out[child]
                        .signals
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.port.is_some())
                        .map(|(i, s)| (s.name.clone(), i))
                        .collect();
                    let mut econns = Vec::new();
                    for (pos, (cname, cexpr)) in conns.iter().enumerate() {
                        let port_idx = match cname {
                            Some(n) => child_ports
                                .iter()
                                .find(|(pn, _)| pn == n)
                                .map(|(_, i)| *i)
                                .ok_or_else(|| {
                                    VerilogError::at(
                                        src.line,
                                        format!("module '{module}' has no port '{n}'"),
                                    )
                                })?,
                            None => child_ports.get(pos).map(|(_, i)| *i).ok_or_else(|| {
                                VerilogError::at(
                                    src.line,
                                    format!("too many connections for '{module}'"),
                                )
                            })?,
                        };
                        if let Some(e) = cexpr {
                            econns.push((port_idx, subst_expr(e, &params)));
                        }
                    }
                    instances.push(EInstance {
                        module: child,
                        name: iname.clone(),
                        conns: econns,
                    });
                }
                Item::AssertProperty { cond, label } => {
                    assert_count += 1;
                    let lbl = label
                        .clone()
                        .unwrap_or_else(|| format!("assert_{assert_count}"));
                    asserts.push((lbl, subst_expr(cond, &params)));
                }
                Item::AssumeProperty { cond } => {
                    assumes.push(subst_expr(cond, &params));
                }
            }
        }

        let idx = self.out.len();
        self.out.push(ElabModule {
            name: spec_name,
            source_name: name.to_string(),
            signals,
            assigns,
            processes,
            initials,
            instances,
            asserts,
            assumes,
        });
        self.memo.insert(memo_key, idx);
        Ok(idx)
    }
}

fn range_width(
    range: &Option<Range>,
    params: &HashMap<String, u64>,
    line: u32,
) -> Result<(u32, u32), VerilogError> {
    match range {
        None => Ok((1, 0)),
        Some(r) => {
            let hi = const_eval(&r.hi, params).map_err(|e| VerilogError::at(line, e))?;
            let lo = const_eval(&r.lo, params).map_err(|e| VerilogError::at(line, e))?;
            if lo > hi {
                return Err(VerilogError::at(
                    line,
                    "descending ranges [lo:hi] not supported",
                ));
            }
            let width = (hi - lo + 1) as u32;
            if width == 0 || width > 64 {
                return Err(VerilogError::at(
                    line,
                    "width out of supported range 1..=64",
                ));
            }
            Ok((width, lo as u32))
        }
    }
}

/// Ceiling of log2 (0 for n <= 1).
pub fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Evaluates a constant expression over a parameter environment.
///
/// # Errors
///
/// Returns a message when the expression references a non-parameter
/// identifier or uses an operator outside the constant subset.
pub fn const_eval(e: &Expr, params: &HashMap<String, u64>) -> Result<u64, String> {
    match e {
        Expr::Number { value, .. } => Ok(*value),
        Expr::Ident(n) => params
            .get(n)
            .copied()
            .ok_or_else(|| format!("'{n}' is not a constant parameter")),
        Expr::Unary(op, a) => {
            let av = const_eval(a, params)?;
            Ok(match op {
                UnaryOp::Neg => av.wrapping_neg(),
                UnaryOp::Not => !av,
                UnaryOp::Plus => av,
                UnaryOp::LogicNot => (av == 0) as u64,
                _ => return Err("reduction operators in constant expressions".into()),
            })
        }
        Expr::Binary(op, a, b) => {
            let av = const_eval(a, params)?;
            let bv = const_eval(b, params)?;
            Ok(match op {
                BinaryOp::Add => av.wrapping_add(bv),
                BinaryOp::Sub => av.wrapping_sub(bv),
                BinaryOp::Mul => av.wrapping_mul(bv),
                BinaryOp::Div => {
                    if bv == 0 {
                        return Err("constant division by zero".into());
                    }
                    av / bv
                }
                BinaryOp::Mod => {
                    if bv == 0 {
                        return Err("constant modulo by zero".into());
                    }
                    av % bv
                }
                BinaryOp::Shl | BinaryOp::Sshl => av.checked_shl(bv as u32).unwrap_or(0),
                BinaryOp::Shr => av.checked_shr(bv as u32).unwrap_or(0),
                BinaryOp::And => av & bv,
                BinaryOp::Or => av | bv,
                BinaryOp::Xor => av ^ bv,
                BinaryOp::Eq => (av == bv) as u64,
                BinaryOp::Ne => (av != bv) as u64,
                BinaryOp::Lt => (av < bv) as u64,
                BinaryOp::Le => (av <= bv) as u64,
                BinaryOp::Gt => (av > bv) as u64,
                BinaryOp::Ge => (av >= bv) as u64,
                _ => return Err("operator not allowed in constant expression".into()),
            })
        }
        Expr::Ternary(c, a, b) => {
            if const_eval(c, params)? != 0 {
                const_eval(a, params)
            } else {
                const_eval(b, params)
            }
        }
        _ => Err("expression is not constant".into()),
    }
}

fn subst_expr(e: &Expr, params: &HashMap<String, u64>) -> Expr {
    match e {
        Expr::Ident(n) => match params.get(n) {
            Some(&v) => Expr::Number {
                size: None,
                value: v,
            },
            None => e.clone(),
        },
        Expr::Number { .. } => e.clone(),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(subst_expr(a, params))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(subst_expr(a, params)),
            Box::new(subst_expr(b, params)),
        ),
        Expr::Ternary(c, a, b) => Expr::Ternary(
            Box::new(subst_expr(c, params)),
            Box::new(subst_expr(a, params)),
            Box::new(subst_expr(b, params)),
        ),
        Expr::Concat(parts) => Expr::Concat(parts.iter().map(|p| subst_expr(p, params)).collect()),
        Expr::Repl(n, parts) => Expr::Repl(
            Box::new(subst_expr(n, params)),
            parts.iter().map(|p| subst_expr(p, params)).collect(),
        ),
        Expr::Index(n, i) => Expr::Index(n.clone(), Box::new(subst_expr(i, params))),
        Expr::Part(n, hi, lo) => Expr::Part(
            n.clone(),
            Box::new(subst_expr(hi, params)),
            Box::new(subst_expr(lo, params)),
        ),
    }
}

fn subst_lvalue(lv: &LValue, params: &HashMap<String, u64>) -> LValue {
    match lv {
        LValue::Ident(n) => LValue::Ident(n.clone()),
        LValue::Index(n, i) => LValue::Index(n.clone(), subst_expr(i, params)),
        LValue::Part(n, hi, lo) => {
            LValue::Part(n.clone(), subst_expr(hi, params), subst_expr(lo, params))
        }
        LValue::Concat(parts) => {
            LValue::Concat(parts.iter().map(|p| subst_lvalue(p, params)).collect())
        }
    }
}

fn subst_stmt(s: &Stmt, params: &HashMap<String, u64>) -> Stmt {
    match s {
        Stmt::Block(b) => Stmt::Block(b.iter().map(|x| subst_stmt(x, params)).collect()),
        Stmt::If(c, t, e) => Stmt::If(
            subst_expr(c, params),
            Box::new(subst_stmt(t, params)),
            e.as_ref().map(|x| Box::new(subst_stmt(x, params))),
        ),
        Stmt::Case {
            expr,
            arms,
            default,
            wildcard,
        } => Stmt::Case {
            expr: subst_expr(expr, params),
            arms: arms
                .iter()
                .map(|(ls, b)| {
                    (
                        ls.iter().map(|l| subst_expr(l, params)).collect(),
                        subst_stmt(b, params),
                    )
                })
                .collect(),
            default: default.as_ref().map(|d| Box::new(subst_stmt(d, params))),
            wildcard: *wildcard,
        },
        Stmt::Blocking(lv, e) => Stmt::Blocking(subst_lvalue(lv, params), subst_expr(e, params)),
        Stmt::NonBlocking(lv, e) => {
            Stmt::NonBlocking(subst_lvalue(lv, params), subst_expr(e, params))
        }
        Stmt::Nop => Stmt::Nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn parameters_specialize_modules() {
        let src = r#"
        module buf_n #(parameter W = 2) (input [W-1:0] d, output [W-1:0] q);
          assign q = d;
        endmodule
        module top(input [3:0] a, input [7:0] b, output [3:0] x, output [7:0] y);
          buf_n #(.W(4)) u1 (.d(a), .q(x));
          buf_n #(8) u2 (.d(b), .q(y));
          buf_n #(8) u3 (.d(b), .q(y));
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        let design = elaborate(&mods, "top").expect("elaborates");
        // Two specializations of buf_n (W=4 and W=8, memoized) + top.
        assert_eq!(design.modules.len(), 3);
        let names: Vec<&str> = design.modules.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"buf_n#W=4"));
        assert!(names.contains(&"buf_n#W=8"));
        let w4 = design
            .modules
            .iter()
            .find(|m| m.name == "buf_n#W=4")
            .expect("exists");
        assert_eq!(w4.signals[0].width, 4);
    }

    #[test]
    fn memory_and_init() {
        let src = r#"
        module m(input clk);
          reg [7:0] mem [0:15];
          reg [3:0] ptr = 3;
          always @(posedge clk) mem[ptr] <= 0;
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        let design = elaborate(&mods, "m").expect("elaborates");
        let m = &design.modules[design.top];
        let mem = &m.signals[m.signal("mem").expect("mem")];
        assert_eq!(mem.memory, Some((16, 4)));
        assert_eq!(mem.width, 8);
        let ptr = &m.signals[m.signal("ptr").expect("ptr")];
        assert_eq!(ptr.init, Some(3));
    }

    #[test]
    fn const_eval_rules() {
        let p: HashMap<String, u64> = [("W".to_string(), 8u64)].into();
        let e = Expr::Binary(
            BinaryOp::Sub,
            Box::new(Expr::Ident("W".into())),
            Box::new(Expr::num(1)),
        );
        assert_eq!(const_eval(&e, &p), Ok(7));
        assert!(const_eval(&Expr::Ident("missing".into()), &p).is_err());
    }

    #[test]
    fn ceil_log2_table() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
    }

    #[test]
    fn unknown_module_rejected() {
        let mods = parse("module top(input a); ghost g(.x(a)); endmodule").expect("parses");
        assert!(elaborate(&mods, "top").is_err());
    }

    #[test]
    fn output_reg_redeclaration() {
        let src = r#"
        module m(input clk, output reg [3:0] q);
          always @(posedge clk) q <= q + 1;
        endmodule
        "#;
        let mods = parse(src).expect("parses");
        let design = elaborate(&mods, "m").expect("elaborates");
        let m = &design.modules[design.top];
        let q = &m.signals[m.signal("q").expect("q")];
        assert_eq!(q.kind, NetKind::Reg);
        assert_eq!(q.width, 4);
    }
}
