//! Symbolic lowering of the parsed C into a software-netlist.

use crate::parser::{parse_c, CExpr, CField, CFunction, CStmt, CStruct, CUnitAst};
use crate::CfrontError;
use rtlir::{ExprId, Sort, TransitionSystem, VarId};
use std::collections::HashMap;
use v2c::SwProgram;

/// Parses a v2c-emitted C program and recovers the software-netlist.
///
/// # Errors
///
/// Returns an error for C outside the v2c output subset or for
/// programs without the expected `main` loop structure.
pub fn parse_software_netlist(c_text: &str) -> Result<SwProgram, CfrontError> {
    let unit = parse_c(c_text)?;
    Lowerer::run(&unit)
}

fn err(m: impl Into<String>) -> CfrontError {
    CfrontError::new(m)
}

#[derive(Clone)]
enum Slot {
    /// A 64-bit scalar value.
    Val(ExprId),
    /// An array value (element width 64).
    Arr(ExprId),
}

#[derive(Clone, Default)]
struct Env {
    /// Local variables of the current function.
    locals: HashMap<String, Slot>,
    /// Out-parameter values written through pointers (`*o_x = e`).
    outs: HashMap<String, ExprId>,
}

struct Lowerer<'u> {
    unit: &'u CUnitAst,
    ts: TransitionSystem,
    /// Flattened state path (e.g. `u1.mem`) → pool variable.
    state_vars: HashMap<String, VarId>,
    /// Current value of each state slot during execution.
    state_env: HashMap<String, ExprId>,
    structs: HashMap<String, &'u CStruct>,
    functions: HashMap<String, &'u CFunction>,
    asserts: Vec<ExprId>,
    assumes: Vec<ExprId>,
    locals_trace: Vec<(String, ExprId)>,
    input_count: usize,
}

impl<'u> Lowerer<'u> {
    fn run(unit: &'u CUnitAst) -> Result<SwProgram, CfrontError> {
        let structs: HashMap<String, &CStruct> =
            unit.structs.iter().map(|s| (s.name.clone(), s)).collect();
        let functions: HashMap<String, &CFunction> =
            unit.functions.iter().map(|f| (f.name.clone(), f)).collect();
        let main = functions
            .get("main")
            .copied()
            .ok_or_else(|| err("no main function"))?;
        // The first *_init call names the top module.
        let top = main
            .body
            .iter()
            .find_map(|s| match s {
                CStmt::Call(n, _) if n.ends_with("_init") => {
                    Some(n.trim_end_matches("_init").to_string())
                }
                _ => None,
            })
            .ok_or_else(|| err("main does not call an init function"))?;

        let mut lw = Lowerer {
            unit,
            ts: TransitionSystem::new(top.clone()),
            state_vars: HashMap::new(),
            state_env: HashMap::new(),
            structs,
            functions,
            asserts: Vec::new(),
            assumes: Vec::new(),
            locals_trace: Vec::new(),
            input_count: 0,
        };
        let _ = lw.unit;

        // 1. Declare flattened state.
        lw.flatten_struct(&format!("{top}_state"), "")?;

        // 2. Interpret the init function concretely.
        let mut inits: HashMap<String, InitVal> = HashMap::new();
        lw.interp_init(&format!("{top}_init"), "", &mut inits)?;
        let state_paths: Vec<String> = lw.state_vars.keys().cloned().collect();
        for path in state_paths {
            let var = lw.state_vars[&path];
            match inits.get(&path) {
                Some(InitVal::Const(v)) => {
                    let e = lw.ts.pool_mut().constv(64, *v);
                    lw.ts.set_init(var, e);
                }
                Some(InitVal::Mem(writes)) => {
                    let sort = lw.ts.pool().var_sort(var);
                    let Sort::Array {
                        index_width: aw, ..
                    } = sort
                    else {
                        return Err(err("memory init on scalar state"));
                    };
                    let mut e = lw.ts.pool_mut().const_array(aw, 64, 0);
                    let mut keys: Vec<u64> = writes.keys().copied().collect();
                    keys.sort_unstable();
                    for k in keys {
                        let ke = lw.ts.pool_mut().constv(aw, k);
                        let ve = lw.ts.pool_mut().constv(64, writes[&k]);
                        e = lw.ts.pool_mut().write(e, ke, ve);
                    }
                    lw.ts.set_init(var, e);
                }
                Some(InitVal::Nondet) | None => {}
            }
        }

        // 3. Seed the state environment with current-state variables.
        for (path, &var) in &lw.state_vars.clone() {
            let e = lw.ts.pool_mut().var(var);
            lw.state_env.insert(path.clone(), e);
        }

        // 4. Interpret one iteration of main's loop.
        let loop_body = main
            .body
            .iter()
            .find_map(|s| match s {
                CStmt::Loop(b) => Some(b.clone()),
                _ => None,
            })
            .ok_or_else(|| err("main has no while loop"))?;
        // Pre-loop declarations (output temporaries).
        let mut env = Env::default();
        for s in &main.body {
            if let CStmt::Decl {
                name, array: None, ..
            } = s
            {
                let zero = lw.ts.pool_mut().constv(64, 0);
                env.locals.insert(name.clone(), Slot::Val(zero));
            }
        }
        lw.exec_block(&loop_body, &mut env, "")?;

        // 5. Install next-state functions, properties, constraints.
        for (path, &var) in &lw.state_vars.clone() {
            let next = lw.state_env[path];
            lw.ts.set_next(var, next);
        }
        let asserts = lw.asserts.clone();
        for (i, cond) in asserts.into_iter().enumerate() {
            let zero = lw.ts.pool_mut().constv(64, 0);
            let bad = lw.ts.pool_mut().eq(cond, zero);
            lw.ts.add_bad(bad, format!("assert_{i}"));
        }
        let assumes = lw.assumes.clone();
        for cond in assumes {
            let b = lw.truth(cond);
            lw.ts.add_constraint(b);
        }
        Ok(SwProgram {
            ts: lw.ts,
            locals: lw.locals_trace,
        })
    }

    fn flatten_struct(&mut self, sname: &str, prefix: &str) -> Result<(), CfrontError> {
        let st = *self
            .structs
            .get(sname)
            .ok_or_else(|| err(format!("unknown struct '{sname}'")))?;
        for f in &st.fields {
            match f {
                CField::Scalar(n) => {
                    let path = join(prefix, n);
                    let var = self.ts.add_state(path.clone(), Sort::Bv(64));
                    self.state_vars.insert(path, var);
                }
                CField::Array(n, sz) => {
                    let aw = (64 - (sz.max(&2) - 1).leading_zeros()).max(1);
                    let path = join(prefix, n);
                    let var = self.ts.add_state(path.clone(), Sort::array(aw, 64));
                    self.state_vars.insert(path, var);
                }
                CField::Sub(ty, n) => {
                    let child_prefix = join(prefix, n);
                    self.flatten_struct(ty, &child_prefix)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Init interpretation (concrete)
    // ------------------------------------------------------------------

    fn interp_init(
        &mut self,
        fname: &str,
        prefix: &str,
        out: &mut HashMap<String, InitVal>,
    ) -> Result<(), CfrontError> {
        let f = *self
            .functions
            .get(fname)
            .ok_or_else(|| err(format!("unknown function '{fname}'")))?;
        let body = f.body.clone();
        self.interp_init_block(&body, prefix, &mut HashMap::new(), out)
    }

    fn interp_init_block(
        &mut self,
        stmts: &[CStmt],
        prefix: &str,
        loop_env: &mut HashMap<String, u64>,
        out: &mut HashMap<String, InitVal>,
    ) -> Result<(), CfrontError> {
        for s in stmts {
            match s {
                CStmt::Block(b) => self.interp_init_block(b, prefix, loop_env, out)?,
                CStmt::Decl { .. } | CStmt::Ignored => {}
                CStmt::For(var, bound, body) => {
                    for v in 0..*bound {
                        loop_env.insert(var.clone(), v);
                        self.interp_init_block(body, prefix, loop_env, out)?;
                    }
                }
                CStmt::Assign(lhs, rhs) => {
                    let value = const_eval(rhs, loop_env);
                    match lhs {
                        CExpr::SField(fld) => {
                            let path = join(prefix, fld);
                            match value {
                                Some(v) => {
                                    out.insert(path, InitVal::Const(v));
                                }
                                None => {
                                    out.insert(path, InitVal::Nondet);
                                }
                            }
                        }
                        CExpr::Index(base, idx) => {
                            let fld = match &**base {
                                CExpr::SField(f) => f.clone(),
                                _ => return Err(err("unexpected init array target")),
                            };
                            let path = join(prefix, &fld);
                            let i = const_eval(idx, loop_env)
                                .ok_or_else(|| err("non-constant init index"))?;
                            match value {
                                Some(v) => match out
                                    .entry(path)
                                    .or_insert_with(|| InitVal::Mem(HashMap::new()))
                                {
                                    InitVal::Mem(m) => {
                                        m.insert(i, v);
                                    }
                                    other => *other = InitVal::Nondet,
                                },
                                None => {
                                    out.insert(path, InitVal::Nondet);
                                }
                            }
                        }
                        _ => return Err(err("unexpected init target")),
                    }
                }
                CStmt::Call(n, _args) if n.ends_with("_init") => {
                    // Child init: the instance name is the arg `&s->u1`.
                    let inst = match _args.first() {
                        Some(CExpr::AddrOf(b)) => match &**b {
                            CExpr::SField(f) => f.clone(),
                            _ => return Err(err("unexpected init call arg")),
                        },
                        _ => return Err(err("unexpected init call arg")),
                    };
                    let child_prefix = join(prefix, &inst);
                    self.interp_init(n, &child_prefix, out)?;
                }
                other => return Err(err(format!("unsupported statement in init: {other:?}"))),
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Step interpretation (symbolic)
    // ------------------------------------------------------------------

    fn exec_block(
        &mut self,
        stmts: &[CStmt],
        env: &mut Env,
        prefix: &str,
    ) -> Result<(), CfrontError> {
        for s in stmts {
            self.exec_stmt(s, env, prefix)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &CStmt, env: &mut Env, prefix: &str) -> Result<(), CfrontError> {
        match s {
            CStmt::Ignored | CStmt::Loop(_) => Ok(()),
            CStmt::Block(b) => self.exec_block(b, env, prefix),
            CStmt::Decl { name, array, init } => {
                let slot = match array {
                    Some(sz) => {
                        let aw = (64 - (sz.max(&2) - 1).leading_zeros()).max(1);
                        let e = self.ts.pool_mut().const_array(aw, 64, 0);
                        Slot::Arr(e)
                    }
                    None => {
                        let e = match init {
                            Some(i) => self.eval(i, env, prefix)?,
                            None => self.ts.pool_mut().constv(64, 0),
                        };
                        if !name.starts_with("__") {
                            self.locals_trace.push((name.clone(), e));
                        }
                        Slot::Val(e)
                    }
                };
                env.locals.insert(name.clone(), slot);
                Ok(())
            }
            CStmt::Assign(lhs, rhs) => {
                let value = self.eval(rhs, env, prefix)?;
                self.assign(lhs, value, env, prefix)
            }
            CStmt::DerefAssign(name, rhs) => {
                let value = self.eval(rhs, env, prefix)?;
                env.outs.insert(name.clone(), value);
                Ok(())
            }
            CStmt::Assert(e) => {
                let v = self.eval(e, env, prefix)?;
                self.asserts.push(v);
                Ok(())
            }
            CStmt::Assume(e) => {
                let v = self.eval(e, env, prefix)?;
                self.assumes.push(v);
                Ok(())
            }
            CStmt::For(var, bound, body) => {
                for i in 0..*bound {
                    let c = self.ts.pool_mut().constv(64, i);
                    env.locals.insert(var.clone(), Slot::Val(c));
                    self.exec_block(body, env, prefix)?;
                }
                Ok(())
            }
            CStmt::If(c, t, e) => {
                let cv = self.eval(c, env, prefix)?;
                let cond = self.truth(cv);
                let base_env = env.clone();
                let base_state = self.state_env.clone();

                self.exec_block(t, env, prefix)?;
                let then_env = env.clone();
                let then_state = self.state_env.clone();

                *env = base_env.clone();
                self.state_env = base_state.clone();
                self.exec_block(e, env, prefix)?;
                let else_env = env.clone();
                let else_state = self.state_env.clone();

                // Merge.
                *env = self.merge_env(cond, &then_env, &else_env, &base_env);
                self.state_env = self.merge_map(cond, &then_state, &else_state, &base_state);
                Ok(())
            }
            CStmt::Call(n, args) => self.inline_call(n, args, env, prefix),
        }
    }

    fn merge_env(&mut self, cond: ExprId, t: &Env, e: &Env, base: &Env) -> Env {
        let mut out = Env::default();
        let mut keys: Vec<String> = t.locals.keys().cloned().collect();
        for k in e.locals.keys() {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
        }
        for k in keys {
            let slot = match (t.locals.get(&k), e.locals.get(&k)) {
                (Some(Slot::Val(a)), Some(Slot::Val(b))) => {
                    Slot::Val(self.ts.pool_mut().ite(cond, *a, *b))
                }
                (Some(Slot::Arr(a)), Some(Slot::Arr(b))) => {
                    Slot::Arr(self.ts.pool_mut().ite(cond, *a, *b))
                }
                (Some(x), None) => x.clone(),
                (None, Some(x)) => x.clone(),
                _ => continue,
            };
            out.locals.insert(k, slot);
        }
        let mut okeys: Vec<String> = t.outs.keys().cloned().collect();
        for k in e.outs.keys() {
            if !okeys.contains(k) {
                okeys.push(k.clone());
            }
        }
        for k in okeys {
            let v = match (t.outs.get(&k), e.outs.get(&k), base.outs.get(&k)) {
                (Some(a), Some(b), _) => self.ts.pool_mut().ite(cond, *a, *b),
                (Some(a), None, Some(b)) => self.ts.pool_mut().ite(cond, *a, *b),
                (None, Some(b), Some(a)) => self.ts.pool_mut().ite(cond, *a, *b),
                (Some(a), None, None) => *a,
                (None, Some(b), None) => *b,
                _ => continue,
            };
            out.outs.insert(k, v);
        }
        out
    }

    fn merge_map(
        &mut self,
        cond: ExprId,
        t: &HashMap<String, ExprId>,
        e: &HashMap<String, ExprId>,
        base: &HashMap<String, ExprId>,
    ) -> HashMap<String, ExprId> {
        let mut out = base.clone();
        for (k, &tv) in t {
            let ev = e.get(k).or_else(|| base.get(k)).copied().unwrap_or(tv);
            out.insert(k.clone(), self.ts.pool_mut().ite(cond, tv, ev));
        }
        for (k, &ev) in e {
            if !t.contains_key(k) {
                let tv = base.get(k).copied().unwrap_or(ev);
                out.insert(k.clone(), self.ts.pool_mut().ite(cond, tv, ev));
            }
        }
        out
    }

    fn inline_call(
        &mut self,
        name: &str,
        args: &[CExpr],
        env: &mut Env,
        prefix: &str,
    ) -> Result<(), CfrontError> {
        if name.ends_with("_init") {
            return Ok(()); // handled separately
        }
        let f = *self
            .functions
            .get(name)
            .ok_or_else(|| err(format!("unknown function '{name}'")))?;
        let mut child_env = Env::default();
        let mut child_prefix = prefix.to_string();
        // (child param → caller out target)
        let mut out_map: Vec<(String, String)> = Vec::new();
        for ((pname, is_ptr), arg) in f.params.iter().zip(args) {
            if *is_ptr {
                match arg {
                    CExpr::AddrOf(b) => match &**b {
                        CExpr::SField(fld) => {
                            child_prefix = join(prefix, fld);
                        }
                        CExpr::Ident(local) => {
                            out_map.push((pname.clone(), local.clone()));
                        }
                        _ => return Err(err("unsupported pointer argument")),
                    },
                    _ => return Err(err("pointer parameter needs &arg")),
                }
            } else {
                let v = self.eval(arg, env, prefix)?;
                child_env.locals.insert(pname.clone(), Slot::Val(v));
            }
        }
        let body = f.body.clone();
        self.exec_block(&body, &mut child_env, &child_prefix)?;
        // Propagate out-parameter writes into caller locals.
        for (pname, local) in out_map {
            if let Some(&v) = child_env.outs.get(&pname) {
                env.locals.insert(local, Slot::Val(v));
            }
        }
        Ok(())
    }

    fn truth(&mut self, v: ExprId) -> ExprId {
        if self.ts.pool().sort(v).is_bool() {
            return v;
        }
        let zero = self.ts.pool_mut().constv(64, 0);
        self.ts.pool_mut().ne(v, zero)
    }

    fn bool_to_word(&mut self, b: ExprId) -> ExprId {
        self.ts.pool_mut().zext(b, 64)
    }

    fn eval(&mut self, e: &CExpr, env: &mut Env, prefix: &str) -> Result<ExprId, CfrontError> {
        Ok(match e {
            CExpr::Num(n) => self.ts.pool_mut().constv(64, *n),
            CExpr::Nondet => {
                self.input_count += 1;
                let v = self
                    .ts
                    .add_input(format!("in{}", self.input_count), Sort::Bv(64));
                self.ts.pool_mut().var(v)
            }
            CExpr::Ident(n) => match env.locals.get(n) {
                Some(Slot::Val(v)) => *v,
                Some(Slot::Arr(_)) => return Err(err(format!("array '{n}' used as scalar"))),
                None => return Err(err(format!("unknown identifier '{n}'"))),
            },
            CExpr::SField(f) => {
                let path = join(prefix, f);
                *self
                    .state_env
                    .get(&path)
                    .ok_or_else(|| err(format!("unknown state field '{path}'")))?
            }
            CExpr::Index(base, idx) => {
                let arr = self.eval_array(base, env, prefix)?;
                let i = self.eval(idx, env, prefix)?;
                let Sort::Array {
                    index_width: aw, ..
                } = self.ts.pool().sort(arr)
                else {
                    return Err(err("indexing a non-array"));
                };
                let ii = self.ts.pool_mut().resize_zext(i, aw);
                self.ts.pool_mut().read(arr, ii)
            }
            CExpr::Unary(op, a) => {
                let av = self.eval(a, env, prefix)?;
                match *op {
                    "~" => self.ts.pool_mut().not(av),
                    "-" => self.ts.pool_mut().neg(av),
                    "!" => {
                        let zero = self.ts.pool_mut().constv(64, 0);
                        let b = self.ts.pool_mut().eq(av, zero);
                        self.bool_to_word(b)
                    }
                    _ => return Err(err(format!("unary '{op}'"))),
                }
            }
            CExpr::Binary(op, a, b) => {
                let av = self.eval(a, env, prefix)?;
                let bv = self.eval(b, env, prefix)?;
                let p = self.ts.pool_mut();
                match *op {
                    "+" => p.add(av, bv),
                    "-" => p.sub(av, bv),
                    "*" => p.mul(av, bv),
                    "/" => p.udiv(av, bv),
                    "%" => p.urem(av, bv),
                    "&" => p.and(av, bv),
                    "|" => p.or(av, bv),
                    "^" => p.xor(av, bv),
                    "<<" => p.shl(av, bv),
                    ">>" => p.lshr(av, bv),
                    "==" => {
                        let c = p.eq(av, bv);
                        self.bool_to_word(c)
                    }
                    "!=" => {
                        let c = p.ne(av, bv);
                        self.bool_to_word(c)
                    }
                    "<" => {
                        let c = p.ult(av, bv);
                        self.bool_to_word(c)
                    }
                    "<=" => {
                        let c = p.ule(av, bv);
                        self.bool_to_word(c)
                    }
                    ">" => {
                        let c = p.ugt(av, bv);
                        self.bool_to_word(c)
                    }
                    ">=" => {
                        let c = p.uge(av, bv);
                        self.bool_to_word(c)
                    }
                    "&&" => {
                        let ta = self.truth(av);
                        let tb = self.truth(bv);
                        let c = self.ts.pool_mut().and(ta, tb);
                        self.bool_to_word(c)
                    }
                    "||" => {
                        let ta = self.truth(av);
                        let tb = self.truth(bv);
                        let c = self.ts.pool_mut().or(ta, tb);
                        self.bool_to_word(c)
                    }
                    other => return Err(err(format!("binary '{other}'"))),
                }
            }
            CExpr::Ternary(c, a, b) => {
                let cv = self.eval(c, env, prefix)?;
                let cond = self.truth(cv);
                let av = self.eval(a, env, prefix)?;
                let bv = self.eval(b, env, prefix)?;
                self.ts.pool_mut().ite(cond, av, bv)
            }
            CExpr::Parity(a) => {
                let av = self.eval(a, env, prefix)?;
                let r = self.ts.pool_mut().redxor(av);
                self.bool_to_word(r)
            }
            CExpr::AddrOf(_) => return Err(err("address-of outside call arguments")),
        })
    }

    fn eval_array(
        &mut self,
        e: &CExpr,
        env: &mut Env,
        prefix: &str,
    ) -> Result<ExprId, CfrontError> {
        match e {
            CExpr::Ident(n) => match env.locals.get(n) {
                Some(Slot::Arr(a)) => Ok(*a),
                _ => Err(err(format!("'{n}' is not a local array"))),
            },
            CExpr::SField(f) => {
                let path = join(prefix, f);
                self.state_env
                    .get(&path)
                    .copied()
                    .ok_or_else(|| err(format!("unknown state array '{path}'")))
            }
            _ => Err(err("unsupported array expression")),
        }
    }

    fn assign(
        &mut self,
        lhs: &CExpr,
        value: ExprId,
        env: &mut Env,
        prefix: &str,
    ) -> Result<(), CfrontError> {
        match lhs {
            CExpr::Ident(n) => {
                env.locals.insert(n.clone(), Slot::Val(value));
                Ok(())
            }
            CExpr::SField(f) => {
                let path = join(prefix, f);
                if !self.state_env.contains_key(&path) {
                    return Err(err(format!("assignment to unknown state '{path}'")));
                }
                self.state_env.insert(path, value);
                Ok(())
            }
            CExpr::Index(base, idx) => {
                let arr = self.eval_array(base, env, prefix)?;
                let i = self.eval(idx, env, prefix)?;
                let Sort::Array {
                    index_width: aw, ..
                } = self.ts.pool().sort(arr)
                else {
                    return Err(err("indexing a non-array"));
                };
                let ii = self.ts.pool_mut().resize_zext(i, aw);
                let w = self.ts.pool_mut().write(arr, ii, value);
                // Store back.
                match &**base {
                    CExpr::Ident(n) => {
                        env.locals.insert(n.clone(), Slot::Arr(w));
                    }
                    CExpr::SField(f) => {
                        let path = join(prefix, f);
                        self.state_env.insert(path, w);
                    }
                    _ => return Err(err("unsupported array assignment base")),
                }
                Ok(())
            }
            other => Err(err(format!("unsupported assignment target {other:?}"))),
        }
    }
}

enum InitVal {
    Const(u64),
    Mem(HashMap<u64, u64>),
    Nondet,
}

fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// Concrete evaluation for init expressions (`None` = nondet-tainted).
fn const_eval(e: &CExpr, loop_env: &HashMap<String, u64>) -> Option<u64> {
    Some(match e {
        CExpr::Num(n) => *n,
        CExpr::Ident(n) => *loop_env.get(n)?,
        CExpr::Nondet => return None,
        CExpr::Binary("&", a, b) => const_eval(a, loop_env)? & const_eval(b, loop_env)?,
        CExpr::Binary("+", a, b) => const_eval(a, loop_env)?.wrapping_add(const_eval(b, loop_env)?),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rtlir::{Simulator, Value};

    /// Round-trip check: emit C for a Verilog design, parse it back,
    /// and co-simulate the recovered software-netlist against the
    /// directly synthesized one.
    fn roundtrip(src: &str, top: &str, cycles: u64) {
        let direct = vfront::compile(src, top).expect("verilog compiles");
        let mods = vfront::parse(src).expect("parses");
        let design = vfront::elaborate(&mods, top).expect("elaborates");
        let c_text = v2c::emit_c(&design, v2c::MainStyle::Verifier).expect("emits");
        let parsed = parse_software_netlist(&c_text)
            .unwrap_or_else(|e| panic!("lowering failed: {e}\n{c_text}"));

        assert_eq!(
            parsed.ts.bads().len(),
            direct.bads().len(),
            "same number of properties"
        );

        // Drive both with the same (masked) input values.
        let mut rng = StdRng::seed_from_u64(0x0C0FFEE);
        let d_sorts: Vec<u32> = direct
            .inputs()
            .iter()
            .map(|&v| direct.pool().var_sort(v).width())
            .collect();
        let mut dsim = Simulator::new(&direct);
        let mut psim = Simulator::new(&parsed.ts);
        for cycle in 0..cycles {
            let vals: Vec<u64> = d_sorts
                .iter()
                .map(|&w| rng.gen::<u64>() & rtlir::value::mask(w))
                .collect();
            let d_in: Vec<Value> = vals
                .iter()
                .zip(&d_sorts)
                .map(|(&v, &w)| Value::bv(w, v))
                .collect();
            // The parsed program's inputs are 64-bit nondets, in the
            // same order, masked inside the program.
            let p_in: Vec<Value> = vals.iter().map(|&v| Value::bv(64, v)).collect();
            let d_bads = dsim.bad_states_with_inputs(&d_in);
            let p_bads = psim.bad_states_with_inputs(&p_in);
            assert_eq!(
                d_bads.iter().any(|&b| b),
                p_bads.iter().any(|&b| b),
                "cycle {cycle}: assertion flags diverge"
            );
            dsim.step(&d_in);
            psim.step(&p_in);
        }
    }

    #[test]
    fn counter_roundtrip() {
        roundtrip(
            r#"
            module counter(input clk, input rst, output wrap);
              reg [3:0] c;
              initial c = 0;
              always @(posedge clk) if (rst) c <= 0; else c <= c + 1;
              assign wrap = (c == 4'hF);
              assert property (c != 4'd13);
            endmodule
            "#,
            "counter",
            100,
        );
    }

    #[test]
    fn hierarchy_roundtrip() {
        roundtrip(
            r#"
            module acc(input clk, input [3:0] a, output [3:0] y);
              reg [3:0] r;
              initial r = 0;
              always @(posedge clk) r <= r + a;
              assign y = r;
              assert property (r != 4'd11);
            endmodule
            module top(input clk, input [3:0] x);
              wire [3:0] s1;
              wire [3:0] s2;
              acc u1 (.clk(clk), .a(x), .y(s1));
              acc u2 (.clk(clk), .a(s1), .y(s2));
              assert property (s2 != 4'd7);
            endmodule
            "#,
            "top",
            150,
        );
    }

    #[test]
    fn memory_roundtrip() {
        roundtrip(
            r#"
            module m(input clk, input we, input [2:0] wa, input [2:0] ra,
                     input [7:0] d);
              reg [7:0] mem [0:7];
              reg [7:0] last;
              initial last = 0;
              always @(posedge clk) begin
                if (we) mem[wa] <= d;
                last <= mem[ra];
              end
              assert property (last != 8'hEE);
            endmodule
            "#,
            "m",
            200,
        );
    }

    #[test]
    fn benchmarks_roundtrip() {
        // Every paper benchmark must survive the full loop:
        // Verilog -> C text -> parsed software-netlist ≈ direct.
        for b in bmarks_list() {
            roundtrip(b.0, b.1, 80);
        }
    }

    fn bmarks_list() -> Vec<(&'static str, &'static str)> {
        vec![
            (include_str!("../../../benchmarks/fifo.v"), "fifo"),
            (include_str!("../../../benchmarks/vending.v"), "vending"),
            (include_str!("../../../benchmarks/daio.v"), "daio"),
            (include_str!("../../../benchmarks/heap.v"), "heap"),
        ]
    }
}
