//! Frontend for the ANSI-C subset emitted by v2c.
//!
//! The paper's deployment path hands the *C text* to the software
//! analyzers (CBMC, CPAChecker, … all parse C); this crate plays that
//! role for our analyzers: it parses the software-netlist C program
//! and recovers a [`v2c::SwProgram`] by symbolically executing the
//! `main` loop — function inlining, struct flattening, loop unrolling
//! and all.
//!
//! Together with the direct path (`v2c::software_netlist`) this closes
//! the translation loop; the test-suite checks that the *parsed* and
//! the *direct* software-netlists are simulation-equivalent.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "module top(input clk, input i);
//!              reg r; initial r = 0;
//!              always @(posedge clk) r <= i;
//!              assert property (!(r && i));
//!            endmodule";
//! let modules = vfront::parse(src)?;
//! let design = vfront::elaborate(&modules, "top")?;
//! let c_text = v2c::emit_c(&design, v2c::MainStyle::Verifier)?;
//! let prog = cfront::parse_software_netlist(&c_text)?;
//! assert_eq!(prog.ts.states().len(), 1);
//! assert_eq!(prog.ts.bads().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod interp;
mod lexer;
mod parser;

pub use interp::parse_software_netlist;

use std::error::Error;
use std::fmt;

/// An error from parsing or lowering the C software-netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfrontError {
    /// Human-readable description.
    pub message: String,
}

impl CfrontError {
    pub(crate) fn new(message: impl Into<String>) -> CfrontError {
        CfrontError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CfrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cfront: {}", self.message)
    }
}

impl Error for CfrontError {}
