//! Parser for the v2c C subset: structs, functions, statements.

use crate::lexer::{lex, CTok};
use crate::CfrontError;

/// A struct field.
#[derive(Clone, Debug, PartialEq)]
pub enum CField {
    /// `uint64_t name;`
    Scalar(String),
    /// `uint64_t name[N];`
    Array(String, u64),
    /// `struct other_state name;`
    Sub(String, String), // (struct type, field name)
}

/// A parsed struct.
#[derive(Clone, Debug, PartialEq)]
pub struct CStruct {
    /// Type name (without `_state` manipulation).
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<CField>,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    /// Integer literal.
    Num(u64),
    /// Local / parameter reference.
    Ident(String),
    /// `s->field`
    SField(String),
    /// `base[index]` (base is an lvalue-ish expression).
    Index(Box<CExpr>, Box<CExpr>),
    /// Unary `~ ! -` (minus only as `0 - x` normally).
    Unary(&'static str, Box<CExpr>),
    /// Binary operator.
    Binary(&'static str, Box<CExpr>, Box<CExpr>),
    /// `c ? a : b`
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// `__builtin_parityll(e)`
    Parity(Box<CExpr>),
    /// `__VERIFIER_nondet_ulonglong()`
    Nondet,
    /// `&lv` (only as a call argument).
    AddrOf(Box<CExpr>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum CStmt {
    /// `uint64_t name = e;` / `uint64_t name[N];` / `int name;`
    Decl {
        /// Declared name.
        name: String,
        /// Array size, if declared as an array.
        array: Option<u64>,
        /// Initializer.
        init: Option<CExpr>,
    },
    /// `lhs = rhs;` — lhs is Ident/SField/Index/Deref.
    Assign(CExpr, CExpr),
    /// `*name = rhs;`
    DerefAssign(String, CExpr),
    /// `if (c) {t} [else {e}]`
    If(CExpr, Vec<CStmt>, Vec<CStmt>),
    /// `for (var = 0; var < N; var++) body` (unrolled during lowering).
    For(String, u64, Vec<CStmt>),
    /// `name(args);`
    Call(String, Vec<CExpr>),
    /// `assert(e);`
    Assert(CExpr),
    /// `__VERIFIER_assume(e);`
    Assume(CExpr),
    /// `while (1) { body }`
    Loop(Vec<CStmt>),
    /// `{ body }`
    Block(Vec<CStmt>),
    /// `return e;` / bare expression statements — ignored.
    Ignored,
}

/// A parsed function.
#[derive(Clone, Debug, PartialEq)]
pub struct CFunction {
    /// Function name.
    pub name: String,
    /// Parameters: `(name, is_pointer)`; the leading state pointer is
    /// included.
    pub params: Vec<(String, bool)>,
    /// Body statements.
    pub body: Vec<CStmt>,
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default)]
pub struct CUnitAst {
    /// Structs by name.
    pub structs: Vec<CStruct>,
    /// Functions by name.
    pub functions: Vec<CFunction>,
}

/// Parses the emitted C text.
///
/// # Errors
///
/// Returns a message for constructs outside the v2c output subset.
pub fn parse_c(src: &str) -> Result<CUnitAst, CfrontError> {
    let toks = lex(src)?;
    let mut p = P { t: toks, i: 0 };
    let mut unit = CUnitAst::default();
    while !p.at(&CTok::Eof) {
        if p.eat_ident("typedef") {
            p.expect_ident("struct")?;
            let _tag = p.ident()?;
            p.expect_sym("{")?;
            let mut fields = Vec::new();
            while !p.eat_sym("}") {
                if p.eat_ident("uint64_t") {
                    let n = p.ident()?;
                    if p.eat_sym("[") {
                        let sz = p.num()?;
                        p.expect_sym("]")?;
                        p.expect_sym(";")?;
                        fields.push(CField::Array(n, sz));
                    } else {
                        p.expect_sym(";")?;
                        fields.push(CField::Scalar(n));
                    }
                } else if p.eat_ident("struct") {
                    let ty = p.ident()?;
                    let n = p.ident()?;
                    p.expect_sym(";")?;
                    fields.push(CField::Sub(ty, n));
                } else {
                    return p.err("unexpected struct field");
                }
            }
            let name = p.ident()?;
            p.expect_sym(";")?;
            unit.structs.push(CStruct { name, fields });
            continue;
        }
        if p.eat_ident("extern") {
            p.skip_to_semi()?;
            continue;
        }
        // `static int __bad[N];`
        if p.peek_ident("static") && p.peek2_ident("int") {
            p.skip_to_semi()?;
            continue;
        }
        // Function: [static] void|int name(params) { body }
        p.eat_ident("static");
        if !(p.eat_ident("void") || p.eat_ident("int")) {
            return p.err("expected function definition");
        }
        let name = p.ident()?;
        p.expect_sym("(")?;
        let mut params = Vec::new();
        if !p.eat_sym(")") {
            loop {
                if p.eat_ident("void") {
                    break;
                }
                // Types: uint64_t | const X_state * | X_state * | int
                p.eat_ident("const");
                let _ty = p.ident()?; // uint64_t / <x>_state / int
                let is_ptr = p.eat_sym("*");
                let pname = p.ident()?;
                params.push((pname, is_ptr));
                if !p.eat_sym(",") {
                    break;
                }
            }
            p.expect_sym(")")?;
        }
        let body = p.block()?;
        unit.functions.push(CFunction { name, params, body });
    }
    Ok(unit)
}

struct P {
    t: Vec<CTok>,
    i: usize,
}

impl P {
    fn peek(&self) -> &CTok {
        &self.t[self.i]
    }
    fn at(&self, t: &CTok) -> bool {
        self.peek() == t
    }
    fn bump(&mut self) -> CTok {
        let t = self.t[self.i].clone();
        if self.i + 1 < self.t.len() {
            self.i += 1;
        }
        t
    }
    fn err<T>(&self, m: &str) -> Result<T, CfrontError> {
        Err(CfrontError::new(format!("{m}, found {:?}", self.peek())))
    }
    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), CTok::Sym(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_sym(&mut self, s: &str) -> Result<(), CfrontError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            self.err(&format!("expected '{s}'"))
        }
    }
    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), CTok::Ident(x) if x == s)
    }
    fn peek2_ident(&self, s: &str) -> bool {
        matches!(self.t.get(self.i + 1), Some(CTok::Ident(x)) if x == s)
    }
    fn eat_ident(&mut self, s: &str) -> bool {
        if self.peek_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_ident(&mut self, s: &str) -> Result<(), CfrontError> {
        if self.eat_ident(s) {
            Ok(())
        } else {
            self.err(&format!("expected '{s}'"))
        }
    }
    fn ident(&mut self) -> Result<String, CfrontError> {
        match self.peek().clone() {
            CTok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }
    fn num(&mut self) -> Result<u64, CfrontError> {
        match *self.peek() {
            CTok::Num(n) => {
                self.bump();
                Ok(n)
            }
            _ => self.err("expected number"),
        }
    }
    fn skip_to_semi(&mut self) -> Result<(), CfrontError> {
        while !self.at(&CTok::Eof) {
            if self.eat_sym(";") {
                return Ok(());
            }
            self.bump();
        }
        self.err("unterminated declaration")
    }

    fn block(&mut self) -> Result<Vec<CStmt>, CfrontError> {
        self.expect_sym("{")?;
        let mut out = Vec::new();
        while !self.eat_sym("}") {
            if self.at(&CTok::Eof) {
                return self.err("unterminated block");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<CStmt, CfrontError> {
        // Nested block (memory copy loops are wrapped in braces).
        if matches!(self.peek(), CTok::Sym("{")) {
            return Ok(CStmt::Block(self.block()?));
        }
        if self.eat_ident("uint64_t") || self.eat_ident("int") {
            let name = self.ident()?;
            if self.eat_sym("[") {
                let sz = self.num()?;
                self.expect_sym("]")?;
                self.expect_sym(";")?;
                return Ok(CStmt::Decl {
                    name,
                    array: Some(sz),
                    init: None,
                });
            }
            let init = if self.eat_sym("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_sym(";")?;
            return Ok(CStmt::Decl {
                name,
                array: None,
                init,
            });
        }
        if self.eat_ident("unsigned") {
            // `unsigned long long __in_x;` (cosim) — treat as decl.
            while self.eat_ident("long") {}
            let name = self.ident()?;
            self.expect_sym(";")?;
            return Ok(CStmt::Decl {
                name,
                array: None,
                init: None,
            });
        }
        if self.eat_ident("if") {
            self.expect_sym("(")?;
            let c = self.expr()?;
            self.expect_sym(")")?;
            let t = if matches!(self.peek(), CTok::Sym("{")) {
                self.block()?
            } else {
                vec![self.stmt()?]
            };
            let e = if self.eat_ident("else") {
                if self.peek_ident("if") {
                    vec![self.stmt()?]
                } else if matches!(self.peek(), CTok::Sym("{")) {
                    self.block()?
                } else {
                    vec![self.stmt()?]
                }
            } else {
                Vec::new()
            };
            return Ok(CStmt::If(c, t, e));
        }
        if self.eat_ident("for") {
            // for (var = 0; var < N; var++) stmt|block
            self.expect_sym("(")?;
            let var = self.ident()?;
            self.expect_sym("=")?;
            let _ = self.num()?;
            self.expect_sym(";")?;
            let v2 = self.ident()?;
            if v2 != var {
                return self.err("irregular for loop");
            }
            self.expect_sym("<")?;
            let bound = self.num()?;
            self.expect_sym(";")?;
            let v3 = self.ident()?;
            if v3 != var {
                return self.err("irregular for loop");
            }
            self.expect_sym("++")?;
            self.expect_sym(")")?;
            let body = if matches!(self.peek(), CTok::Sym("{")) {
                self.block()?
            } else {
                vec![self.stmt()?]
            };
            return Ok(CStmt::For(var, bound, body));
        }
        if self.eat_ident("while") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let body = self.block()?;
            // Only `while (1)` (verifier harness) is a real loop;
            // anything else (cosim scanf loop) is also treated as the
            // main loop.
            let _ = cond;
            return Ok(CStmt::Loop(body));
        }
        if self.eat_ident("return") {
            self.skip_to_semi()?;
            return Ok(CStmt::Ignored);
        }
        if self.eat_ident("assert") {
            self.expect_sym("(")?;
            let e = self.expr()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(CStmt::Assert(e));
        }
        if self.eat_ident("__VERIFIER_assume") {
            self.expect_sym("(")?;
            let e = self.expr()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(CStmt::Assume(e));
        }
        // `(void)(e);` — ignored.
        if matches!(self.peek(), CTok::Sym("(")) {
            self.skip_to_semi()?;
            return Ok(CStmt::Ignored);
        }
        // `*o_x = e;`
        if self.eat_sym("*") {
            let name = self.ident()?;
            self.expect_sym("=")?;
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(CStmt::DerefAssign(name, e));
        }
        // Assignment or call, both start with an identifier.
        let name = self.ident()?;
        // `counter_state s;` — a struct variable declaration.
        if matches!(self.peek(), CTok::Ident(_)) {
            let _var = self.ident()?;
            self.expect_sym(";")?;
            let _ = name;
            return Ok(CStmt::Ignored);
        }
        if matches!(self.peek(), CTok::Sym("(")) {
            self.bump();
            let mut args = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            self.expect_sym(";")?;
            // printf/fflush/scanf calls in cosim mains are ignored.
            if name == "printf" || name == "fflush" || name == "scanf" {
                return Ok(CStmt::Ignored);
            }
            return Ok(CStmt::Call(name, args));
        }
        // lvalue: name | name->f | name[idx] | s->f[idx]
        let mut lv = if self.eat_sym("->") {
            let f = self.ident()?;
            CExpr::SField(f)
        } else {
            CExpr::Ident(name.clone())
        };
        while self.eat_sym("[") {
            let i = self.expr()?;
            self.expect_sym("]")?;
            lv = CExpr::Index(Box::new(lv), Box::new(i));
        }
        self.expect_sym("=")?;
        let rhs = self.expr()?;
        self.expect_sym(";")?;
        Ok(CStmt::Assign(lv, rhs))
    }

    // ---- expressions (C precedence, the emitted subset) ----

    fn expr(&mut self) -> Result<CExpr, CfrontError> {
        self.ternary()
    }
    fn ternary(&mut self) -> Result<CExpr, CfrontError> {
        let c = self.bin(0)?;
        if self.eat_sym("?") {
            let a = self.ternary()?;
            self.expect_sym(":")?;
            let b = self.ternary()?;
            return Ok(CExpr::Ternary(Box::new(c), Box::new(a), Box::new(b)));
        }
        Ok(c)
    }
    fn level_ops(level: usize) -> &'static [&'static str] {
        // C precedence, loosest first.
        const TABLE: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        TABLE.get(level).copied().unwrap_or(&[])
    }
    fn bin(&mut self, level: usize) -> Result<CExpr, CfrontError> {
        if level >= 10 {
            return self.unary();
        }
        let mut lhs = self.bin(level + 1)?;
        loop {
            let op = match self.peek() {
                CTok::Sym(s) if Self::level_ops(level).contains(s) => *s,
                _ => break,
            };
            self.bump();
            let rhs = self.bin(level + 1)?;
            lhs = CExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }
    fn unary(&mut self) -> Result<CExpr, CfrontError> {
        for op in ["~", "!", "-"] {
            if matches!(self.peek(), CTok::Sym(s) if *s == op) {
                self.bump();
                let a = self.unary()?;
                return Ok(CExpr::Unary(
                    match op {
                        "~" => "~",
                        "!" => "!",
                        _ => "-",
                    },
                    Box::new(a),
                ));
            }
        }
        if self.eat_sym("&") {
            let a = self.unary()?;
            return Ok(CExpr::AddrOf(Box::new(a)));
        }
        self.postfix()
    }
    fn postfix(&mut self) -> Result<CExpr, CfrontError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_sym("->") {
                let f = self.ident()?;
                // Only `s->field` appears; the base must be `s`.
                match e {
                    CExpr::Ident(ref n) if n == "s" => e = CExpr::SField(f),
                    _ => {
                        // `&s->u1` inside AddrOf: base handled there.
                        e = CExpr::SField(f);
                    }
                }
                continue;
            }
            if self.eat_sym("[") {
                let i = self.expr()?;
                self.expect_sym("]")?;
                e = CExpr::Index(Box::new(e), Box::new(i));
                continue;
            }
            break;
        }
        Ok(e)
    }
    fn primary(&mut self) -> Result<CExpr, CfrontError> {
        match self.peek().clone() {
            CTok::Num(n) => {
                self.bump();
                Ok(CExpr::Num(n))
            }
            CTok::Sym("(") => {
                self.bump();
                // Cast `(uint64_t)` / `(unsigned long long)`?
                if self.peek_ident("uint64_t") {
                    self.bump();
                    self.expect_sym(")")?;
                    return self.unary();
                }
                if self.peek_ident("unsigned") {
                    while !self.eat_sym(")") {
                        self.bump();
                    }
                    return self.unary();
                }
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            CTok::Ident(name) => {
                self.bump();
                if name == "__builtin_parityll" {
                    self.expect_sym("(")?;
                    let e = self.expr()?;
                    self.expect_sym(")")?;
                    return Ok(CExpr::Parity(Box::new(e)));
                }
                if name == "__VERIFIER_nondet_ulonglong" {
                    self.expect_sym("(")?;
                    self.expect_sym(")")?;
                    return Ok(CExpr::Nondet);
                }
                Ok(CExpr::Ident(name))
            }
            other => Err(CfrontError::new(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_emitted_counter() {
        let src = r#"
        module counter(input clk, input rst, output wrap);
          reg [3:0] c;
          initial c = 0;
          always @(posedge clk) if (rst) c <= 0; else c <= c + 1;
          assign wrap = (c == 4'hF);
          assert property (c <= 4'hF);
        endmodule
        "#;
        let mods = vfront::parse(src).expect("verilog");
        let design = vfront::elaborate(&mods, "counter").expect("elab");
        let c = v2c::emit_c(&design, v2c::MainStyle::Verifier).expect("emit");
        let unit = parse_c(&c).unwrap_or_else(|e| panic!("parse failed: {e}\n{c}"));
        assert_eq!(unit.structs.len(), 1);
        assert!(unit.functions.iter().any(|f| f.name == "counter_step"));
        assert!(unit.functions.iter().any(|f| f.name == "main"));
        let main = unit
            .functions
            .iter()
            .find(|f| f.name == "main")
            .expect("main");
        assert!(main.body.iter().any(|s| matches!(s, CStmt::Loop(_))));
    }
}
