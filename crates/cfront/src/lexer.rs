//! Lexer for the v2c C subset.

use crate::CfrontError;

/// A C token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CTok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (suffixes stripped).
    Num(u64),
    /// Operator / punctuation.
    Sym(&'static str),
    /// End of input.
    Eof,
}

const SYMBOLS: &[&str] = &[
    "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "{", "}", "(", ")", "[", "]",
    ";", ",", "?", ":", "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", ".",
];

/// Tokenizes the C text, skipping comments and preprocessor lines.
///
/// # Errors
///
/// Returns an error on characters outside the emitted subset.
pub fn lex(src: &str) -> Result<Vec<CTok>, CfrontError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c == '\n' || c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '#' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                i += 1;
            }
            i += 2;
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '"' {
            // String literal (printf formats in cosim mode): skip.
            i += 1;
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
            out.push(CTok::Sym("\"str\""));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(CTok::Ident(src[start..i].to_string()));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let radix = if c == '0' && i + 1 < b.len() && (b[i + 1] == b'x' || b[i + 1] == b'X') {
                i += 2;
                16
            } else {
                10
            };
            let dstart = if radix == 16 { i } else { start };
            while i < b.len() && (b[i] as char).is_ascii_hexdigit() {
                i += 1;
            }
            let text = &src[dstart..i];
            let value = u64::from_str_radix(text, radix)
                .map_err(|_| CfrontError::new(format!("bad literal '{text}'")))?;
            // Swallow integer suffixes.
            while i < b.len() && matches!(b[i], b'u' | b'U' | b'l' | b'L') {
                i += 1;
            }
            out.push(CTok::Num(value));
            continue;
        }
        let rest = &src[i..];
        let mut hit = false;
        for &s in SYMBOLS {
            if rest.starts_with(s) {
                out.push(CTok::Sym(s));
                i += s.len();
                hit = true;
                break;
            }
        }
        if !hit {
            return Err(CfrontError::new(format!("unexpected character '{c}'")));
        }
    }
    out.push(CTok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = lex("uint64_t x = 0xffULL; /* c */ s->mem[3] // y\n #include <x>\n + 10").unwrap();
        assert!(t.contains(&CTok::Ident("uint64_t".into())));
        assert!(t.contains(&CTok::Num(255)));
        assert!(t.contains(&CTok::Sym("->")));
        assert!(t.contains(&CTok::Num(10)));
        assert!(!t
            .iter()
            .any(|x| matches!(x, CTok::Ident(s) if s == "include")));
    }
}
