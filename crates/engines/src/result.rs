//! Shared result, trace and resource-budget types for all verification
//! engines (hardware-level in this crate, software-level in `swan`).

use rtlir::TransitionSystem;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an engine gave up without an answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Unknown {
    /// The wall-clock budget ran out.
    Timeout,
    /// The bound (k, frame count) limit was reached without an answer.
    BoundReached,
    /// A SAT-query conflict budget ran out before the wall clock did.
    ConflictLimit,
    /// The run was cooperatively cancelled (e.g. another portfolio
    /// engine produced a definite verdict first).
    Cancelled,
    /// The technique is inherently incomplete here (e.g. abstract
    /// interpretation raising a possible false alarm). Carries a short
    /// explanation.
    Inconclusive(String),
    /// The engine produced a definite verdict but its witness failed
    /// the independent re-check ([`crate::certify`]); the verdict was
    /// demoted rather than trusted. Carries the checker's reason.
    CertificateFailed(String),
    /// The engine panicked; the portfolio isolated the crash with
    /// `catch_unwind` and degraded to its remaining seats. Carries the
    /// crashed engine's name.
    Crashed(String),
}

impl fmt::Display for Unknown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unknown::Timeout => write!(f, "timeout"),
            Unknown::BoundReached => write!(f, "bound reached"),
            Unknown::ConflictLimit => write!(f, "conflict limit"),
            Unknown::Cancelled => write!(f, "cancelled"),
            Unknown::Inconclusive(why) => write!(f, "inconclusive: {why}"),
            Unknown::CertificateFailed(why) => write!(f, "certificate failed: {why}"),
            Unknown::Crashed(who) => write!(f, "crashed: {who}"),
        }
    }
}

impl From<satb::Interrupt> for Unknown {
    /// Maps the solver-level interrupt onto the engine-level reason, so
    /// engines report *why* a query gave up instead of collapsing every
    /// `SolveResult::Unknown` to a timeout.
    fn from(i: satb::Interrupt) -> Unknown {
        match i {
            satb::Interrupt::ConflictLimit => Unknown::ConflictLimit,
            satb::Interrupt::Timeout => Unknown::Timeout,
            satb::Interrupt::Cancelled => Unknown::Cancelled,
            satb::Interrupt::ProofLimit => Unknown::Inconclusive("proof memory cap".to_string()),
        }
    }
}

/// A bit-level counterexample trace.
///
/// `states[i]` is the latch assignment at cycle `i` and `inputs[i]` the
/// primary-input assignment applied in cycle `i`; the final state
/// satisfies the violated bad property. Bit order matches
/// [`aig::AigSystem`]'s latch/input order for the checked design.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Latch values per cycle (length = cycles + 1).
    pub states: Vec<Vec<bool>>,
    /// Input values per cycle (length = cycles + 1; the last entry is
    /// the input vector under which the property fires, when it is
    /// input-dependent).
    pub inputs: Vec<Vec<bool>>,
    /// Index of the violated bad property.
    pub bad_index: usize,
}

impl Trace {
    /// Number of clock cycles from reset to the violation.
    pub fn length(&self) -> usize {
        self.states.len().saturating_sub(1)
    }

    /// Replays the trace on the bit-level netlist and checks that it
    /// ends in the reported bad state. Returns `false` for traces that
    /// do not actually witness a violation — engines are tested with
    /// this, closing the loop on counterexample soundness.
    pub fn replays_on(&self, sys: &aig::AigSystem) -> bool {
        if self.states.is_empty() {
            return false;
        }
        // Initial state must agree with initialized latches.
        for (i, latch) in sys.latches.iter().enumerate() {
            if let Some(init) = latch.init {
                if self.states[0][i] != init {
                    return false;
                }
            }
        }
        let mut state = self.states[0].clone();
        for c in 0..self.states.len() {
            let empty = Vec::new();
            let inp = self.inputs.get(c).unwrap_or(&empty);
            if state != self.states[c] {
                return false;
            }
            if c + 1 == self.states.len() {
                let bads = sys.bads_in(&state, inp);
                return bads.get(self.bad_index).copied().unwrap_or(false);
            }
            state = sys.step(&state, inp);
        }
        false
    }
}

/// The answer of a verification engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All bad states are unreachable.
    Safe,
    /// A bad state is reachable; the trace witnesses it.
    Unsafe(Trace),
    /// No answer within the budget.
    Unknown(Unknown),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe)
    }
    /// Whether the verdict is [`Verdict::Unsafe`].
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe => write!(f, "SAFE"),
            Verdict::Unsafe(t) => write!(f, "UNSAFE (cycle {})", t.length()),
            Verdict::Unknown(u) => write!(f, "UNKNOWN ({u})"),
        }
    }
}

/// Statistics reported by every engine.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Final bound: the k of k-induction/BMC, frame count of PDR, or
    /// iteration count of fixpoint engines.
    pub depth: u32,
    /// Number of SAT solver queries issued.
    pub sat_queries: u64,
    /// Total conflicts across all SAT queries.
    pub conflicts: u64,
    /// Total decisions across all SAT queries.
    pub decisions: u64,
    /// Total literal propagations across all SAT queries.
    pub propagations: u64,
    /// Decisions taken inside a per-query domain
    /// ([`satb::Solver::solve_with_domain`]).
    pub domain_decisions: u64,
    /// Heap pops skipped because the variable was outside the query
    /// domain (a direct measure of the branching work scoping avoids).
    pub domain_skipped: u64,
    /// Conflicts resolved by a one-level chronological backtrack
    /// instead of the full jump ([`satb::Solver::set_chrono`]).
    pub chrono_backtracks: u64,
    /// Original clauses removed by inprocessing backward subsumption.
    pub inproc_subsumed: u64,
    /// Learned-clause reduction passes across all SAT solvers used.
    pub reduces: u64,
    /// Learned clauses deleted by reduction across all SAT solvers.
    pub deleted: u64,
    /// Final clause-arena footprint in bytes, summed over all SAT
    /// solvers used (each sampled when it was retired or at the end of
    /// the run).
    pub arena_bytes: u64,
    /// Peak clause-arena footprint of the run in bytes (for engines
    /// whose solvers coexist, the sum of their high-water marks; for
    /// single-solver engines, that solver's peak).
    pub arena_peak_bytes: u64,
    /// Activation variables reused from the solver free-list instead
    /// of being leaked (single-solver PDR's per-query guards).
    pub act_recycled: u64,
    /// Approximate heap bytes of the recorded resolution proofs, summed
    /// over all proof-logging solvers used ([`satb::Stats::proof_bytes`];
    /// zero when proof logging was off).
    pub proof_bytes: u64,
    /// Derivation chains recorded across all proof-logging solvers
    /// ([`satb::Stats::proof_chains`]).
    pub proof_chains: u64,
    /// Cube literals dropped by ternary-simulation generalization.
    pub ternary_drops: u64,
    /// Cube literals dropped by input-based predecessor lifting (the
    /// UNSAT-core pass stacked on top of ternary widening).
    pub lifted_lits: u64,
    /// Lemmas this engine published to peers: blocked cubes accepted by
    /// the parallel-PDR shared frame store, plus frontier clauses put
    /// on the cross-seat [`crate::parallel::LemmaBus`].
    pub lemmas_exported: u64,
    /// Foreign lemmas this engine adopted: peer cubes a PDR worker
    /// re-verified and stored, or bus clauses a consumer's admission
    /// gate proved inductive and asserted.
    pub lemmas_imported: u64,
    /// Synchronization rounds against the shared store / lemma bus.
    pub sync_rounds: u64,
    /// Counters of the shared template's CNF preprocessing run (stamped
    /// from [`Blasted`] by `check_blasted`; all zero when the engine
    /// blasted for itself or ran on a raw template).
    pub preproc: satb::PreprocStats,
    /// Certified static-invariant clauses the run was strengthened with
    /// (stamped from [`Blasted::invariant`]).
    pub invariant_clauses: u32,
    /// Stuck-at-constant latches among those clauses, consumed by the
    /// template compiler for cone refinement.
    pub invariant_constants: u32,
    /// Wall-clock time spent in `check`.
    pub time: Duration,
}

impl EngineStats {
    /// Folds one solver's cumulative statistics into the engine totals.
    /// Call once per solver (when it is retired, or via
    /// [`set_solver_stats`](EngineStats::set_solver_stats) for solvers
    /// that live to the end of the run).
    pub fn absorb_solver(&mut self, s: &satb::Stats) {
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.domain_decisions += s.domain_decisions;
        self.domain_skipped += s.domain_skipped;
        self.chrono_backtracks += s.chrono_backtracks;
        self.inproc_subsumed += s.inproc_subsumed;
        self.reduces += s.reduces;
        self.deleted += s.deleted;
        self.arena_bytes += s.arena_bytes;
        self.arena_peak_bytes += s.arena_peak_bytes;
        self.act_recycled += s.act_recycled;
        self.proof_bytes += s.proof_bytes;
        self.proof_chains += s.proof_chains;
    }

    /// Replaces the solver-side totals with the (cumulative) statistics
    /// of the given solvers. Engines whose solvers live for the whole
    /// run call this before reporting. Engine-side counters (depth,
    /// queries, ternary drops) are untouched.
    pub fn set_solver_stats<I: IntoIterator<Item = satb::Stats>>(&mut self, solvers: I) {
        self.conflicts = 0;
        self.decisions = 0;
        self.propagations = 0;
        self.domain_decisions = 0;
        self.domain_skipped = 0;
        self.chrono_backtracks = 0;
        self.inproc_subsumed = 0;
        self.reduces = 0;
        self.deleted = 0;
        self.arena_bytes = 0;
        self.arena_peak_bytes = 0;
        self.act_recycled = 0;
        self.proof_bytes = 0;
        self.proof_chains = 0;
        for s in solvers {
            self.absorb_solver(&s);
        }
    }
}

/// Verdict plus statistics and, for Safe answers, an optional witness.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The verdict.
    pub outcome: Verdict,
    /// Run statistics.
    pub stats: EngineStats,
    /// Inductive-invariant witness backing a [`Verdict::Safe`] answer,
    /// re-checkable by [`crate::certify`] against the raw transition
    /// template with an independent solver. `None` for Unsafe/Unknown
    /// verdicts and for engines that cannot produce one (word-level
    /// k-induction, seated software analyzers). Unsafe answers carry
    /// their witness inside the verdict itself: the replayable
    /// [`Trace`].
    pub certificate: Option<crate::certify::Certificate>,
}

impl CheckOutcome {
    /// Builds an outcome, stamping elapsed time from `started`.
    pub fn finish(outcome: Verdict, mut stats: EngineStats, started: Instant) -> CheckOutcome {
        stats.time = started.elapsed();
        CheckOutcome {
            outcome,
            stats,
            certificate: None,
        }
    }

    /// Attaches a Safe-verdict witness.
    pub fn with_certificate(mut self, cert: crate::certify::Certificate) -> CheckOutcome {
        self.certificate = Some(cert);
        self
    }
}

/// Resource budget for one `check` call: the reproduction-scale
/// stand-in for the paper's 5 h / 32 GB per-benchmark limits.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Wall-clock limit (`None` = unlimited).
    pub timeout: Option<Duration>,
    /// Bound limit: maximum k / frame count.
    pub max_depth: u32,
    /// Cooperative cancellation flag shared with the run's SAT queries
    /// (and, in a portfolio, with the sibling engines). `None` means
    /// the run can only end via timeout or bound.
    pub stop: Option<Arc<AtomicBool>>,
    /// Deterministic fault injection forwarded to every SAT query (see
    /// [`satb::Chaos`]); robustness tests use it to prove engines
    /// survive mid-solve interrupts and stay correct on retry.
    pub chaos: Option<satb::Chaos>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            timeout: Some(Duration::from_secs(60)),
            max_depth: 4000,
            stop: None,
            chaos: None,
        }
    }
}

impl Budget {
    /// A budget with the given wall-clock limit in seconds.
    pub fn with_timeout_secs(secs: u64) -> Budget {
        Budget {
            timeout: Some(Duration::from_secs(secs)),
            ..Budget::default()
        }
    }

    /// Attaches a shared stop flag, making the budget cancellable.
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> Budget {
        self.stop = Some(stop);
        self
    }

    /// Attaches deterministic SAT-level fault injection (testing only).
    pub fn with_chaos(mut self, chaos: satb::Chaos) -> Budget {
        self.chaos = Some(chaos);
        self
    }

    /// Computes the absolute deadline for a run starting now.
    pub fn deadline_from(&self, started: Instant) -> Option<Instant> {
        self.timeout.map(|t| started + t)
    }

    /// SAT limits for one query of a run started at `started`. The
    /// stop flag is threaded through so in-flight solves can be
    /// cancelled mid-search.
    pub fn sat_limits(&self, started: Instant) -> satb::Limits {
        satb::Limits {
            max_conflicts: None,
            deadline: self.deadline_from(started),
            stop: self.stop.clone(),
            chaos: self.chaos,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self, started: Instant) -> bool {
        match self.deadline_from(started) {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Whether the shared stop flag has been raised.
    pub fn cancelled(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    /// Why the run must stop now, if it must: cancellation wins over
    /// timeout (it is the cheaper, deliberate signal). Engines call
    /// this between SAT queries and at loop heads.
    pub fn interruption(&self, started: Instant) -> Option<Unknown> {
        if self.cancelled() {
            Some(Unknown::Cancelled)
        } else if self.expired(started) {
            Some(Unknown::Timeout)
        } else {
            None
        }
    }
}

/// A bit-blasted netlist together with its compile-once CNF transition
/// template, shareable across engines.
///
/// Blasting, template compilation, static-invariant mining **and
/// SatELite-style preprocessing** are the up-front encoding cost of
/// every bit-level engine; a portfolio run pays all four **once** and
/// hands the same `Blasted` (cheap `Arc` clones) to every member
/// through [`Checker::check_blasted`], instead of once per member.
/// Every frame any member instantiates then inherits the simplified
/// image for free.
///
/// # The static-strengthening contract
///
/// [`of`](Blasted::of) runs [`aig::analyze`] on the raw netlist and
/// keeps the mined invariant **only** after
/// [`crate::certify::certify_invariant`] re-checked it against the
/// raw, un-preprocessed template — an uncertified invariant is
/// discarded, never threaded anywhere. The certified stuck-at-constant
/// facts are then folded into the template via
/// [`aig::refine_with_constants`], so the compiled image engines
/// instantiate is a cone-of-influence refinement that is only
/// equivalent to `sys` **on invariant states**. The contract for every
/// consumer of [`template`](Blasted::template): assert
/// [`invariant`](Blasted::invariant)'s clauses on the current-state
/// literals of **every** frame instantiated from it. Initialized
/// frames satisfy them automatically (certified-inductive clauses hold
/// in every reachable state), but free-state frames — k-induction
/// steps, interpolation B-frames, PDR frames — are unsound on the
/// refined image without them. `sys` itself stays the **original**
/// netlist: traces replay on it and certificates are re-checked
/// against its raw template.
#[derive(Clone)]
pub struct Blasted {
    /// The bit-level netlist (always the original, un-refined system).
    pub sys: Arc<aig::AigSystem>,
    /// The frame-instantiable CNF image of its transition relation
    /// (invariant-refined and preprocessed for [`of`](Blasted::of),
    /// preprocessed only for
    /// [`of_unstrengthened`](Blasted::of_unstrengthened), raw for
    /// [`of_raw`](Blasted::of_raw)).
    pub template: Arc<aig::TransitionTemplate>,
    /// Counters of the preprocessing run (all zero for
    /// [`of_raw`](Blasted::of_raw)).
    pub preproc_stats: satb::PreprocStats,
    /// The certified static invariant mined from the netlist (empty
    /// for [`of_unstrengthened`](Blasted::of_unstrengthened) /
    /// [`of_raw`](Blasted::of_raw), or when mining found nothing,
    /// was cancelled, or failed certification). Every clause here
    /// passed `certify_invariant` against the raw template.
    pub invariant: Arc<aig::StaticInvariant>,
    /// Whether the mined invariant passed certification (`true` when
    /// there was nothing to certify). A `false` here means strength
    /// was discarded — a soundness alarm worth surfacing, since the
    /// Houdini fixpoint should only ever emit inductive sets.
    pub invariant_certified: bool,
}

impl Blasted {
    /// Blasts `ts`, mines + certifies a static invariant, folds its
    /// constant facts into the template and runs CNF preprocessing
    /// over the refined clause image.
    pub fn of(ts: &TransitionSystem) -> Blasted {
        let sys = Arc::new(aig::blast_system(ts));
        let raw = aig::TransitionTemplate::compile(&sys);
        let mut invariant = aig::analyze(
            &sys,
            &raw,
            &aig::AnalysisConfig::default(),
            &satb::Limits::default(),
        );
        let mut invariant_certified = true;
        if !invariant.is_empty() {
            let rep = crate::certify::certify_invariant(&sys, &raw, &invariant.clauses);
            if !rep.ok {
                invariant_certified = false;
                let mut stats = invariant.stats.clone();
                stats.retained = 0;
                invariant = aig::StaticInvariant {
                    stats,
                    ..aig::StaticInvariant::default()
                };
            }
        }
        let pre = if invariant.constants.is_empty() {
            raw.preprocess()
        } else {
            let refined = aig::refine_with_constants(&sys, &invariant.constants);
            aig::TransitionTemplate::compile(&refined).preprocess()
        };
        Blasted {
            sys,
            template: Arc::new(pre.template),
            preproc_stats: pre.stats,
            invariant: Arc::new(invariant),
            invariant_certified,
        }
    }

    /// Like [`of`](Blasted::of) but without the static-analysis pass —
    /// the A-side of strengthened-vs-unstrengthened comparisons
    /// (`invperf`) and the pre-ISSUE-7 behaviour.
    pub fn of_unstrengthened(ts: &TransitionSystem) -> Blasted {
        let sys = Arc::new(aig::blast_system(ts));
        let pre = aig::TransitionTemplate::compile(&sys).preprocess();
        Blasted {
            sys,
            template: Arc::new(pre.template),
            preproc_stats: pre.stats,
            invariant: Arc::new(aig::StaticInvariant::default()),
            invariant_certified: true,
        }
    }

    /// Like [`of`](Blasted::of) but without preprocessing or
    /// strengthening — the A-side of preprocessed-vs-raw comparisons
    /// (`preperf`) and a debugging escape hatch.
    pub fn of_raw(ts: &TransitionSystem) -> Blasted {
        let sys = Arc::new(aig::blast_system(ts));
        let template = Arc::new(aig::TransitionTemplate::compile(&sys));
        Blasted {
            sys,
            template,
            preproc_stats: satb::PreprocStats::default(),
            invariant: Arc::new(aig::StaticInvariant::default()),
            invariant_certified: true,
        }
    }

    /// Stamps the shared encoding facts (preprocessing savings,
    /// invariant strength) into an engine's statistics, so every perf
    /// bin and the portfolio summary report them from one place.
    pub fn stamp(&self, stats: &mut EngineStats) {
        stats.preproc = self.preproc_stats;
        stats.invariant_clauses = self.invariant.clauses.len() as u32;
        stats.invariant_constants = self.invariant.constants.len() as u32;
    }
}

/// A verification engine over word-level transition systems.
pub trait Checker {
    /// Short machine-readable engine name, e.g. `"abc-pdr"`.
    fn name(&self) -> &'static str;
    /// Checks all bad-state properties of `ts`.
    fn check(&self, ts: &TransitionSystem) -> CheckOutcome;
    /// Like [`check`](Checker::check), but with a pre-blasted netlist
    /// and transition template the engine may reuse instead of blasting
    /// `ts` itself. Bit-level engines override this; engines that do
    /// not operate on the bit-level netlist (word-level k-induction,
    /// the software analyzers) fall back to [`check`](Checker::check).
    fn check_blasted(&self, ts: &TransitionSystem, blasted: &Blasted) -> CheckOutcome {
        let _ = blasted;
        self.check(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Safe.to_string(), "SAFE");
        let t = Trace {
            states: vec![vec![false], vec![true]],
            inputs: vec![vec![], vec![]],
            bad_index: 0,
        };
        assert_eq!(Verdict::Unsafe(t).to_string(), "UNSAFE (cycle 1)");
        assert_eq!(
            Verdict::Unknown(Unknown::Timeout).to_string(),
            "UNKNOWN (timeout)"
        );
    }

    #[test]
    fn budget_deadline() {
        let b = Budget {
            timeout: Some(Duration::from_millis(1)),
            max_depth: 10,
            ..Budget::default()
        };
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.expired(t0));
        let unlimited = Budget {
            timeout: None,
            max_depth: 10,
            ..Budget::default()
        };
        assert!(!unlimited.expired(t0));
    }

    #[test]
    fn trace_replay_rejects_garbage() {
        use rtlir::{Sort, TransitionSystem};
        let mut ts = TransitionSystem::new("t");
        let s = ts.add_state("s", Sort::BOOL);
        let z = ts.pool_mut().constv(1, 0);
        let o = ts.pool_mut().constv(1, 1);
        ts.set_init(s, z);
        ts.set_next(s, o);
        let sv = ts.pool_mut().var(s);
        ts.add_bad(sv, "s set");
        let sys = aig::blast_system(&ts);
        // Valid trace: 0 -> 1 (bad).
        let good = Trace {
            states: vec![vec![false], vec![true]],
            inputs: vec![vec![], vec![]],
            bad_index: 0,
        };
        assert!(good.replays_on(&sys));
        // Wrong initial state.
        let bad_init = Trace {
            states: vec![vec![true]],
            inputs: vec![vec![]],
            bad_index: 0,
        };
        assert!(!bad_init.replays_on(&sys));
        // Non-bad final state.
        let not_bad = Trace {
            states: vec![vec![false]],
            inputs: vec![vec![]],
            bad_index: 0,
        };
        assert!(!not_bad.replays_on(&sys));
    }
}
