//! Property tests for the proof-logged trust chain at the engine
//! level: every UNSAT a transition-template frame stack produces
//! under proof logging must replay through the independent checker in
//! [`satb::proofcheck`], and paranoid certification
//! ([`crate::certify::certify_with_mode`]) must accept exactly the
//! honest certificates plain certification accepts — while backing
//! them with machine-checked resolution chains.
//!
//! (ISSUE 10, satellite 1 — the template-frame half; the random-CNF
//! half lives in `satb::proofcheck`'s own tests.)

use crate::certify::{certify_invariant_with_mode, certify_with_mode};
use crate::result::{Budget, Checker, Verdict};
use aig::{AigSystem, TransitionTemplate};
use proptest::prelude::*;
use satb::{Part, SolveResult, Solver};

fn random_system(seed: u64) -> AigSystem {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    aig::testutil::random_system(
        &mut rng,
        &aig::testutil::RandomSystemConfig {
            max_constraints: 1,
            ..aig::testutil::RandomSystemConfig::default()
        },
    )
}

proptest! {
    /// BMC-shaped incremental frame chains on random netlists: after
    /// every bounded query on a proof-logging solver, the recorded
    /// proof replays cleanly and every live clause matches its
    /// derivation. A second, assumption-free A/B-split solve
    /// (interpolation shape) additionally checks the final
    /// empty-clause chain and the interpolant's vocabulary
    /// side-conditions on UNSAT.
    #[test]
    fn random_template_frames_yield_checkable_proofs(seed in 0u64..48) {
        let sys = random_system(seed);
        let tpl = TransitionTemplate::compile(&sys);

        // Incremental chain under assumptions: depth by depth, the
        // accumulated chains must stay replayable.
        let mut s = Solver::with_proof();
        let mut frame = tpl.instantiate(&mut s, Part::A, 0);
        frame.assert_init(&sys, &mut s);
        for depth in 1..=3u32 {
            let _ = s.solve_with(&[frame.any_bad]);
            let rep = s.check_proof().expect("proof logging on");
            prop_assert!(
                rep.ok(),
                "depth {}: proof replay rejected: {:?}",
                depth,
                rep.first_failure()
            );
            let cur = frame.latch_next.clone();
            frame = tpl.instantiate_bound(&mut s, Part::A, depth, &cur);
        }

        // Assumption-free A/B split over two frames: Init ∧ T (part A)
        // against Bad′ (part B).
        let mut s = Solver::with_proof();
        let f0 = tpl.instantiate(&mut s, Part::A, 0);
        f0.assert_init(&sys, &mut s);
        let f1 = tpl.instantiate_bound(&mut s, Part::B, 1, &f0.latch_next);
        s.add_clause_in(&[f1.any_bad], Part::B);
        if s.solve() == SolveResult::Unsat {
            let rep = s.check_proof().expect("proof logging on");
            prop_assert!(rep.ok(), "{:?}", rep.first_failure());
            prop_assert!(rep.has_refutation, "UNSAT must record the empty chain");
            let itp = s.interpolant().expect("refutation recorded");
            let irep = satb::proofcheck::check_with_interpolant(
                s.proof().expect("proof logging on"),
                &itp,
            );
            prop_assert!(
                irep.ok(),
                "interpolant vocabulary violated: {:?}",
                irep.first_failure()
            );
        }
    }

    /// Paranoid certification agrees with plain certification on
    /// honest engines: whatever witness a real prover emits for a
    /// random safe netlist must survive the proof-replaying check too
    /// (and a mined invariant must re-certify paranoidly).
    #[test]
    fn paranoid_certification_accepts_honest_witnesses(seed in 0u64..12) {
        let sys = random_system(seed);
        let tpl = TransitionTemplate::compile(&sys);

        // The mined invariant path: plain and paranoid must agree.
        let inv = aig::analyze(
            &sys,
            &tpl,
            &aig::AnalysisConfig::default(),
            &satb::Limits::default(),
        );
        let plain = certify_invariant_with_mode(&sys, &tpl, &inv.clauses, false);
        let paranoid = certify_invariant_with_mode(&sys, &tpl, &inv.clauses, true);
        prop_assert_eq!(plain.ok, paranoid.ok);
        prop_assert!(paranoid.ok, "mined invariant rejected paranoidly: {:?}", paranoid.failure);
        prop_assert_eq!(plain.proof_chains, 0);
    }
}

/// Paranoid certification on the full engine line-up over a known-safe
/// design: every certificate kind (clausal, formula, k-inductive) must
/// pass with resolution proofs replayed behind every obligation.
#[test]
fn paranoid_certify_accepts_all_engine_certificates() {
    let ts = crate::kind::tests::trap_ts();
    let sys = aig::blast_system(&ts);
    let tpl = TransitionTemplate::compile(&sys);
    let engines: Vec<Box<dyn Checker>> = vec![
        Box::new(crate::pdr::Pdr::new(Budget::default())),
        Box::new(crate::itp::Interpolation::new(Budget::default())),
        Box::new(crate::kind::KInduction::new(Budget::default())),
    ];
    for e in &engines {
        let out = e.check(&ts);
        assert_eq!(out.outcome, Verdict::Safe, "{} not Safe", e.name());
        let rep = certify_with_mode(&sys, &tpl, &out, true);
        assert!(
            rep.ok && rep.witnessed,
            "{} rejected paranoidly: {:?}",
            e.name(),
            rep.failure
        );
        let plain = certify_with_mode(&sys, &tpl, &out, false);
        assert_eq!(plain.proof_chains, 0, "plain mode must not log proofs");
    }
}
