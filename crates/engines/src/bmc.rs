//! Bounded model checking (bit-level, incremental).
//!
//! BMC is the bug-finding baseline every compared tool builds on: the
//! transition relation is unrolled frame by frame into one incremental
//! SAT solver, and the bad-state output is assumed at each depth.

use crate::certify::{clause_on, LatchClause};
use crate::result::{Blasted, Budget, CheckOutcome, Checker, EngineStats, Trace, Unknown, Verdict};
use aig::{AigSystem, FrameVars, TransitionTemplate};
use rtlir::TransitionSystem;
use satb::{Lit, Part, SolveResult, Solver};
use std::time::Instant;

/// An unrolled chain of time frames in one incremental solver.
///
/// Every frame is one instantiation of the shared
/// [`TransitionTemplate`]: frame 0 gets fresh SAT variables for every
/// latch (constrained to the reset values when `initialized`), frame
/// `k+1` is chained by binding its latch-current variables to frame
/// `k`'s next-state output literals. Constraints are asserted on every
/// materialized frame by the instantiation itself, and the certified
/// static invariant `inv` is asserted on every frame's current-state
/// literals — required for soundness on invariant-refined templates
/// (see [`Blasted`]), and a free strengthening on initialized chains.
pub(crate) struct FrameChain<'s> {
    sys: &'s AigSystem,
    tpl: &'s TransitionTemplate,
    inv: &'s [LatchClause],
    /// Lemmas admitted after construction (broadcast PDR clauses that
    /// passed the consumer's [`crate::parallel::LemmaGate`]): asserted
    /// on every materialized frame exactly like `inv`.
    extra: Vec<LatchClause>,
    pub(crate) solver: Solver,
    frames: Vec<FrameVars>,
}

impl<'s> FrameChain<'s> {
    pub(crate) fn new(
        sys: &'s AigSystem,
        tpl: &'s TransitionTemplate,
        inv: &'s [LatchClause],
        initialized: bool,
    ) -> FrameChain<'s> {
        let mut solver = Solver::new();
        let f0 = tpl.instantiate(&mut solver, Part::A, 0);
        if initialized {
            f0.assert_init(sys, &mut solver);
        }
        for clause in inv {
            solver.add_clause(&clause_on(clause, &f0.latch_cur));
        }
        FrameChain {
            sys,
            tpl,
            inv,
            extra: Vec::new(),
            solver,
            frames: vec![f0],
        }
    }

    /// Ensures frames `0..=k` are materialized.
    pub(crate) fn ensure(&mut self, k: usize) {
        while self.frames.len() <= k {
            let bind = self
                .frames
                .last()
                .expect("frame 0 exists")
                .latch_next
                .clone();
            let next = self
                .tpl
                .instantiate_bound(&mut self.solver, Part::A, 0, &bind);
            for clause in self.inv.iter().chain(&self.extra) {
                self.solver.add_clause(&clause_on(clause, &next.latch_cur));
            }
            self.frames.push(next);
        }
    }

    /// Asserts an admitted lemma on every materialized frame and
    /// remembers it for frames materialized later. The caller is
    /// responsible for validity on every chain frame — for an
    /// uninitialized chain that means inductiveness relative to what
    /// the chain already asserts, which is exactly what the
    /// [`crate::parallel::LemmaGate`] admission check establishes.
    pub(crate) fn add_lemma(&mut self, clause: &LatchClause) {
        for f in &self.frames {
            self.solver.add_clause(&clause_on(clause, &f.latch_cur));
        }
        self.extra.push(clause.clone());
    }

    /// SAT literal for "some bad property fires at frame `k`".
    pub(crate) fn any_bad(&mut self, k: usize) -> Lit {
        self.ensure(k);
        self.frames[k].any_bad
    }

    /// Extends `dom` with everything frame `k` can constrain — its
    /// query-scoping base (latches, inputs, constraint cone), its full
    /// latch next-state cones and its bad cone. Frame `k+1` binds its
    /// current-state literals onto frame `k`'s next-state gate outputs,
    /// so a chain query at depth `d` needs frames `0..=d` extended for
    /// the fanin closure the [`satb::domain`] contract requires; on a
    /// chain, a query's domain therefore degenerates to nearly the
    /// whole formula — the API exists so chain engines share the same
    /// scoped-query path as the frame-local ones.
    pub(crate) fn extend_domain(&mut self, k: usize, dom: &mut satb::Domain) {
        self.ensure(k);
        let f = &self.frames[k];
        f.extend_domain_base(self.tpl, dom);
        for i in 0..self.sys.latches.len() {
            f.extend_domain(dom, self.tpl.latch_next_cone(i));
        }
        f.extend_domain(dom, self.tpl.any_bad_cone());
    }

    /// SAT literal of an individual bad output at frame `k`.
    pub(crate) fn bad_at(&mut self, k: usize, bad_index: usize) -> Lit {
        self.ensure(k);
        self.frames[k].bads[bad_index]
    }

    /// Adds a pairwise-distinctness clause between the states of frames
    /// `i` and `j` (the simple-path constraint of k-induction), scoped
    /// to the activation group `act` and drawing its xor difference
    /// variables from `pool` (recording them in `used`).
    ///
    /// The clauses only need the forward half of the xor definition
    /// (`d → a ≠ c`): the disjunction of the `d`s forces some bit to
    /// differ, and a free `d` can always be set when the bits do.
    /// Because the difference variables occur **exclusively** in this
    /// group's clauses, a successful [`satb::Solver::release_activation`]
    /// sweeps every clause and learned clause mentioning them, leaving
    /// them unconstrained and unassigned — which is what makes handing
    /// them back to the pool sound (see [`ScratchPool`]).
    pub(crate) fn assert_distinct_scoped(
        &mut self,
        i: usize,
        j: usize,
        act: Lit,
        pool: &mut ScratchPool,
        used: &mut Vec<satb::Var>,
    ) {
        self.ensure(i.max(j));
        let mut diff_lits = Vec::with_capacity(self.sys.latches.len());
        for b in 0..self.sys.latches.len() {
            let (a, c) = (self.frames[i].latch_cur[b], self.frames[j].latch_cur[b]);
            let dv = pool.get(&mut self.solver);
            used.push(dv);
            let d = Lit::pos(dv);
            self.solver.add_clause_activated(act, &[!d, a, c]);
            self.solver.add_clause_activated(act, &[!d, !a, !c]);
            diff_lits.push(d);
        }
        self.solver.add_clause_activated(act, &diff_lits);
    }

    /// Extracts a counterexample trace of length `k` from the current
    /// model. `bad_index` should be determined by the caller (e.g. by
    /// probing individual bad literals).
    pub(crate) fn extract_trace(&mut self, k: usize, bad_index: usize) -> Trace {
        let mut states = Vec::with_capacity(k + 1);
        let mut inputs = Vec::with_capacity(k + 1);
        for f in 0..=k {
            let st: Vec<bool> = self.frames[f]
                .latch_cur
                .iter()
                .map(|&l| self.solver.value(l).unwrap_or(false))
                .collect();
            states.push(st);
            let inp: Vec<bool> = self.frames[f]
                .inputs
                .iter()
                .map(|&l| self.solver.value(l).unwrap_or(false))
                .collect();
            inputs.push(inp);
        }
        Trace {
            states,
            inputs,
            bad_index,
        }
    }

    /// Picks the bad property that fired at frame `k` in the current
    /// model (first one whose literal evaluates true).
    pub(crate) fn fired_bad(&mut self, k: usize) -> usize {
        for bi in 0..self.sys.bads.len() {
            let l = self.bad_at(k, bi);
            if self.solver.value(l) == Some(true) {
                return bi;
            }
        }
        0
    }
}

/// A free-list of recycled scratch variables for activation-scoped
/// clause groups — `satb`'s recycled-activation pattern lifted to the
/// engine side, used by k-induction's per-iteration simple-path
/// constraints so deep runs stop growing the variable table
/// monotonically.
///
/// # Safety contract
///
/// A variable handed out by [`get`](ScratchPool::get) may only appear
/// in clauses of **one** activation group, and may only be
/// [`recycle`](ScratchPool::recycle)d after
/// [`satb::Solver::release_activation`] returned `true` for that
/// group: the release then swept every clause and contaminated learned
/// clause mentioning the variable (any derivation through the group
/// carries the guard literal), so the variable is unconstrained and
/// unassigned again. An abandoned release must leak its scratch
/// variables instead.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    free: Vec<satb::Var>,
}

impl ScratchPool {
    /// A scratch variable: recycled when available, fresh otherwise.
    pub(crate) fn get(&mut self, solver: &mut Solver) -> satb::Var {
        self.free.pop().unwrap_or_else(|| solver.new_var())
    }

    /// Returns the scratch variables of a successfully released group.
    /// Cumulative k-induction keeps its groups live for the whole run,
    /// so today only the test suite (and any future windowed or
    /// restarting variant) drives this leg.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn recycle(&mut self, vars: Vec<satb::Var>) {
        self.free.extend(vars);
    }
}

/// Incremental bounded model checking.
///
/// Returns [`Verdict::Unsafe`] with a trace when a bad state is
/// reachable within `budget.max_depth` steps;
/// [`Verdict::Unknown`]`(BoundReached)` when the bound is exhausted (BMC
/// alone never proves safety).
#[derive(Clone, Debug, Default)]
pub struct Bmc {
    /// Resource limits.
    pub budget: Budget,
}

impl Bmc {
    /// Creates a BMC engine with the given budget.
    pub fn new(budget: Budget) -> Bmc {
        Bmc { budget }
    }
}

impl Bmc {
    pub(crate) fn run(
        &self,
        sys: &AigSystem,
        tpl: &TransitionTemplate,
        inv: &[LatchClause],
    ) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();
        let mut chain = FrameChain::new(sys, tpl, inv, true);
        for k in 0..=self.budget.max_depth {
            if let Some(u) = self.budget.interruption(started) {
                stats.set_solver_stats([chain.solver.stats()]);
                return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
            }
            stats.depth = k;
            let bad = chain.any_bad(k as usize);
            stats.sat_queries += 1;
            let r = chain
                .solver
                .solve_limited(&[bad], self.budget.sat_limits(started));
            stats.set_solver_stats([chain.solver.stats()]);
            match r {
                SolveResult::Sat => {
                    let bi = chain.fired_bad(k as usize);
                    let trace = chain.extract_trace(k as usize, bi);
                    return CheckOutcome::finish(Verdict::Unsafe(trace), stats, started);
                }
                SolveResult::Unsat => {
                    // No counterexample at this depth: pin it and go deeper.
                    chain.solver.add_clause(&[!bad]);
                }
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started);
                }
            }
        }
        stats.set_solver_stats([chain.solver.stats()]);
        CheckOutcome::finish(Verdict::Unknown(Unknown::BoundReached), stats, started)
    }
}

impl Checker for Bmc {
    fn name(&self) -> &'static str {
        "bmc"
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let sys = aig::blast_system(ts);
        // Compile once, simplify once: every frame this run
        // instantiates inherits the preprocessed image.
        let tpl = TransitionTemplate::compile(&sys).preprocess().template;
        self.run(&sys, &tpl, &[])
    }

    fn check_blasted(&self, _ts: &TransitionSystem, blasted: &Blasted) -> CheckOutcome {
        let mut out = self.run(&blasted.sys, &blasted.template, &blasted.invariant.clauses);
        blasted.stamp(&mut out.stats);
        out
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rtlir::Sort;

    pub(crate) fn counter_ts(bug_at: u64, width: u32) -> TransitionSystem {
        let mut ts = TransitionSystem::new("counter");
        let s = ts.add_state("count", Sort::Bv(width));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(width, 1);
        let next = ts.pool_mut().add(sv, one);
        let zero = ts.pool_mut().constv(width, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let c = ts.pool_mut().constv(width, bug_at);
        let bad = ts.pool_mut().eq(sv, c);
        ts.add_bad(bad, "counter hits bound");
        ts
    }

    #[test]
    fn finds_bug_at_exact_depth() {
        for depth in [0u64, 1, 7, 33] {
            let ts = counter_ts(depth, 8);
            let out = Bmc::default().check(&ts);
            match out.outcome {
                Verdict::Unsafe(trace) => {
                    assert_eq!(trace.length() as u64, depth, "bug depth");
                    let sys = aig::blast_system(&ts);
                    assert!(trace.replays_on(&sys), "trace must replay");
                }
                other => panic!("expected Unsafe, got {other:?}"),
            }
        }
    }

    #[test]
    fn input_driven_bug_with_trace() {
        // Register accumulates input; bad when it exceeds 10.
        let mut ts = TransitionSystem::new("acc");
        let i = ts.add_input("in", Sort::Bv(4));
        let s = ts.add_state("acc", Sort::Bv(4));
        let (iv, sv) = {
            let p = ts.pool_mut();
            (p.var(i), p.var(s))
        };
        let next = ts.pool_mut().add(sv, iv);
        let zero = ts.pool_mut().constv(4, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let ten = ts.pool_mut().constv(4, 10);
        let bad = ts.pool_mut().ugt(sv, ten);
        ts.add_bad(bad, "acc > 10");
        let out = Bmc::default().check(&ts);
        match out.outcome {
            Verdict::Unsafe(trace) => {
                let sys = aig::blast_system(&ts);
                assert!(trace.replays_on(&sys), "trace must replay");
                assert!(trace.length() >= 1);
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn safe_design_reaches_bound() {
        // Counter wraps within 4 bits; bad value 200 is unreachable.
        let mut ts = counter_ts(0, 4);
        // Replace the bad with an unreachable one: count == 9 after the
        // counter is forced to skip 9 (increment by 2 from even init).
        let s = ts.states()[0].var;
        let sv = ts.pool_mut().var(s);
        let two = ts.pool_mut().constv(4, 2);
        let next = ts.pool_mut().add(sv, two);
        ts.set_next(s, next);
        let mut ts2 = ts;
        let nine = ts2.pool_mut().constv(4, 9);
        let bad = ts2.pool_mut().eq(sv, nine);
        // Note: the original bad (count == 0) fires at cycle 0; build a
        // fresh system with only the odd-target property instead.
        let mut ts3 = TransitionSystem::new("even");
        let s3 = ts3.add_state("count", Sort::Bv(4));
        let s3v = ts3.pool_mut().var(s3);
        let two3 = ts3.pool_mut().constv(4, 2);
        let nx = ts3.pool_mut().add(s3v, two3);
        let z = ts3.pool_mut().constv(4, 0);
        ts3.set_init(s3, z);
        ts3.set_next(s3, nx);
        let nine3 = ts3.pool_mut().constv(4, 9);
        let b3 = ts3.pool_mut().eq(s3v, nine3);
        ts3.add_bad(b3, "odd value reached");
        let _ = (ts2, bad, nine);
        let out = Bmc {
            budget: Budget {
                timeout: None,
                max_depth: 40,
                ..Budget::default()
            },
        }
        .check(&ts3);
        assert_eq!(out.outcome, Verdict::Unknown(Unknown::BoundReached));
        assert_eq!(out.stats.depth, 40);
    }

    #[test]
    fn respects_constraints() {
        // Input-incremented counter, but constraint forbids increments.
        let mut ts = TransitionSystem::new("constrained");
        let en = ts.add_input("en", Sort::BOOL);
        let s = ts.add_state("c", Sort::Bv(4));
        let (env_, sv) = {
            let p = ts.pool_mut();
            (p.var(en), p.var(s))
        };
        let one = ts.pool_mut().constv(4, 1);
        let inc = ts.pool_mut().add(sv, one);
        let next = ts.pool_mut().ite(env_, inc, sv);
        let zero = ts.pool_mut().constv(4, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let three = ts.pool_mut().constv(4, 3);
        let bad = ts.pool_mut().eq(sv, three);
        ts.add_bad(bad, "c == 3");
        let no_en = ts.pool_mut().not(env_);
        ts.add_constraint(no_en);
        let out = Bmc {
            budget: Budget {
                timeout: None,
                max_depth: 12,
                ..Budget::default()
            },
        }
        .check(&ts);
        assert_eq!(
            out.outcome,
            Verdict::Unknown(Unknown::BoundReached),
            "constraint keeps the design safe"
        );
    }
}
