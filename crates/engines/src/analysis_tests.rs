//! Property tests for the static-analysis pipeline (`aig::analyze`):
//! the invariants it mines must be *certified* — initiation plus
//! consecution against the raw template, checked by an independent
//! solver — and must *hold concretely* on long random executions of
//! the netlist itself. A third leg injects faults into the Houdini
//! solver and checks that a cancelled analysis degrades to a clean
//! empty invariant, never a partially-filtered (unsound) one.
//!
//! (ISSUE 7, satellite 3.)

use crate::certify::certify_invariant;
use aig::{AigSystem, AnalysisConfig, TransitionTemplate};
use proptest::prelude::*;
use satb::Chaos;

fn random_system(seed: u64) -> AigSystem {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    aig::testutil::random_system(
        &mut rng,
        &aig::testutil::RandomSystemConfig {
            // A couple of environment constraints: the analysis must
            // honour them in consecution without assuming them in
            // concrete states that satisfy them anyway.
            max_constraints: 1,
            ..aig::testutil::RandomSystemConfig::default()
        },
    )
}

/// A cheap deterministic bit source for the concrete replay.
struct Bits(u64);

impl Bits {
    fn next(&mut self) -> bool {
        let mut x = self.0 | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x & 1 == 1
    }
}

/// Whether every mined clause holds in the given concrete latch state.
fn clauses_hold(inv: &aig::StaticInvariant, state: &[bool]) -> Result<(), String> {
    for clause in &inv.clauses {
        if !clause.iter().any(|&(i, v)| state[i] == v) {
            return Err(format!("clause {clause:?} fails in state {state:?}"));
        }
    }
    Ok(())
}

/// Concrete replay: run `restarts` random executions of `steps` steps
/// each from the reset state (free latches and inputs randomized) and
/// check every mined clause in every visited state that satisfies the
/// environment constraints.
fn replay(sys: &AigSystem, inv: &aig::StaticInvariant, seed: u64) -> Result<(), String> {
    let mut bits = Bits(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let (restarts, steps) = (25usize, 40usize); // 1000 visited states
    for _ in 0..restarts {
        let mut state: Vec<bool> = sys
            .latches
            .iter()
            .map(|l| l.init.unwrap_or_else(|| bits.next()))
            .collect();
        for _ in 0..steps {
            // The current state was reached through constrained
            // transitions (or is a reset state), so the invariant must
            // hold in it unconditionally.
            clauses_hold(inv, &state)?;
            let inputs: Vec<bool> = (0..sys.inputs.len()).map(|_| bits.next()).collect();
            // A successor under a constraint-violating input is not a
            // reachable state: restart the execution instead.
            if !sys.constraints_in(&state, &inputs) {
                break;
            }
            state = sys.step(&state, &inputs);
        }
    }
    Ok(())
}

proptest! {
    /// Every invariant the analysis mines on a random netlist (a) passes
    /// the independent certificate check against the raw template and
    /// (b) holds on ~1000 random concrete simulation steps.
    #[test]
    fn mined_invariants_certify_and_hold_concretely(seed in 0u64..64) {
        let sys = random_system(seed);
        let tpl = TransitionTemplate::compile(&sys);
        let inv = aig::analyze(
            &sys,
            &tpl,
            &AnalysisConfig::default(),
            &satb::Limits::default(),
        );
        prop_assert!(!inv.stats.cancelled, "uncancelled run reported cancelled");
        prop_assert_eq!(inv.stats.retained as usize, inv.clauses.len());

        let rep = certify_invariant(&sys, &tpl, &inv.clauses);
        prop_assert!(
            rep.ok,
            "mined invariant failed the certificate check: {:?}",
            rep.failure
        );
        if let Err(why) = replay(&sys, &inv, seed) {
            prop_assert!(false, "concrete replay falsified the invariant: {why}");
        }
    }

    /// Fault injection: an analysis whose Houdini solver is cancelled
    /// from under it returns a clean *empty* invariant flagged
    /// `cancelled` — never a half-filtered clause set. Runs that beat
    /// the injection threshold must still certify.
    #[test]
    fn cancelled_analysis_is_clean_or_absent(seed in 0u64..32, chaos_seed in 0u64..4) {
        let sys = random_system(seed);
        let tpl = TransitionTemplate::compile(&sys);
        let limits = satb::Limits {
            chaos: Some(Chaos { seed: chaos_seed, period: 2 }),
            ..satb::Limits::default()
        };
        let inv = aig::analyze(&sys, &tpl, &AnalysisConfig::default(), &limits);
        if inv.stats.cancelled {
            prop_assert!(
                inv.is_empty() && inv.constants.is_empty(),
                "cancelled analysis leaked clauses: {:?}",
                inv.clauses
            );
        } else {
            let rep = certify_invariant(&sys, &tpl, &inv.clauses);
            prop_assert!(
                rep.ok,
                "chaotic-but-complete invariant failed its certificate: {:?}",
                rep.failure
            );
        }
    }
}
