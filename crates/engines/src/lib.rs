//! Hardware model-checking engines.
//!
//! These are the "hardware tool" configurations of the DATE 2016
//! comparison, operating on the bit-level netlist (like ABC) or on
//! word-level unrollings (like EBMC):
//!
//! | paper tool          | engine here            |
//! |---------------------|------------------------|
//! | ABC `kind`          | [`kind::KInduction`]   |
//! | EBMC k-induction    | [`word::WordKInduction`] |
//! | ABC interpolation   | [`itp::Interpolation`] |
//! | ABC `pdr`           | [`pdr::Pdr`]           |
//! | (multi-core `pdr`)  | [`parallel::ParallelPdr`] |
//! | (bug finding base)  | [`bmc::Bmc`]           |
//! | hybrid (Figure 5)   | [`portfolio::Portfolio`] |
//!
//! All engines implement [`Checker`] over a word-level
//! [`rtlir::TransitionSystem`] and return a [`CheckOutcome`] — verdict
//! plus statistics — under a configurable resource [`Budget`], which
//! stands in for the paper's 5-hour / 32 GB per-benchmark limits.
//!
//! # Trusting an answer
//!
//! Definite verdicts are *certifying*: a Safe answer from PDR,
//! interpolation or k-induction carries a [`Certificate`] (its
//! fixpoint frame, interpolant fixpoint, or k-inductive strengthening)
//! in [`CheckOutcome::certificate`], and an Unsafe answer carries its
//! replayable [`Trace`] inside the verdict. The [`certify`] module
//! re-checks either against the **raw, un-preprocessed** transition
//! template with a fresh independent SAT solver — so none of the
//! engine's incremental-solving machinery is in the trusted base —
//! and the [`portfolio::Portfolio`] does this automatically before
//! declaring a winner: a seat whose witness fails the check is
//! demoted to [`Unknown::CertificateFailed`] and the race continues
//! with the remaining members, while disagreements are resolved in
//! favour of the side whose witness checked. Seats that cannot
//! produce a witness (the word-level engine, seated software
//! analyzers) are still accepted, but reported as uncertified; a seat
//! that panics is isolated with `catch_unwind` and surfaced as
//! [`Unknown::Crashed`] instead of silently vanishing from the race.
//!
//! One trust step remains after that: the checker's *own* solver
//! answering UNSAT on each obligation. **Paranoid mode** removes it —
//! [`certify::certify_with_mode`] (and
//! [`Portfolio::with_paranoid`](portfolio::Portfolio::with_paranoid))
//! runs every obligation solver with resolution-proof logging and
//! replays the recorded proof from scratch through the independent
//! static checker in [`satb::proofcheck`]: antecedent existence,
//! pivot polarity, a cross-check of every live clause against its
//! recorded derivation. A refutation whose proof fails the replay
//! demotes the member exactly like a bad witness, and
//! [`CertifyReport::proof_chains`] counts the machine-checked chains
//! backing a paranoid pass. The `proofperf` bench binary tracks proof
//! size and check time per design and additionally exercises
//! proof-logged **in-solver preprocessing** (subsumption,
//! strengthening and variable elimination now record derived chains
//! and deletions, so interpolation and proof checking survive
//! [`satb::Solver::preprocess`]).
//!
//! # Static strengthening
//!
//! Before any engine runs, [`Blasted::of`] mines a netlist invariant
//! with [`aig::analyze`] — a ternary-simulation reachability fixpoint
//! for stuck-at-constant latches plus signature-mined equivalence and
//! implication clauses, filtered to an inductive subset by a Houdini
//! loop over one template frame. The surviving clause set is certified
//! through [`certify::certify_invariant`] against the **raw** template
//! (initiation + consecution, independent solver; deliberately no
//! safety obligation) before anything trusts it, and travels with the
//! blast as [`Blasted::invariant`]. Every engine then asserts the
//! clauses on each frame it instantiates: BMC and k-induction gain
//! pruned unrollings, interpolation and PDR gain strengthened frames
//! (PDR additionally seeds its exported fixpoint with the clauses so
//! certificates stay closed), and the template itself is refined with
//! the proven constant latches before CNF preprocessing. A cancelled
//! analysis degrades to an empty invariant — never a half-filtered
//! one — so the pipeline is safe under fault injection; the
//! `invperf` bench binary tracks the end-to-end effect per benchmark.
//!
//! # Query scoping
//!
//! Engines fire thousands of SAT queries that each touch a small cone
//! of one big incremental formula, so every query is **cone-
//! restricted**: the [`aig::TransitionTemplate`] precomputes per-latch
//! next-state, bad and constraint fanin cones at compile time,
//! [`aig::FrameVars`] maps them onto solver variables, and the engines
//! hand the union relevant to each query to
//! [`satb::Solver::solve_with_domain`], which keeps VSIDS decisions
//! inside the cone (see the [`satb::domain`] soundness contract). PDR
//! scopes every relative-induction, lifting and bad-state query to the
//! obligation cube's cones; the [`parallel`] lemma gate scopes its
//! consecution checks to the candidate clause's cones; k-induction
//! threads a chain-wide domain through its step solves (frame binding
//! makes the closure span the whole chain, so the win there is
//! structural uniformity, not pruning). The query solver pairs the
//! domains with chronological backtracking
//! ([`satb::Solver::set_chrono`]), both A/B-able per worker profile
//! and measured end to end by the `qperf` bench binary.
//!
//! # Example
//!
//! ```
//! use engines::{bmc::Bmc, Checker, Verdict};
//! use rtlir::{Sort, TransitionSystem};
//!
//! // A counter that reaches 5 after five steps.
//! let mut ts = TransitionSystem::new("c");
//! let s = ts.add_state("count", Sort::Bv(8));
//! let sv = ts.pool_mut().var(s);
//! let one = ts.pool_mut().constv(8, 1);
//! let next = ts.pool_mut().add(sv, one);
//! let zero = ts.pool_mut().constv(8, 0);
//! ts.set_init(s, zero);
//! ts.set_next(s, next);
//! let five = ts.pool_mut().constv(8, 5);
//! let bad = ts.pool_mut().eq(sv, five);
//! ts.add_bad(bad, "reaches 5");
//!
//! let out = Bmc::default().check(&ts);
//! match out.outcome {
//!     Verdict::Unsafe(trace) => assert_eq!(trace.states.len(), 6),
//!     other => panic!("expected a counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]

#[cfg(test)]
mod analysis_tests;
pub mod bmc;
pub mod certify;
#[cfg(test)]
mod chaos_tests;
pub mod itp;
pub mod kind;
pub mod parallel;
pub mod pdr;
pub mod pdr_baseline;
pub mod portfolio;
#[cfg(test)]
mod proof_tests;
pub mod result;
pub mod word;

pub use certify::{Certificate, CertifyReport, ClausalInvariant, FormulaInvariant};
pub use parallel::{LemmaBus, ParallelPdr, SharedFrames};
pub use portfolio::{Portfolio, PortfolioOutcome};
pub use result::{Blasted, Budget, CheckOutcome, Checker, EngineStats, Trace, Unknown, Verdict};
